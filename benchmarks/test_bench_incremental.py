"""E19 (extension) -- incremental maintenance vs batch rebuilds.

Theorem 8 holds for any edge order, so the greedy works online for
unweighted graphs.  This bench measures the amortized per-insertion
cost against the naive alternative (rebuild from scratch every R
insertions) and confirms stream-equals-batch equality.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.greedy_modified import modified_greedy_unweighted
from repro.core.incremental import IncrementalSpanner
from repro.graph import generators


def test_bench_incremental_vs_rebuild(benchmark):
    def run():
        g = generators.gnp_random_graph(80, 0.15, seed=1900)
        order = list(g.edges())
        random.Random(0).shuffle(order)

        # Online: one pass.
        inc = IncrementalSpanner(k=2, f=1)
        for u in g.nodes():
            inc.add_node(u)
        start = time.perf_counter()
        inc.insert_many(order)
        online = time.perf_counter() - start

        # Batch-equivalence check.
        batch = modified_greedy_unweighted(g, 2, 1, order=order)
        assert inc.spanner == batch.spanner

        # Rebuild-every-R alternative.
        rebuild_times = {}
        for period in (10, 50):
            start = time.perf_counter()
            for i in range(period, len(order) + 1, period):
                prefix = g.edge_subgraph(order[:i])
                modified_greedy_unweighted(prefix, 2, 1, order=order[:i])
            rebuild_times[period] = time.perf_counter() - start
        return len(order), inc, online, rebuild_times

    m, inc, online, rebuild_times = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = Table(
        "E19: incremental maintenance vs periodic rebuild "
        "(G(80, .15), k=2, f=1; outputs identical)",
        ["strategy", "total seconds", "us per insertion"],
    )
    table.add_row(["incremental (one pass)", online, 1e6 * online / m])
    for period, seconds in sorted(rebuild_times.items()):
        table.add_row([
            f"rebuild every {period}", seconds, 1e6 * seconds / m,
        ])
    emit(table, "E19_incremental")
    # Incremental must beat frequent rebuilds by a wide margin.
    assert online < rebuild_times[10] / 3


def test_bench_insertion_op(benchmark):
    g = generators.gnp_random_graph(80, 0.15, seed=1901)
    edges = list(g.edges())

    def build():
        inc = IncrementalSpanner(k=2, f=1)
        inc.insert_many(edges)
        return inc

    inc = benchmark(build)
    assert inc.kept > 0
