"""E6 -- Theorem 9 vs the exponential baseline: polynomial beats
exponential.

Two tables:
* wall-clock of Algorithm 3 as n grows (should look polynomial -- the
  fitted exponent of time vs n stays small);
* head-to-head vs Algorithm 1 on instances where the exponential search
  is still feasible, showing the blow-up as f grows while the modified
  greedy barely notices.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.helpers import emit
from repro.analysis.experiments import fit_power_law
from repro.analysis.tables import Table
from repro.core.greedy_exact import exponential_greedy_spanner
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators


def test_bench_runtime_vs_n(benchmark):
    def sweep():
        rows = []
        for n in (30, 50, 80, 120):
            g = generators.gnp_random_graph(n, min(1.0, 10.0 / n), seed=n)
            start = time.perf_counter()
            result = fault_tolerant_spanner(g, 2, 2)
            elapsed = time.perf_counter() - start
            rows.append((n, g.num_edges, result.num_edges, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "E6a: modified greedy wall-clock vs n (G(n, 10/n), k=2, f=2)",
        ["n", "m", "|E(H)|", "seconds"],
    )
    for row in rows:
        table.add_row(list(row))
    exponent = fit_power_law(
        [r[0] for r in rows], [max(r[3], 1e-5) for r in rows]
    )
    table.add_row(["fit", "", "", f"time ~ n^{exponent:.2f}"])
    emit(table, "E6a_runtime_vs_n")
    # Polynomial, low degree on sparse inputs (theory worst case is ~n^2.5
    # for these parameters; sparse m = O(n) keeps it near-linear).
    assert exponent < 3.0


def test_bench_modified_vs_exponential_in_f(benchmark):
    """The paper's raison d'etre: runtime vs f, side by side."""

    def best_of(fn, repeats=3):
        # Each run here is 1-5ms, the scale of a GC pause triggered by
        # garbage from earlier tests in this file -- a single-shot
        # timing can be 20x off and invert the growth-ratio assertion
        # below.  Best-of-N discards such outliers.
        best, result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    def sweep():
        g = generators.gnp_random_graph(16, 0.45, seed=77)
        rows = []
        for f in (1, 2, 3):
            t_mod, modified = best_of(lambda: fault_tolerant_spanner(g, 2, f))
            t_exact, exact = best_of(
                lambda: exponential_greedy_spanner(g, 2, f)
            )
            rows.append((f, modified.num_edges, t_mod,
                         exact.num_edges, t_exact))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "E6b: Algorithm 3 (poly) vs Algorithm 1 (exp) on G(16, .45), k=2",
        ["f", "|E| poly", "sec poly", "|E| exp", "sec exp",
         "slowdown exp/poly"],
    )
    for f, e_mod, t_mod, e_exact, t_exact in rows:
        table.add_row([f, e_mod, t_mod, e_exact, t_exact,
                       t_exact / max(t_mod, 1e-6)])
    emit(table, "E6b_poly_vs_exp")
    # The exponential algorithm's time must grow much faster in f.
    poly_growth = rows[-1][2] / max(rows[0][2], 1e-6)
    exp_growth = rows[-1][4] / max(rows[0][4], 1e-6)
    assert exp_growth > poly_growth


def test_bench_modified_greedy_op(benchmark):
    g = generators.gnp_random_graph(80, 0.15, seed=88)
    benchmark(lambda: fault_tolerant_spanner(g, 2, 2))
