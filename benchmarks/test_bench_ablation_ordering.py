"""E14 -- ablation: edge ordering in Algorithm 3.

Theorem 8's size bound holds for *any* order (the paper proves it for an
arbitrary order and then instantiates the weight order for Theorem 10).
We measure how much the order actually matters in practice.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.bounds import modified_greedy_size_bound
from repro.core.greedy_modified import modified_greedy_unweighted
from repro.graph import generators
from repro.verification import verify_ft_spanner

N, K, F = 50, 2, 2
ORDERS = ("arbitrary", "random", "degree")


def test_bench_ordering_ablation(benchmark):
    def run():
        g = generators.complete_graph(N)
        rows = []
        for order in ORDERS:
            sizes = []
            for seed in (1, 2, 3):
                result = modified_greedy_unweighted(
                    g, K, F, order=order, seed=seed
                )
                sizes.append(result.num_edges)
            rows.append((order, min(sizes), sum(sizes) / len(sizes),
                         max(sizes)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = modified_greedy_size_bound(N, K, F)
    table = Table(
        f"E14: edge-order ablation (K_{N}, k={K}, f={F}); "
        f"bound shape = {bound:.0f} for every order",
        ["order", "min |E(H)|", "mean |E(H)|", "max |E(H)|", "max/bound"],
    )
    all_sizes = []
    for order, lo, mean, hi in rows:
        table.add_row([order, lo, mean, hi, hi / bound])
        all_sizes.extend([lo, hi])
        assert hi <= 4 * bound
    emit(table, "E14_ordering")
    # The bound is order-independent; sizes across orders should agree
    # within a small factor.
    assert max(all_sizes) <= 1.6 * min(all_sizes)


def test_bench_ordering_correct_for_all(benchmark):
    """Each ordering still yields a valid FT spanner (spot check)."""

    def run():
        g = generators.gnp_random_graph(20, 0.35, seed=1300)
        out = []
        for order in ORDERS:
            result = modified_greedy_unweighted(g, 2, 1, order=order, seed=4)
            report = verify_ft_spanner(g, result.spanner, t=3, f=1)
            out.append((order, report.ok))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for order, ok in rows:
        assert ok, order
