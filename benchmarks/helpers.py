"""Shared machinery for the benchmark harness.

Every benchmark prints the table behind one EXPERIMENTS.md row.  pytest
captures stdout, so :func:`emit` writes to the *real* stdout (visible in
``pytest benchmarks/ --benchmark-only`` runs and in bench_output.txt) and
also archives the table under ``benchmarks/results/`` so EXPERIMENTS.md
can be regenerated from disk.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.tables import Table

RESULTS_DIR = Path(__file__).parent / "results"


def emit(table: Table, experiment: str) -> None:
    """Print a table to the unredirected stdout and archive it."""
    text = table.render()
    print(f"\n{text}\n", file=sys.__stdout__, flush=True)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")


def geometric_mean(values) -> float:
    """Geometric mean (for ratio summaries)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
