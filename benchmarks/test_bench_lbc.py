"""E1 -- Theorem 4: LBC(t, alpha) correctness and O((m+n) alpha) time.

Tables reported:
* approximation quality vs the exact solver on gadgets with known cuts;
* runtime scaling in alpha (should be linear) and in m (should be linear).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.bounds import lbc_time_bound
from repro.graph import generators
from repro.lbc.approx import lbc_vertex
from repro.lbc.exact import exact_vertex_lbc


def test_bench_lbc_single_call(benchmark):
    """Microbenchmark: one LBC(3, 4) call on G(200, 0.05)."""
    g = generators.gnp_random_graph(200, 0.05, seed=1)
    result = benchmark(lambda: lbc_vertex(g, 0, 199, t=3, alpha=4))
    assert result is not None


def test_bench_lbc_quality_vs_exact(benchmark):
    """Gap-decision contract on gadgets with known exact cut sizes."""

    def run():
        rows = []
        for width in (2, 3, 4, 5, 6):
            g = generators.layered_path_gadget(layers=1, width=width)
            exact = exact_vertex_lbc(g, "s", "t", t=2)
            exact_size = len(exact) if exact is not None else 0
            t = 2
            yes_at = None
            for alpha in range(0, 3 * width):
                if lbc_vertex(g, "s", "t", t=t, alpha=alpha).is_yes:
                    yes_at = alpha
                    break
            rows.append((width, exact_size, yes_at))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E1a: LBC approximation vs exact (layered gadget, t=2)",
        ["width", "exact min cut", "smallest alpha answering YES",
         "within alpha<=exact (Thm 4)"],
    )
    for width, exact_size, yes_at in rows:
        table.add_row([width, exact_size, yes_at, yes_at <= exact_size])
        # Theorem 4 YES-guarantee: alpha = exact size must answer YES.
        assert yes_at is not None and yes_at <= exact_size
    emit(table, "E1a_lbc_quality")


def test_bench_lbc_time_linear_in_alpha(benchmark):
    """Runtime vs alpha at fixed graph (Theorem 4: linear)."""
    g = generators.gnp_random_graph(300, 0.04, seed=2)
    pairs = [(i, 299 - i) for i in range(25)]

    def run_alpha(alpha):
        start = time.perf_counter()
        for u, v in pairs:
            if not g.has_edge(u, v):
                lbc_vertex(g, u, v, t=3, alpha=alpha)
        return time.perf_counter() - start

    def sweep():
        return [(alpha, run_alpha(alpha)) for alpha in (1, 2, 4, 8, 16)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        "E1b: LBC runtime vs alpha (G(300, .04), t=3, 25 terminal pairs)",
        ["alpha", "seconds", "bound shape (m+n)*alpha",
         "seconds / shape (x1e6)"],
    )
    for alpha, seconds in rows:
        shape = lbc_time_bound(300, g.num_edges, alpha)
        table.add_row([alpha, seconds, shape, 1e6 * seconds / shape])
    emit(table, "E1b_lbc_alpha")
    # Linearity: 16x alpha should cost way less than 16^2 x time.
    t1 = rows[0][1]
    t16 = rows[-1][1]
    assert t16 <= 70 * max(t1, 1e-5)
