"""E21 (extension) -- spanner-based routing with fault fallback.

The [TZ01] motivation made operational: next-hop tables on the spanner,
per-fault-scenario fallback.  Measures table materialization cost,
route stretch against the guarantee, and fallback latency.
"""

from __future__ import annotations

import math
import random
import time

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.applications.routing import SpannerRouter
from repro.graph import generators
from repro.graph.traversal import dijkstra
from repro.graph.views import VertexFaultView


def test_bench_routing(benchmark):
    def run():
        g = generators.ensure_connected(
            generators.gnp_random_graph(100, 0.08, seed=2100), seed=2100
        )
        start = time.perf_counter()
        router = SpannerRouter(g, k=2, f=1)
        build = time.perf_counter() - start
        rng = random.Random(0)
        nodes = sorted(g.nodes())

        # Fault-free route stretch over random pairs.
        worst = 1.0
        true = {s: dijkstra(g, s) for s in nodes[:10]}
        for s in nodes[:10]:
            for _ in range(10):
                d = rng.choice(nodes)
                if d == s or d not in true[s] or true[s][d] == 0:
                    continue
                cost = router.route_cost(s, d)
                worst = max(worst, cost / true[s][d])

        # Fallback: first route under a fresh fault set (table build) vs
        # subsequent routes in the same scenario.  Best-of-3 on both
        # sides (each "first" under a distinct fault set, so each is a
        # genuine table build): single-shot timings at this scale flip
        # the warm <= first assertion when a GC pause lands inside one.
        first = float("inf")
        for fresh in ([nodes[41]], [nodes[43]], [nodes[47]]):
            start = time.perf_counter()
            router.route(nodes[0], nodes[90], faults=fresh)
            first = min(first, time.perf_counter() - start)
        fault = [nodes[37]]
        router.route(nodes[0], nodes[90], faults=fault)  # build the table
        warm = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            count = 0
            for s in nodes[1:40]:
                if s in fault:
                    continue
                router.route(s, nodes[90], faults=fault)
                count += 1
            warm = min(warm, (time.perf_counter() - start) / count)

        # Guarantee under the fault.
        gv = VertexFaultView(g, set(fault))
        true_f = dijkstra(gv, nodes[90])
        worst_f = 1.0
        for s in nodes[1:40]:
            if s in fault or s not in true_f or true_f[s] == 0:
                continue
            cost = router.route_cost(s, nodes[90], faults=fault)
            worst_f = max(worst_f, cost / true_f[s])
        return g, router, build, worst, worst_f, first, warm

    g, router, build, worst, worst_f, first, warm = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = Table(
        "E21: spanner routing (G(100, .08), k=2, f=1)",
        ["quantity", "value"],
    )
    table.add_row(["spanner edges / graph edges",
                   f"{router.spanner.num_edges}/{g.num_edges}"])
    table.add_row(["router build seconds", build])
    table.add_row(["worst route stretch (fault-free)", worst])
    table.add_row(["worst route stretch (1 fault)", worst_f])
    table.add_row(["stretch guarantee", 3])
    table.add_row(["first faulted route seconds", first])
    table.add_row(["warm faulted route seconds", warm])
    emit(table, "E21_routing")
    assert worst <= 3.0 + 1e-9
    assert worst_f <= 3.0 + 1e-9
    assert warm <= first
