"""E15 -- ablation: the LBC alpha parameter.

Algorithm 3 calls LBC with alpha = f.  Raising alpha makes the test
stricter (more edges added, more protection than required); lowering it
below f breaks the guarantee.  This ablation quantifies the size/safety
trade -- the "intuitively, an f-FT spanner with the size of a kf-FT
spanner" remark made concrete.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.spanner import FaultModel, SpannerResult
from repro.graph import generators
from repro.graph.graph import edge_key
from repro.lbc.approx import LBCAnswer, lbc_vertex
from repro.verification import verify_ft_spanner

N, K, F = 24, 2, 2


def _greedy_with_alpha(g, k, f_guarantee, alpha):
    """Algorithm 3 with a decoupled LBC alpha (ablation knob)."""
    t = 2 * k - 1
    h = g.spanning_skeleton()
    for u, v in g.edges():
        if lbc_vertex(h, u, v, t, alpha).answer is LBCAnswer.YES:
            h.add_edge(u, v, weight=g.weight(u, v))
    return SpannerResult(
        spanner=h, k=k, f=f_guarantee, fault_model=FaultModel.VERTEX,
        algorithm=f"greedy-alpha-{alpha}",
    )


def test_bench_alpha_ablation(benchmark):
    def run():
        g = generators.gnp_random_graph(N, 0.45, seed=1400)
        rows = []
        for alpha in (0, 1, 2, 3, 4, 6):
            result = _greedy_with_alpha(g, K, F, alpha)
            report = verify_ft_spanner(
                g, result.spanner, t=2 * K - 1, f=F,
                exhaustive_budget=30_000,
            )
            rows.append((alpha, result.num_edges, report.ok))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"E15: LBC alpha ablation (G({N}, .45), k={K}, target f={F}; "
        "algorithm uses alpha=f)",
        ["alpha", "|E(H)|", f"is {F}-VFT 3-spanner",
         "paper setting"],
    )
    for alpha, size, ok in rows:
        table.add_row([alpha, size, ok, "<-- alpha=f" if alpha == F else ""])
    emit(table, "E15_alpha")
    by_alpha = {alpha: (size, ok) for alpha, size, ok in rows}
    # alpha = f: the paper's setting must be safe.
    assert by_alpha[F][1]
    # alpha > f: still safe (supersets of protection), monotone size.
    assert by_alpha[4][1] and by_alpha[6][1]
    sizes = [by_alpha[a][0] for a in (0, 1, 2, 3, 4, 6)]
    assert all(a <= b for a, b in zip(sizes, sizes[1:]))
    # alpha = 0 (fault-free greedy) must NOT be 2-fault-tolerant here --
    # this is what paying for fault tolerance buys.
    assert not by_alpha[0][1]
