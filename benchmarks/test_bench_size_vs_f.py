"""E4 -- Theorem 8: spanner size scaling in f.

|E(H)| should grow sublinearly in f -- as f^(1-1/k) -- and the measured
exponent should be below 1 (far below linear-in-f constructions like
[CLPR10]).
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.experiments import fit_power_law
from repro.analysis.tables import Table
from repro.core.bounds import modified_greedy_size_bound
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators

N, K = 70, 2
FS = (1, 2, 4, 8)


def _sweep():
    g = generators.complete_graph(N)
    rows = []
    for f in FS:
        result = fault_tolerant_spanner(g, K, f)
        rows.append((f, result.num_edges,
                     modified_greedy_size_bound(N, K, f)))
    return rows


def test_bench_size_vs_f(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        f"E4: size vs f (K_{N}, k={K}; bound shape ~ f^(1-1/k) = f^0.5)",
        ["f", "|E(H)|", "bound shape", "ratio"],
    )
    for f, size, bound in rows:
        table.add_row([f, size, bound, size / bound])
    exponent = fit_power_law([r[0] for r in rows], [r[1] for r in rows])
    table.add_row(["fit", f"f^{exponent:.2f}",
                   f"theory f^{1 - 1/K:.2f}", ""])
    emit(table, "E4_size_vs_f")
    # Growth must be clearly sublinear in f (the paper's improvement over
    # the f^2 of [DK11] and ~f of [CLPR10]).
    assert exponent < 1.0
    # Monotone nondecreasing in f.
    sizes = [r[1] for r in rows]
    assert all(a <= b + 3 for a, b in zip(sizes, sizes[1:]))


def test_bench_build_f8(benchmark):
    g = generators.complete_graph(N)
    result = benchmark.pedantic(
        lambda: fault_tolerant_spanner(g, K, 8), rounds=2, iterations=1
    )
    assert result.num_edges > 0
