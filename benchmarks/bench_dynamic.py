"""Micro-benchmark: delta-overlay streaming updates vs refreeze-per-batch.

Replays the same sliding-window churn stream through two serving
strategies and checks they answer every query identically, writing the
results to ``BENCH_dynamic.json`` at the repository root.  The cost
being measured is the refreeze: without the overlay, every update batch
forces a from-scratch :class:`CSRSnapshot` freeze (O(n + m) copy work)
before the snapshot can answer again, so the per-batch cost is
``freeze + queries``.  The :class:`DynamicSnapshot` overlay privatizes
only the adjacency rows a batch touches and keeps serving through the
same sweep object, so its per-batch cost is ``O(touched rows) +
queries`` -- with the occasional policy-driven compaction folding the
overlay back into a flat base.

* ``churn_unit`` -- unit weights, BFS queries.
* ``churn_weighted`` -- integral weights, Dijkstra queries.

Each row replays ``batches`` batches of ``batch`` updates over a
``G(n, p)`` instance, answering ``queries`` single-source queries after
every batch.  ``parity_ok`` records that the overlay's answer stream
was bit-identical to the refreeze baseline's, batch by batch -- the
speedup is meaningless if the cheap mode answers differently.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_dynamic.py [--quick]

``--quick`` shrinks to a seconds-long smoke run (used by CI); the JSON
it writes is marked ``"quick": true`` so a full run's numbers are never
silently overwritten by smoke ones unless you ask for it.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.dynamic import DynamicSnapshot
from repro.graph import generators
from repro.graph.snapshot import CSRSnapshot, ScenarioSweep

SEED = 42

# (n, p, steps, window, batch, compact_every) per scenario row.  The
# explicit update budget makes every row cross at least one compaction
# boundary, so the overlay timings include the refreezes the policy
# actually pays, not just the cheap steady-state.
INSTANCES = [
    (400, 0.03, 240, 30, 8, 180),
    (900, 0.012, 240, 30, 8, 180),
    (1600, 0.007, 240, 30, 8, 180),
]
QUICK_INSTANCES = [(120, 0.08, 60, 12, 6, 60)]
QUERIES_PER_BATCH = 3

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_dynamic.json"
)


def _instance(n, p, weighted):
    g = generators.ensure_connected(
        generators.gnp_random_graph(n, p, seed=SEED), seed=SEED
    )
    if weighted:
        g = generators.with_random_weights(
            g, low=1.0, high=9.0, seed=SEED, integral=True
        )
    return g


def _batches(ops, size):
    return [ops[i:i + size] for i in range(0, len(ops), size)]


def _sources(g, batches):
    """One deterministic rotation of query sources per batch."""
    nodes = sorted(g.nodes(), key=repr)
    stride = max(1, len(nodes) // 7)
    return [
        [nodes[(b * stride + q * 3) % len(nodes)]
         for q in range(QUERIES_PER_BATCH)]
        for b in range(len(batches))
    ]


def _run_overlay(g, batches, sources, compact_every):
    """Apply each batch through the overlay; only the compaction
    policy ever refreezes."""
    dyn = DynamicSnapshot(g, compact_every=compact_every)
    sweep = dyn.sweep()
    answers = []
    start = time.perf_counter()
    for ops, srcs in zip(batches, sources):
        dyn.apply(ops)
        answers.append([sweep.distances_from(s) for s in srcs])
    elapsed = time.perf_counter() - start
    return elapsed, answers, dyn


def _run_refreeze(g, batches, sources):
    """Apply each batch to the dict graph, freeze from scratch, query."""
    answers = []
    start = time.perf_counter()
    for ops, srcs in zip(batches, sources):
        for op in ops:
            if op[0] == "insert":
                g.add_edge(op[1], op[2], op[3] if len(op) > 3 else 1.0)
            else:
                g.remove_edge(op[1], op[2])
        sweep = ScenarioSweep(CSRSnapshot(g))
        answers.append([sweep.distances_from(s) for s in srcs])
    elapsed = time.perf_counter() - start
    return elapsed, answers


def bench_churn(weighted, instances, repeats):
    rows = []
    for n, p, steps, window, batch, compact_every in instances:
        stream_g = _instance(n, p, weighted)
        ops = generators.sliding_window_churn(
            stream_g, steps=steps, window=window, seed=SEED,
            weights="int" if weighted else "unit",
        )
        batches = _batches(ops, batch)
        sources = _sources(stream_g, batches)

        t_overlay, dyn = float("inf"), None
        overlay_answers = None
        for _ in range(repeats):
            elapsed, answers, d = _run_overlay(
                _instance(n, p, weighted), batches, sources, compact_every
            )
            if elapsed < t_overlay:
                t_overlay, overlay_answers, dyn = elapsed, answers, d
        t_refreeze, refreeze_answers = float("inf"), None
        for _ in range(repeats):
            elapsed, answers = _run_refreeze(
                _instance(n, p, weighted), batches, sources
            )
            if elapsed < t_refreeze:
                t_refreeze, refreeze_answers = elapsed, answers

        parity = overlay_answers == refreeze_answers
        sec_ov = round(t_overlay, 4)
        sec_rf = round(t_refreeze, 4)
        row = {
            "n": n,
            "p": p,
            "m": stream_g.num_edges,
            "updates": len(ops),
            "batches": len(batches),
            "batch": batch,
            "queries_per_batch": QUERIES_PER_BATCH,
            "compact_every": compact_every,
            "compactions": dyn.compactions,
            "overlay_depth": dyn.overlay_depth,
            "seconds_overlay": sec_ov,
            "seconds_refreeze": sec_rf,
            # From the rounded values on purpose: the committed JSON
            # must be self-consistent for scripts/check_bench_json.py.
            "speedup": round(sec_rf / sec_ov, 2)
            if sec_ov > 0 else float("inf"),
            "parity_ok": parity,
        }
        rows.append(row)
        print(
            f"  n={n:5d} m={stream_g.num_edges:6d} "
            f"updates={len(ops):4d}/{len(batches):3d} batches  "
            f"overlay {t_overlay:7.3f}s "
            f"(depth {dyn.overlay_depth}, {dyn.compactions} compactions)  "
            f"refreeze {t_refreeze:7.3f}s  "
            f"speedup {row['speedup']:6.2f}x  "
            f"parity={'ok' if parity else 'FAIL'}"
        )
    return {
        "description": (
            "sliding-window churn replayed two ways: DeltaOverlay "
            "streaming updates (one epoch, auto-compaction) vs a "
            "from-scratch CSRSnapshot freeze after every batch; both "
            "answer the same single-source queries after each batch "
            "and must agree batch-by-batch"
        ),
        "parameters": {
            "weighted": weighted,
            "queries_per_batch": QUERIES_PER_BATCH,
        },
        "instances": rows,
    }


def run(repeats: int = 3, quick: bool = False):
    if quick:
        repeats = 1
        instances = QUICK_INSTANCES
    else:
        instances = INSTANCES
    scenarios = {}
    for name, weighted in [("churn_unit", False), ("churn_weighted", True)]:
        print(f"{name}:")
        scenarios[name] = bench_churn(weighted, instances, repeats)
    report = {
        "benchmark": "delta-overlay streaming vs refreeze-per-batch",
        "quick": quick,
        "seed": SEED,
        "repeats": repeats,
        "timing": "best-of-repeats",
        "python": platform.python_version(),
        "scenarios": scenarios,
    }
    # Headline trajectory: the largest instance's unit-weight row,
    # where the per-batch freeze the overlay avoids is biggest.
    report["overlay_speedup_at_max_n"] = (
        scenarios["churn_unit"]["instances"][-1]["speedup"]
    )
    return report


def _all_parity_ok(report) -> bool:
    return all(
        row["parity_ok"]
        for scenario in report["scenarios"].values()
        for row in scenario["instances"]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON report "
                             f"(default: {DEFAULT_OUTPUT})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per mode (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke run: tiny instance, one repeat "
                             "(answer-parity checks still apply)")
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats, quick=args.quick)
    if args.quick and args.output == DEFAULT_OUTPUT:
        print("quick run: skipping JSON write (pass --output to force)")
    else:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.output}")
    if not _all_parity_ok(report):
        print("ERROR: overlay answers diverged from the refreeze baseline")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
