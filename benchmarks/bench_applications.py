"""Micro-benchmark: dict vs CSR backend across the applications layer.

Times the three spanner applications under both execution backends,
checks that the answers are bit-identical, and writes the results to
``BENCH_applications.json`` at the repository root so successive PRs can
track the layer's performance trajectory:

* ``oracle_batch`` -- the monitoring pattern on a unit-weight spanner:
  a few fault scenarios, many distance queries per scenario.  The dict
  side answers pair by pair through ``distance()`` (per-query path, LRU
  warm); the CSR side uses the batch ``distances()`` API against one
  shared :class:`~repro.graph.snapshot.CSRSnapshot`.
* ``oracle_batch_weighted`` -- the same pattern on a weighted spanner
  (CSR Dijkstra instead of the BFS fast path).
* ``weighted_oracle_bucket`` -- the weighted pattern on an *integral*-
  weighted spanner with ``search="bucket"``: every cache-missed
  single-source run is a Dial bucket-queue sweep instead of a binary
  heap (identical answers; the weighted-engine satellite of the
  snapshot substrate).
* ``oracle_batch_multi`` -- the unit monitoring pattern with
  ``search="batch"``: the CSR side answers each scenario's query batch
  with the multi-source frontier kernels (one SSSP per *distinct*
  source, many roots per frontier pass, numpy planes when available)
  against the dict side's per-query ``distance()`` loop.
* ``routing_tables`` -- per-fault-scenario next-hop table builds for
  many destinations (destination-rooted trees on the faulted spanner).
* ``routing_tables_multi`` -- the same table builds through the batched
  ``tables()`` API with ``search="batch"``: all destination-rooted
  trees of a scenario ride one multi-source pass, vs the dict side's
  one ``table()`` call per destination.
* ``availability_sweep`` -- Monte-Carlo availability analysis of a
  weighted spanner (paired distance probes over sampled scenarios).

Every scenario drives the unified public API: a fresh
:class:`~repro.session.SpannerSession` per timed run (so the timing
still covers the one-off CSR freeze, exactly like the pre-session
per-call behavior), with the oracle/router/availability consumers
sharing that session's snapshot.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_applications.py [--quick]

``--quick`` shrinks every scenario to a seconds-long smoke run (used by
CI); the JSON it writes is marked ``"quick": true`` so a full run's
numbers are never silently overwritten by smoke ones unless you ask for
it.

This is a plain script (not a pytest benchmark) so it can run quickly in
CI and emit machine-readable output; the statistical benchmarks live in
``benchmarks/test_bench_*.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.graph import generators
from repro.registry import build_spanner
from repro.session import SpannerSession

SEED = 42
K = 2
F = 2

# (n, p) per instance, smallest to largest; seeds are fixed so the
# numbers are comparable across PRs.
ORACLE_INSTANCES = [(240, 0.06), (420, 0.035)]
ORACLE_WEIGHTED_INSTANCES = [(200, 0.06)]
ORACLE_BUCKET_INSTANCES = [(200, 0.06)]
ORACLE_MULTI_INSTANCES = [(240, 0.06), (420, 0.035)]
ROUTING_INSTANCES = [(180, 0.07)]
ROUTING_MULTI_INSTANCES = [(800, 0.02)]
AVAILABILITY_INSTANCES = [(110, 0.09)]

QUICK_ORACLE = [(100, 0.10)]
QUICK_ORACLE_WEIGHTED = [(80, 0.12)]
QUICK_ORACLE_BUCKET = [(80, 0.12)]
QUICK_ORACLE_MULTI = [(100, 0.10)]
QUICK_ROUTING = [(70, 0.12)]
QUICK_ROUTING_MULTI = [(70, 0.12)]
QUICK_AVAILABILITY = [(50, 0.15)]

ORACLE_SCENARIOS = 3
ORACLE_PAIRS = 500
QUICK_ORACLE_PAIRS = 120
ROUTING_SCENARIOS = 3
ROUTING_DESTS = 40
# The batched scenario routes *every* surviving node: one multi-source
# pass per fault scenario builds the full table set, which is where the
# frontier-vectorized kernel earns its keep.
ROUTING_MULTI_DESTS = 800
QUICK_ROUTING_DESTS = 12
AVAIL_SCENARIOS = 25
AVAIL_PAIRS = 25
QUICK_AVAIL_SCENARIOS = 8
QUICK_AVAIL_PAIRS = 8

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_applications.json"
)


def _best_of(fn, repeats: int):
    """Best-of-``repeats`` wall clock and the result of the last run."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _row(n, p, m, extra, t_dict, t_csr, identical):
    row = {
        "n": n,
        "p": p,
        "m": m,
        **extra,
        "seconds_dict": round(t_dict, 4),
        "seconds_csr": round(t_csr, 4),
        "speedup": round(t_dict / t_csr, 2) if t_csr > 0 else float("inf"),
        "identical_outputs": identical,
    }
    print(
        f"  n={n:4d} m={m:5d}  dict {t_dict:7.3f}s  csr {t_csr:7.3f}s  "
        f"speedup {row['speedup']:5.2f}x  "
        f"parity={'ok' if identical else 'FAIL'}"
    )
    return row


def _instance(n, p, weights):
    """A connected instance: ``weights`` is 'unit', 'float' or 'int'."""
    g = generators.gnp_random_graph(n, p, seed=SEED)
    if weights == "float":
        g = generators.with_random_weights(g, seed=SEED)
    elif weights == "int":
        g = generators.with_random_weights(
            g, low=1.0, high=10.0, seed=SEED, integral=True
        )
    return generators.ensure_connected(g, seed=SEED)


def _vertex_scenarios(nodes, count, rng):
    """``count`` random vertex fault sets of size F (plus fault-free)."""
    return [[]] + [rng.sample(nodes, F) for _ in range(count - 1)]


def _surviving_pairs(nodes, scenarios, count, rng):
    """Query pairs whose endpoints survive *every* scenario."""
    faulted = set()
    for sc in scenarios:
        faulted.update(sc)
    pool = [x for x in nodes if x not in faulted]
    return [tuple(rng.sample(pool, 2)) for _ in range(count)]


def bench_oracle_batch(instances, repeats, pairs_per_scenario, weights,
                       search=None):
    rows = []
    for n, p in instances:
        g = _instance(n, p, weights)
        prebuilt = build_spanner(g, "greedy", k=K, f=F)
        rng = random.Random(SEED)
        nodes = sorted(g.nodes())
        scenarios = _vertex_scenarios(nodes, ORACLE_SCENARIOS, rng)
        pairs = _surviving_pairs(nodes, scenarios, pairs_per_scenario, rng)

        def run(backend, batch):
            # A fresh session + oracle per run so the timing covers real
            # cache misses (and, for CSR, the one-off snapshot build).
            # The search engine only matters on the CSR side.
            session = SpannerSession(
                g, k=K, f=F, backend=backend,
                search=search if backend == "csr" else None,
            )
            session.adopt(prebuilt)
            oracle = session.oracle(cache_size=2 * n)
            answers = []
            for faults in scenarios:
                if batch:
                    answers.append(oracle.distances(pairs, faults=faults))
                else:
                    answers.append(
                        [oracle.distance(u, v, faults=faults)
                         for u, v in pairs]
                    )
            return answers

        t_dict, a_dict = _best_of(lambda: run("dict", batch=False), repeats)
        t_csr, a_csr = _best_of(lambda: run("csr", batch=True), repeats)
        rows.append(_row(n, p, g.num_edges, {
            "spanner_edges": prebuilt.spanner.num_edges,
            "scenarios": len(scenarios),
            "pairs_per_scenario": len(pairs),
        }, t_dict, t_csr, a_dict == a_csr))
    engine = f", search='{search}'" if search else ""
    return {
        "description": (
            f"FaultTolerantDistanceOracle, {weights}-weight spanner: "
            f"batched distances() on one CSR snapshot{engine} vs "
            f"per-query dict distance()"
        ),
        "parameters": {"k": K, "f": F, "fault_model": "vertex",
                       "search": search or "auto"},
        "instances": rows,
    }


def bench_routing_tables(instances, repeats, dests_per_scenario,
                         batch=False, search=None):
    rows = []
    for n, p in instances:
        g = _instance(n, p, weights="unit")
        prebuilt = build_spanner(g, "greedy", k=K, f=F)
        rng = random.Random(SEED)
        nodes = sorted(g.nodes())
        scenarios = _vertex_scenarios(nodes, ROUTING_SCENARIOS, rng)
        faulted = set()
        for sc in scenarios:
            faulted.update(sc)
        dests = [x for x in nodes if x not in faulted][:dests_per_scenario]

        def run(backend, use_batch):
            session = SpannerSession(
                g, k=K, f=F, backend=backend,
                search=search if backend == "csr" else None,
            )
            session.adopt(prebuilt)
            router = session.router()
            if use_batch:
                # One multi-source pass per scenario builds every
                # destination-rooted tree at once.
                return [
                    router.tables(dests, faults=faults)
                    for faults in scenarios
                ]
            return [
                {d: router.table(d, faults=faults) for d in dests}
                for faults in scenarios
            ]

        t_dict, tables_dict = _best_of(
            lambda: run("dict", use_batch=False), repeats)
        t_csr, tables_csr = _best_of(
            lambda: run("csr", use_batch=batch), repeats)
        rows.append(_row(n, p, g.num_edges, {
            "spanner_edges": prebuilt.spanner.num_edges,
            "scenarios": len(scenarios),
            "destinations": len(dests),
        }, t_dict, t_csr, tables_dict == tables_csr))
    api = "batched tables()" if batch else "per-destination table()"
    engine = f", search='{search}'" if search else ""
    return {
        "description": f"SpannerRouter: per-scenario next-hop table builds "
                       f"(destination-rooted trees on the faulted spanner; "
                       f"csr side uses {api}{engine})",
        "parameters": {"k": K, "f": F, "fault_model": "vertex",
                       "search": search or "auto"},
        "instances": rows,
    }


def bench_availability(instances, repeats, scenarios, pairs):
    rows = []
    for n, p in instances:
        g = _instance(n, p, weights="float")
        prebuilt = build_spanner(g, "greedy", k=K, f=F)

        def run(backend):
            session = SpannerSession(g, k=K, f=F, backend=backend, seed=SEED)
            session.adopt(prebuilt)
            return session.availability(
                failures=F, scenarios=scenarios, pairs_per_scenario=pairs,
            )

        t_dict, r_dict = _best_of(lambda: run("dict"), repeats)
        t_csr, r_csr = _best_of(lambda: run("csr"), repeats)
        rows.append(_row(n, p, g.num_edges, {
            "spanner_edges": prebuilt.spanner.num_edges,
            "scenarios": scenarios,
            "pairs_per_scenario": pairs,
        }, t_dict, t_csr, r_dict == r_csr))
    return {
        "description": "availability_analysis, weighted: Monte-Carlo "
                       "stretch/connectivity sweep (paired distance probes)",
        "parameters": {"k": K, "f": F, "failures": F},
        "instances": rows,
    }


def run(repeats: int = 3, quick: bool = False, only: str = None):
    """Benchmark the scenarios (optionally filtered by name substring)."""
    if quick:
        repeats = 1
        plan = [
            ("oracle_batch", lambda: bench_oracle_batch(
                QUICK_ORACLE, repeats, QUICK_ORACLE_PAIRS, weights="unit")),
            ("oracle_batch_weighted", lambda: bench_oracle_batch(
                QUICK_ORACLE_WEIGHTED, repeats, QUICK_ORACLE_PAIRS,
                weights="float")),
            ("weighted_oracle_bucket", lambda: bench_oracle_batch(
                QUICK_ORACLE_BUCKET, repeats, QUICK_ORACLE_PAIRS,
                weights="int", search="bucket")),
            ("oracle_batch_multi", lambda: bench_oracle_batch(
                QUICK_ORACLE_MULTI, repeats, QUICK_ORACLE_PAIRS,
                weights="unit", search="batch")),
            ("routing_tables", lambda: bench_routing_tables(
                QUICK_ROUTING, repeats, QUICK_ROUTING_DESTS)),
            ("routing_tables_multi", lambda: bench_routing_tables(
                QUICK_ROUTING_MULTI, repeats, QUICK_ROUTING_DESTS,
                batch=True, search="batch")),
            ("availability_sweep", lambda: bench_availability(
                QUICK_AVAILABILITY, repeats, QUICK_AVAIL_SCENARIOS,
                QUICK_AVAIL_PAIRS)),
        ]
    else:
        plan = [
            ("oracle_batch", lambda: bench_oracle_batch(
                ORACLE_INSTANCES, repeats, ORACLE_PAIRS, weights="unit")),
            ("oracle_batch_weighted", lambda: bench_oracle_batch(
                ORACLE_WEIGHTED_INSTANCES, repeats, ORACLE_PAIRS,
                weights="float")),
            ("weighted_oracle_bucket", lambda: bench_oracle_batch(
                ORACLE_BUCKET_INSTANCES, repeats, ORACLE_PAIRS,
                weights="int", search="bucket")),
            ("oracle_batch_multi", lambda: bench_oracle_batch(
                ORACLE_MULTI_INSTANCES, max(repeats, 3), ORACLE_PAIRS,
                weights="unit", search="batch")),
            ("routing_tables", lambda: bench_routing_tables(
                ROUTING_INSTANCES, repeats, ROUTING_DESTS)),
            ("routing_tables_multi", lambda: bench_routing_tables(
                ROUTING_MULTI_INSTANCES, max(repeats, 3), ROUTING_MULTI_DESTS,
                batch=True, search="batch")),
            ("availability_sweep", lambda: bench_availability(
                AVAILABILITY_INSTANCES, repeats, AVAIL_SCENARIOS,
                AVAIL_PAIRS)),
        ]
    if only:
        plan = [entry for entry in plan if only in entry[0]]
        if not plan:
            raise SystemExit(f"--only {only!r} matches no scenario")
    scenarios = {}
    for name, fn in plan:
        print(f"{name}:")
        scenarios[name] = fn()
    report = {
        "benchmark": "dict vs csr backend, applications layer",
        "quick": quick,
        "seed": SEED,
        "repeats": repeats,
        "timing": "best-of-repeats",
        "python": platform.python_version(),
        "scenarios": scenarios,
    }
    # Headline trajectory: the batched oracle on the largest instance.
    if "oracle_batch" in scenarios:
        report["batched_oracle_speedup"] = (
            scenarios["oracle_batch"]["instances"][-1]["speedup"]
        )
    return report


def _all_parity_ok(report) -> bool:
    return all(
        row["identical_outputs"]
        for scenario in report["scenarios"].values()
        for row in scenario["instances"]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON report "
                             f"(default: {DEFAULT_OUTPUT})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per backend (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke run: tiny instances, one repeat "
                             "(parity checks still apply)")
    parser.add_argument("--only", default=None, metavar="SUBSTR",
                        help="run only scenarios whose name contains "
                             "this substring (e.g. 'bucket'); a "
                             "filtered run never writes the JSON report")
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats, quick=args.quick, only=args.only)
    if args.only:
        print("filtered run: skipping JSON write")
    elif args.quick and args.output == DEFAULT_OUTPUT:
        print("quick run: skipping JSON write (pass --output to force)")
    else:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.output}")
    if not _all_parity_ok(report):
        print("ERROR: backend parity violated")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
