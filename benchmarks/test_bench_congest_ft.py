"""E11 -- Theorem 15: the CONGEST fault-tolerant construction.

Reports the pipelined round decomposition (phase 1 packing + phase 2
congestion-scheduled Baswana-Sen) against the theorem's
O(f^2(log f + log log n) + k^2 f log n) shape, plus size vs the
O(k f^(2-1/k) n^(1+1/k) log n) bound.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.bounds import congest_round_bound, congest_size_bound
from repro.distributed import congest_ft_spanner
from repro.graph import generators
from repro.verification import verify_ft_spanner

N, K = 40, 2


def test_bench_congest_ft_vs_f(benchmark):
    def run():
        rows = []
        g = generators.gnp_random_graph(N, 0.25, seed=1000)
        for f in (1, 2, 3):
            result = congest_ft_spanner(
                g, K, f, seed=1000 + f, iteration_constant=1.0
            )
            rows.append((f, result))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"E11: CONGEST FT spanner (G({N}, .25), k={K})",
        ["f", "iterations", "rounds", "phase1", "phase2",
         "edge congestion", "round bound shape", "|E(H)|", "size bound"],
    )
    for f, result in rows:
        table.add_row([
            f,
            int(result.extra["iterations"]),
            result.rounds,
            int(result.extra["phase1_rounds"]),
            int(result.extra["phase2_rounds"]),
            int(result.extra["edge_congestion"]),
            congest_round_bound(N, K, f),
            result.num_edges,
            congest_size_bound(N, K, f),
        ])
        assert result.extra["max_message_words"] <= 8
        assert result.num_edges <= 4 * congest_size_bound(N, K, f)
    emit(table, "E11_congest_ft")
    # Rounds grow with f (more iterations, more congestion).
    round_counts = [r[1].rounds or 0 for r in rows]
    assert round_counts[0] <= round_counts[-1]


def test_bench_congest_ft_correctness(benchmark):
    """Whp correctness at the theorem's iteration count (small n)."""

    def run():
        g = generators.gnp_random_graph(20, 0.3, seed=1001)
        result = congest_ft_spanner(g, 2, 1, seed=7, iterations=120)
        report = verify_ft_spanner(g, result.spanner, t=3, f=1)
        return result, report

    result, report = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E11b: CONGEST FT correctness (n=20, k=2, f=1, 120 iterations)",
        ["|E(G)|", "|E(H)|", "rounds", "verification"],
    )
    table.add_row([
        result.edges_considered or "-", result.num_edges, result.rounds,
        "OK (exhaustive)" if report.ok and report.exhaustive else str(report.ok),
    ])
    emit(table, "E11b_congest_ft_correct")
    assert report.ok, str(report.counterexample)
