"""E18 (extension) -- the fault-tolerant distance oracle application.

Measures what an adopter cares about: preprocessing cost, storage
savings, query latency (cold / warm-cache), guarantee compliance, and
the Monte-Carlo degradation profile beyond the design budget.
"""

from __future__ import annotations

import math
import random
import time

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.applications import (
    FaultTolerantDistanceOracle,
    degradation_profile,
)
from repro.graph import generators
from repro.graph.traversal import dijkstra
from repro.graph.views import VertexFaultView


def test_bench_oracle_quality(benchmark):
    def run():
        g = generators.ensure_connected(
            generators.gnp_random_graph(120, 0.1, seed=1800), seed=1800
        )
        start = time.perf_counter()
        oracle = FaultTolerantDistanceOracle(g, k=2, f=2)
        prep = time.perf_counter() - start
        rng = random.Random(0)
        nodes = sorted(g.nodes())
        # Measure stretch compliance on random (pair, fault) samples.
        worst = 1.0
        for _ in range(60):
            faults = rng.sample(nodes, 2)
            candidates = [x for x in nodes if x not in faults]
            u, v = rng.sample(candidates, 2)
            gv = VertexFaultView(g, set(faults))
            true = dijkstra(gv, u, target=v).get(v, math.inf)
            est = oracle.distance(u, v, faults=faults)
            if math.isinf(true):
                continue
            worst = max(worst, est / true)
        # Query latency: cold vs warm (same fault set, many pairs).
        # Best-of-3 on both sides: a single-shot timing at this scale
        # (~100us) can be 20x off when a GC pause from earlier tests
        # lands inside it, flipping the warm < cold assertion below.
        # Each cold repeat uses a *fresh* fault scenario so it is a
        # genuine SSSP cache miss.
        cold = float("inf")
        for cold_faults in ([nodes[5], nodes[60]], [nodes[7], nodes[70]],
                            [nodes[9], nodes[80]]):
            start = time.perf_counter()
            oracle.distance(nodes[0], nodes[90], faults=cold_faults)
            cold = min(cold, time.perf_counter() - start)
        faults = [nodes[3], nodes[50]]
        oracle.distance(nodes[0], nodes[90], faults=faults)  # warm the LRU
        queries = 200
        warm = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(queries):
                u, v = rng.sample(nodes[:100], 2)
                if u not in faults and v not in faults:
                    oracle.distance(u, v, faults=faults)
            warm = min(warm, (time.perf_counter() - start) / queries)
        return g, oracle, prep, worst, cold, warm

    g, oracle, prep, worst, cold, warm = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = Table(
        "E18a: FT distance oracle (G(120, .1), k=2, f=2)",
        ["quantity", "value"],
    )
    table.add_row(["graph edges", g.num_edges])
    table.add_row(["oracle edges", oracle.size])
    table.add_row(["storage ratio", oracle.size / g.num_edges])
    table.add_row(["preprocess seconds", prep])
    table.add_row(["worst sampled stretch", worst])
    table.add_row(["stretch guarantee", oracle.stretch])
    table.add_row(["cold query seconds", cold])
    table.add_row(["warm query seconds", warm])
    emit(table, "E18a_oracle")
    assert worst <= oracle.stretch + 1e-9
    assert warm < cold  # the SSSP cache must pay off


def test_bench_degradation_profile(benchmark):
    def run():
        g = generators.ensure_connected(
            generators.gnp_random_graph(80, 0.12, seed=1801), seed=1801
        )
        oracle = FaultTolerantDistanceOracle(g, k=2, f=2)
        return g, oracle, degradation_profile(
            g, oracle.spanner, guarantee=3.0, max_failures=5,
            scenarios=20, pairs_per_scenario=15, seed=2,
        )

    g, oracle, profile = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E18b: degradation beyond the design budget (f=2, guarantee 3)",
        ["failures", "connectivity", "mean stretch", "p95", "max",
         "violations"],
    )
    for j, report in profile:
        table.add_row([
            j, report.connectivity, report.mean_stretch,
            report.p95_stretch, report.max_stretch,
            report.guarantee_violations,
        ])
        if j <= 2:
            # Within budget: the theorem forbids violations.
            assert report.guarantee_violations == 0
            assert report.connectivity == 1.0
    emit(table, "E18b_degradation")
