"""E3 -- Theorem 8: spanner size scaling in n.

|E(H)| should scale as n^(1+1/k) (times k f^(1-1/k)).  We sweep n on
dense-enough G(n, p) so the input never binds, fit the measured exponent,
and compare to 1 + 1/k.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.experiments import fit_power_law
from repro.analysis.tables import Table
from repro.core.bounds import modified_greedy_size_bound
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators

NS = (40, 60, 90, 130, 190)
K, F = 2, 2


def _sweep():
    rows = []
    for n in NS:
        # Complete graphs: the input never constrains the spanner, so the
        # measured size is purely the algorithm's output density.
        g = generators.complete_graph(n)
        result = fault_tolerant_spanner(g, K, F)
        rows.append((n, g.num_edges, result.num_edges,
                     modified_greedy_size_bound(n, K, F)))
    return rows


def test_bench_size_vs_n(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        f"E3: size vs n (k={K}, f={F}; bound shape k f^(1-1/k) n^(1+1/k))",
        ["n", "|E(G)|", "|E(H)|", "bound shape", "ratio"],
    )
    for n, m, size, bound in rows:
        table.add_row([n, m, size, bound, size / bound])
    ns = [r[0] for r in rows]
    sizes = [r[2] for r in rows]
    exponent = fit_power_law(ns, sizes)
    table.add_row(["fit", "", f"n^{exponent:.2f}",
                   f"theory n^{1 + 1/K:.2f}", ""])
    emit(table, "E3_size_vs_n")
    # The measured exponent should be near 1 + 1/k = 1.5 (within the
    # noise of small-n experiments and input-density effects).
    assert exponent <= 1.0 + 1.0 / K + 0.35
    # Ratios must not diverge: last ratio within 3x of first.
    ratios = [r[2] / r[3] for r in rows]
    assert ratios[-1] <= 3.0 * ratios[0]


def test_bench_single_large_build(benchmark):
    g = generators.complete_graph(120)
    result = benchmark.pedantic(
        lambda: fault_tolerant_spanner(g, K, F), rounds=2, iterations=1
    )
    assert result.num_edges > 0
