"""E5 -- Theorem 8: spanner size scaling in k.

Larger stretch buys sparsity: |E(H)| should fall as k grows (the
n^(1+1/k) factor dominates the linear k factor on dense inputs).
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.bounds import modified_greedy_size_bound
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators

N, F = 70, 2
KS = (1, 2, 3, 4)


def _sweep():
    g = generators.complete_graph(N)
    rows = []
    for k in KS:
        result = fault_tolerant_spanner(g, k, F)
        rows.append((k, 2 * k - 1, result.num_edges,
                     modified_greedy_size_bound(N, k, F)))
    return rows


def test_bench_size_vs_k(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = Table(
        f"E5: size vs k (K_{N}, f={F})",
        ["k", "stretch", "|E(H)|", "bound shape", "ratio"],
    )
    for k, stretch, size, bound in rows:
        table.add_row([k, stretch, size, bound, size / bound])
    emit(table, "E5_size_vs_k")
    sizes = [r[2] for r in rows]
    # k = 1 keeps everything; k = 2 must already compress a clique hard.
    assert sizes[0] == N * (N - 1) // 2
    assert sizes[1] < sizes[0] / 3
    # Nonincreasing thereafter (small noise slack).
    assert all(a >= b - 3 for a, b in zip(sizes[1:], sizes[2:]))


def test_bench_build_k4(benchmark):
    g = generators.complete_graph(N)
    result = benchmark.pedantic(
        lambda: fault_tolerant_spanner(g, 4, F), rounds=2, iterations=1
    )
    assert result.num_edges > 0
