"""E9 -- Theorem 12: the LOCAL algorithm.

Round counts should grow like O(log n) (compare doubling n to the round
delta) and the size should exceed the centralized greedy by at most an
O(log n) factor.  Every output is verified fault tolerant.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.distributed import local_ft_spanner
from repro.graph import generators
from repro.verification import verify_ft_spanner

K, F = 2, 1
NS = (20, 40, 80, 160)


def test_bench_local_sweep(benchmark):
    def run():
        rows = []
        for n in NS:
            g = generators.gnp_random_graph(n, min(1.0, 8.0 / n), seed=800 + n)
            local = local_ft_spanner(g, K, F, seed=n)
            central = fault_tolerant_spanner(g, K, F)
            report = verify_ft_spanner(
                g, local.spanner, t=2 * K - 1, f=F,
                exhaustive_budget=2_000, samples=150, seed=n,
            )
            rows.append((n, g.num_edges, local, central.num_edges, report))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"E9: LOCAL FT spanner (k={K}, f={F}, G(n, 8/n))",
        ["n", "m", "rounds", "log2 n", "rounds/log2 n",
         "|E| local", "|E| central", "size overhead", "verified"],
    )
    for n, m, local, central_edges, report in rows:
        log_n = math.log2(n)
        overhead = local.num_edges / max(central_edges, 1)
        table.add_row([
            n, m, local.rounds, log_n, local.rounds / log_n,
            local.num_edges, central_edges, overhead,
            "OK" if report.ok else "FAIL",
        ])
        assert report.ok, str(report.counterexample)
        # Theorem 12 overhead: O(log n); allow the constant room.
        assert overhead <= 3 * log_n
    emit(table, "E9_local")
    # O(log n) rounds: rounds/log n must not grow as n doubles 3 times.
    normalized = [r[2].rounds / math.log2(r[0]) for r in rows]
    assert normalized[-1] <= 2.5 * normalized[0]


def test_bench_local_build(benchmark):
    g = generators.gnp_random_graph(60, 0.12, seed=801)
    result = benchmark.pedantic(
        lambda: local_ft_spanner(g, K, F, seed=9), rounds=2, iterations=1
    )
    assert result.rounds is not None
