"""E8 -- the optimality gap: Algorithm 3 vs Algorithm 1.

Theorem 8 guarantees the modified greedy is within O(k) of the optimal
greedy size.  We measure the actual ratio on instances where Algorithm 1
is feasible -- it should hover near 1, far below the worst-case k.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit, geometric_mean
from repro.analysis.experiments import optimality_gap_sweep
from repro.analysis.tables import Table

CONFIGS = [
    (12, 0.40, 2, 1),
    (14, 0.40, 2, 1),
    (16, 0.40, 2, 1),
    (12, 0.50, 2, 2),
    (14, 0.45, 3, 1),
]


def test_bench_optimality_gap(benchmark):
    pairs = benchmark.pedantic(
        lambda: optimality_gap_sweep(CONFIGS, seed=700),
        rounds=1, iterations=1,
    )
    table = Table(
        "E8: modified greedy size vs exponential greedy size "
        "(guarantee: ratio <= O(k))",
        ["n", "k", "f", "|E| modified", "|E| exact", "ratio", "k"],
    )
    ratios = []
    for modified, exact in pairs:
        ratio = modified.spanner_edges / max(exact.spanner_edges, 1)
        ratios.append(ratio)
        table.add_row([modified.n, modified.k, modified.f,
                       modified.spanner_edges, exact.spanner_edges,
                       ratio, modified.k])
        # The theorem's guarantee, with a small noise allowance: the
        # modified greedy never exceeds ~k times the optimal size.
        assert ratio <= modified.k + 0.5
    table.add_row(["geo-mean", "", "", "", "",
                   geometric_mean(ratios), ""])
    emit(table, "E8_optimality_gap")
    # On typical instances the gap should be modest (well under k).
    assert geometric_mean(ratios) <= 1.5
