"""E20 (extension) -- lower-bound-style blow-up instances [BDPW18].

Random workloads leave the Theorem 8 bound slack (E3); blow-up
instances are where density is *forced*.  This bench measures the kept
fraction on (f+1)-fold blow-ups of high-girth bases -- near-total
retention, versus the small fractions of E3 -- and that outputs remain
correct.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.hard_instances import (
    forced_bundle_edges,
    vft_lower_bound_instance,
)
from repro.analysis.tables import Table
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.verification import verify_ft_spanner


def test_bench_blowup_density(benchmark):
    def run():
        rows = []
        for base_n, f in [(10, 1), (10, 2), (14, 1), (14, 2)]:
            inst, base, copies = vft_lower_bound_instance(
                base_n, 2, f, seed=2000 + base_n + f
            )
            result = fault_tolerant_spanner(inst, 2, f)
            rows.append((base_n, f, base.num_edges, inst.num_edges,
                         result.num_edges, forced_bundle_edges(base, f)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E20: greedy on [BDPW18] blow-up instances (k=2) -- density is "
        "forced, unlike random workloads",
        ["base n", "f", "base edges", "instance edges", "|E(H)|",
         "forced floor", "kept fraction"],
    )
    for base_n, f, base_m, inst_m, kept, floor in rows:
        table.add_row([base_n, f, base_m, inst_m, kept, floor,
                       kept / inst_m])
        assert kept >= floor
        # The hard instances force near-total retention.
        assert kept >= 0.8 * inst_m
    emit(table, "E20_hard_instances")


def test_bench_blowup_correct(benchmark):
    def run():
        inst, base, copies = vft_lower_bound_instance(8, 2, 1, seed=2001)
        result = fault_tolerant_spanner(inst, 2, 1)
        report = verify_ft_spanner(
            inst, result.spanner, t=3, f=1, exhaustive_budget=2_000,
            samples=200, seed=0,
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.ok
