"""E16 -- Lemma 6 / Lemma 7 made executable.

Measures the actual blocking-set size against the (2k-1) f |E(H)| bound
and the extracted high-girth subgraph against its node/edge shapes --
the two pillars of the Theorem 8 size proof, checked on real runs.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.blocking import (
    blocking_set_from_certificates,
    extract_high_girth_subgraph,
    is_blocking_set,
)
from repro.core.bounds import (
    blocking_set_bound,
    high_girth_subgraph_edges,
    high_girth_subgraph_nodes,
    moore_bound,
)
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.graph.girth import girth_exceeds


def test_bench_blocking_set_sizes(benchmark):
    def run():
        rows = []
        for n, k, f in [(40, 2, 1), (60, 2, 2), (40, 3, 1)]:
            g = generators.gnp_random_graph(n, 0.4, seed=1500 + n + k + f)
            result = fault_tolerant_spanner(g, k, f)
            blocking = blocking_set_from_certificates(result)
            verified = is_blocking_set(
                result.spanner, blocking, t=2 * k, max_cycles=2_000_000
            )
            rows.append((n, k, f, result.num_edges, len(blocking),
                         blocking_set_bound(result.num_edges, k, f),
                         verified))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E16a: Lemma 6 -- blocking set size vs (2k-1) f |E(H)|",
        ["n", "k", "f", "|E(H)|", "|B|", "bound", "|B|/bound",
         "Defn 2 verified"],
    )
    for n, k, f, m_h, b, bound, verified in rows:
        table.add_row([n, k, f, m_h, b, bound, b / bound, verified])
        assert b <= bound
        assert verified
    emit(table, "E16a_blocking")


def test_bench_high_girth_extraction(benchmark):
    def run():
        k, f = 2, 1
        g = generators.gnp_random_graph(80, 0.3, seed=1501)
        result = fault_tolerant_spanner(g, k, f)
        blocking = blocking_set_from_certificates(result)
        sub = extract_high_girth_subgraph(
            result.spanner, blocking, k, f, seed=3
        )
        return k, f, result, sub

    k, f, result, sub = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E16b: Lemma 7 -- extracted high-girth subgraph (n=80, k=2, f=1)",
        ["quantity", "measured", "theory shape"],
    )
    table.add_row(["girth > 2k", girth_exceeds(sub, 2 * k), "guaranteed"])
    table.add_row(["nodes", sub.num_nodes,
                   high_girth_subgraph_nodes(80, k, f)])
    table.add_row(["edges", sub.num_edges,
                   f">= ~{high_girth_subgraph_edges(result.num_edges, k, f):.1f} (expectation)"])
    table.add_row(["Moore cap", moore_bound(max(sub.num_nodes, 1), k),
                   "n'^(1+1/k) + n'"])
    emit(table, "E16b_extraction")
    assert girth_exceeds(sub, 2 * k)
    assert sub.num_nodes == high_girth_subgraph_nodes(80, k, f)
    assert sub.num_edges <= moore_bound(max(sub.num_nodes, 1), k)
