"""Micro-benchmark: parallel CONGEST execution vs the sequential simulator.

Runs the distributed constructions twice -- sequentially (``workers=None``)
and on the shared parallel substrate (:mod:`repro.parallel`) -- and checks
the outputs are bit-identical before recording any timing, writing the
results to ``BENCH_distributed.json`` at the repository root.

* ``instances_congest_ft`` -- the Theorem 15 fault-tolerant construction
  (:func:`congest_ft_spanner`).  Its N Baswana-Sen instances are the
  embarrassingly parallel axis: ``workers=W`` shards them into one
  contiguous slice per worker process.  This scenario carries the
  headline ``parallel_speedup_at_max_n``.
* ``rounds_congest_bs`` -- the Theorem 14 Baswana-Sen CONGEST protocol
  (:func:`congest_baswana_sen`) with its *rounds* partitioned across
  workers (per-worker node partitions, message exchange at every round
  barrier).  This measures the round-barrier cost: cross-partition
  messages are pickled through pipes once per round, so the row also
  reports per-round latency for both modes.

``parity_ok`` records that the parallel run produced the bit-identical
spanner, round count, and measured extras as the sequential simulator --
the substrate's one correctness contract, asserted per row (a parity
failure fails the run).  The *speedup* is a measurement, not an
assertion: it depends on the CPUs actually available (recorded top-level
as ``cpus``).  On a single-core runner the parallel path cannot beat
sequential wall-clock for CPU-bound rounds; the report then records the
substrate's overhead honestly instead of a speedup.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_distributed.py [--quick]

``--quick`` shrinks to a seconds-long smoke run (used by CI); the JSON
it writes is marked ``"quick": true`` so a full run's numbers are never
silently overwritten by smoke ones unless you ask for it.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.distributed import congest_baswana_sen, congest_ft_spanner
from repro.graph import generators

SEED = 42
RUN_SEED = 7
WORKERS = 2

# (n, p) rows per scenario; the ft rows are the headline trajectory.
FT_INSTANCES = [(400, 0.025), (900, 0.012), (1400, 0.008)]
FT_QUICK = [(120, 0.08)]
BS_INSTANCES = [(150, 0.06), (300, 0.035)]
BS_QUICK = [(60, 0.12)]

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_distributed.json"
)


def _instance(n, p):
    return generators.ensure_connected(
        generators.gnp_random_graph(n, p, seed=SEED), seed=SEED
    )


def _fingerprint(result):
    """Everything observable about a SpannerResult, comparably."""
    return (
        sorted((repr(u), repr(v)) for u, v in result.spanner.edges()),
        result.rounds,
        sorted((result.extra or {}).items()),
    )


def _time_pair(run_sequential, run_parallel, repeats):
    """Best-of-``repeats`` for both modes, alternating seq/par so
    machine noise lands on both sides evenly."""
    t_seq = t_par = float("inf")
    r_seq = r_par = None
    for _ in range(repeats):
        start = time.perf_counter()
        r_seq = run_sequential()
        t_seq = min(t_seq, time.perf_counter() - start)
        start = time.perf_counter()
        r_par = run_parallel()
        t_par = min(t_par, time.perf_counter() - start)
    return t_seq, r_seq, t_par, r_par


def bench_ft_instances(instances, repeats):
    """Instance-sharded congest_ft: sequential vs substrate workers."""
    rows = []
    for n, p in instances:
        g = _instance(n, p)

        def seq():
            return congest_ft_spanner(
                g, 2, 2, seed=RUN_SEED, iteration_constant=0.5
            )

        def par():
            return congest_ft_spanner(
                g, 2, 2, seed=RUN_SEED, iteration_constant=0.5,
                workers=WORKERS,
            )

        t_seq, r_seq, t_par, r_par = _time_pair(seq, par, repeats)
        parity = _fingerprint(r_seq) == _fingerprint(r_par)
        sec_seq = round(t_seq, 4)
        sec_par = round(t_par, 4)
        row = {
            "n": n,
            "p": p,
            "m": g.num_edges,
            "workers": WORKERS,
            "instances": int(r_seq.extra["instances_run"]),
            "rounds": r_seq.rounds,
            "seconds_sequential": sec_seq,
            "seconds_parallel": sec_par,
            # From the rounded values on purpose: the committed JSON
            # must be self-consistent for scripts/check_bench_json.py.
            "speedup": round(sec_seq / sec_par, 2)
            if sec_par > 0 else float("inf"),
            "parity_ok": parity,
        }
        rows.append(row)
        print(
            f"  n={n:5d} m={g.num_edges:6d} "
            f"instances={row['instances']:3d}  "
            f"seq {t_seq:7.3f}s  par({WORKERS}w) {t_par:7.3f}s  "
            f"speedup {row['speedup']:5.2f}x  "
            f"parity={'ok' if parity else 'FAIL'}"
        )
    return {
        "description": (
            "Theorem 15 congest_ft_spanner end to end: the qualifying "
            "Baswana-Sen instances run serially in-process vs sharded "
            "into contiguous slices over substrate worker processes; "
            "spanner edges, round schedule, and measured extras must be "
            "bit-identical"
        ),
        "parameters": {
            "k": 2, "f": 2, "seed": RUN_SEED,
            "iteration_constant": 0.5, "workers": WORKERS,
        },
        "instances": rows,
    }


def bench_bs_rounds(instances, repeats):
    """Round-partitioned congest_bs: every round crosses the barrier."""
    rows = []
    for n, p in instances:
        g = _instance(n, p)

        def seq():
            return congest_baswana_sen(g, 3, seed=RUN_SEED)

        def par():
            return congest_baswana_sen(
                g, 3, seed=RUN_SEED, workers=WORKERS
            )

        t_seq, r_seq, t_par, r_par = _time_pair(seq, par, repeats)
        parity = _fingerprint(r_seq) == _fingerprint(r_par)
        rounds = r_seq.rounds or 1
        sec_seq = round(t_seq, 4)
        sec_par = round(t_par, 4)
        row = {
            "n": n,
            "p": p,
            "m": g.num_edges,
            "workers": WORKERS,
            "rounds": r_seq.rounds,
            "ms_per_round_sequential": round(1000.0 * t_seq / rounds, 3),
            "ms_per_round_parallel": round(1000.0 * t_par / rounds, 3),
            "seconds_sequential": sec_seq,
            "seconds_parallel": sec_par,
            "speedup": round(sec_seq / sec_par, 2)
            if sec_par > 0 else float("inf"),
            "parity_ok": parity,
        }
        rows.append(row)
        print(
            f"  n={n:5d} m={g.num_edges:6d} rounds={r_seq.rounds:4d}  "
            f"seq {t_seq:7.3f}s ({row['ms_per_round_sequential']:7.2f} "
            f"ms/round)  par({WORKERS}w) {t_par:7.3f}s "
            f"({row['ms_per_round_parallel']:7.2f} ms/round)  "
            f"parity={'ok' if parity else 'FAIL'}"
        )
    return {
        "description": (
            "Theorem 14 congest_baswana_sen with rounds executed "
            "across worker processes over node partitions (per-worker "
            "inboxes, pickled cross-partition bundles at every round "
            "barrier) vs the sequential simulator; this prices the "
            "round barrier itself, so per-round latency is reported "
            "for both modes"
        ),
        "parameters": {"k": 3, "seed": RUN_SEED, "workers": WORKERS},
        "instances": rows,
    }


def run(repeats: int = 3, quick: bool = False):
    if quick:
        repeats = 1
        ft_rows, bs_rows = FT_QUICK, BS_QUICK
    else:
        ft_rows, bs_rows = FT_INSTANCES, BS_INSTANCES
    scenarios = {}
    print("instances_congest_ft:")
    scenarios["instances_congest_ft"] = bench_ft_instances(
        ft_rows, repeats
    )
    print("rounds_congest_bs:")
    scenarios["rounds_congest_bs"] = bench_bs_rounds(bs_rows, repeats)
    report = {
        "benchmark": "parallel CONGEST execution vs sequential simulator",
        "quick": quick,
        "seed": RUN_SEED,
        "repeats": repeats,
        "timing": "best-of-repeats",
        "python": platform.python_version(),
        "cpus": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1),
        "scenarios": scenarios,
    }
    # Headline trajectory: the instance-sharded scenario at its largest
    # n, where per-run substrate overhead is smallest relative to work.
    report["parallel_speedup_at_max_n"] = (
        scenarios["instances_congest_ft"]["instances"][-1]["speedup"]
    )
    return report


def _all_parity_ok(report) -> bool:
    return all(
        row["parity_ok"]
        for scenario in report["scenarios"].values()
        for row in scenario["instances"]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON report "
                             f"(default: {DEFAULT_OUTPUT})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per mode (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke run: tiny instances, one repeat "
                             "(parity checks still apply)")
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats, quick=args.quick)
    if args.quick and args.output == DEFAULT_OUTPUT:
        print("quick run: skipping JSON write (pass --output to force)")
    else:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.output}")
    if not _all_parity_ok(report):
        print("ERROR: parallel execution diverged from the sequential "
              "simulator")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
