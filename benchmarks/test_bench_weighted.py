"""E7 -- Theorem 10: the weighted algorithm (Algorithm 4).

Verifies fault tolerance on weighted workloads (uniform-weight G(n,p)
and geometric graphs, the [LNS98] motivation) and shows the size matches
the unweighted bound -- weights cost nothing, the paper's punchline.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.bounds import modified_greedy_size_bound
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.verification import max_stretch, verify_ft_spanner


def _workloads():
    return [
        ("uniform[1,10]", generators.weighted_gnp(
            30, 0.3, low=1.0, high=10.0, seed=601)),
        ("uniform[1,1000]", generators.weighted_gnp(
            30, 0.3, low=1.0, high=1000.0, seed=602)),
        ("geometric", generators.ensure_connected(
            generators.random_geometric_graph(30, 0.35, seed=603), seed=603)),
        ("unit (control)", generators.gnp_random_graph(30, 0.3, seed=604)),
    ]


def test_bench_weighted_sweep(benchmark):
    k, f = 2, 1

    def run():
        rows = []
        for name, g in _workloads():
            result = fault_tolerant_spanner(g, k, f)
            report = verify_ft_spanner(
                g, result.spanner, t=2 * k - 1, f=f,
                exhaustive_budget=20_000,
            )
            stretch = max_stretch(g, result.spanner)
            rows.append((name, g.num_edges, result.num_edges,
                         stretch, report))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = modified_greedy_size_bound(30, 2, 1)
    table = Table(
        "E7: weighted Algorithm 4 (k=2, f=1, n=30); bound shape "
        f"= {bound:.0f}",
        ["workload", "|E(G)|", "|E(H)|", "measured stretch",
         "guarantee", "FT verification"],
    )
    for name, m, size, stretch, report in rows:
        kind = "exhaustive" if report.exhaustive else "sampled"
        table.add_row([name, m, size, stretch, 3,
                       f"{'OK' if report.ok else 'FAIL'} ({kind})"])
        assert report.ok, f"{name}: {report.counterexample}"
        assert stretch <= 3.0 + 1e-9
        assert size <= 4 * bound
    emit(table, "E7_weighted")


def test_bench_weighted_build(benchmark):
    g = generators.weighted_gnp(80, 0.15, seed=605)
    benchmark(lambda: fault_tolerant_spanner(g, 2, 2))
