"""Micro-benchmark: dict vs CSR execution backend for the modified greedy.

Times ``fault_tolerant_spanner`` under both backends on three seeded
G(n, p) instances, checks edge-set parity, and writes the results to
``BENCH_backend.json`` at the repository root so successive PRs can
track the backend's performance trajectory.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_backend.py

This is a plain script (not a pytest benchmark) so it can run quickly in
CI and emit machine-readable output; the statistical benchmarks live in
``benchmarks/test_bench_*.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators

# (n, p) per instance, smallest to largest; seeds are fixed so the
# numbers are comparable across PRs.
INSTANCES = [(200, 0.10), (400, 0.05), (600, 0.04)]
SEED = 42
K = 2
F = 2

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_backend.json"


def _time_build(g, backend: str, repeats: int):
    """Best-of-``repeats`` wall clock and the result of the last run."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fault_tolerant_spanner(g, K, F, backend=backend)
        best = min(best, time.perf_counter() - start)
    return best, result


def run(repeats: int = 3):
    """Benchmark every instance; returns the report dict."""
    rows = []
    for n, p in INSTANCES:
        g = generators.gnp_random_graph(n, p, seed=SEED)
        t_dict, r_dict = _time_build(g, "dict", repeats)
        t_csr, r_csr = _time_build(g, "csr", repeats)
        identical = set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        rows.append({
            "n": n,
            "p": p,
            "m": g.num_edges,
            "spanner_edges": r_csr.spanner.num_edges,
            "bfs_calls": r_csr.bfs_calls,
            "seconds_dict": round(t_dict, 4),
            "seconds_csr": round(t_csr, 4),
            "speedup": round(t_dict / t_csr, 2),
            "identical_edge_sets": identical,
        })
        print(
            f"n={n:4d} m={g.num_edges:5d}  dict {t_dict:7.3f}s  "
            f"csr {t_csr:7.3f}s  speedup {t_dict / t_csr:5.2f}x  "
            f"parity={'ok' if identical else 'FAIL'}"
        )
    return {
        "benchmark": "dict vs csr backend, fault_tolerant_spanner",
        "parameters": {
            "k": K, "f": F, "fault_model": "vertex", "seed": SEED,
            "repeats": repeats, "timing": "best-of-repeats",
        },
        "python": platform.python_version(),
        "instances": rows,
        "largest_instance_speedup": rows[-1]["speedup"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON report "
                             f"(default: {DEFAULT_OUTPUT})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per backend (default 3)")
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {args.output}")
    if not all(r["identical_edge_sets"] for r in report["instances"]):
        print("ERROR: backend parity violated")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
