"""Micro-benchmark: dict vs CSR execution backend across the library.

Times four scenarios under both backends, checks output parity, and
writes the results to ``BENCH_backend.json`` at the repository root so
successive PRs can track the backend's performance trajectory:

* ``modified_greedy_unit`` -- ``fault_tolerant_spanner`` on unit-weight
  G(n, p) (the BFS/LBC hot path).
* ``classic_greedy_weighted`` -- the [ADD+93] baseline on weighted
  G(n, p) (one truncated Dijkstra per edge).
* ``exponential_greedy_weighted`` -- Algorithm 1 on a small weighted
  instance (the branch-and-bound Dijkstra search).
* ``verification_sweep`` -- exhaustive ``verify_ft_spanner`` of a
  weighted spanner (one Dijkstra per surviving edge per fault set).
* ``verify_bidir`` -- the same sweep on an *integral*-weighted instance
  with ``search="bidir"`` on the CSR side: every probe is a
  bidirectional Dijkstra meeting in the middle instead of a full
  forward search (identical report; the weighted-engine satellite of
  the snapshot substrate).
* ``modified_greedy_repack`` -- the CSR greedy with and without
  scheduled mid-run row compaction (``repack_every``), closing the
  ROADMAP question of whether long runs benefit from periodic
  repacking.  Here ``seconds_dict``/``seconds_csr`` read as
  ``seconds_no_repack``/``seconds_repack``.

Every scenario drives the unified public API (``build_spanner`` /
``SpannerSession``), so this doubles as an end-to-end check that
registry dispatch adds no overhead and preserves backend parity.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_backend.py [--quick]

``--quick`` shrinks every scenario to a seconds-long smoke run (used by
``scripts/verify.sh``); the JSON it writes is marked ``"quick": true``
so a full run's numbers are never silently overwritten by smoke ones
unless you ask for it.

This is a plain script (not a pytest benchmark) so it can run quickly in
CI and emit machine-readable output; the statistical benchmarks live in
``benchmarks/test_bench_*.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.graph import generators
from repro.registry import build_spanner
from repro.session import SpannerSession

SEED = 42
K = 2
F = 2

# (n, p) per instance, smallest to largest; seeds are fixed so the
# numbers are comparable across PRs.
MODIFIED_INSTANCES = [(200, 0.10), (400, 0.05), (600, 0.04)]
CLASSIC_INSTANCES = [(300, 0.06), (500, 0.04)]
EXPONENTIAL_INSTANCES = [(24, 0.30), (30, 0.25)]
VERIFICATION_INSTANCES = [(50, 0.15), (70, 0.10)]
VERIFY_BIDIR_INSTANCES = [(50, 0.15), (70, 0.10)]
REPACK_INSTANCES = [(400, 0.05)]
REPACK_EVERY = 256

QUICK_MODIFIED = [(100, 0.12)]
QUICK_CLASSIC = [(120, 0.10)]
QUICK_EXPONENTIAL = [(12, 0.35)]
QUICK_VERIFICATION = [(30, 0.20)]
QUICK_VERIFY_BIDIR = [(30, 0.20)]
QUICK_REPACK = [(100, 0.12)]
QUICK_REPACK_EVERY = 64

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_backend.json"


def _best_of(fn, repeats: int):
    """Best-of-``repeats`` wall clock and the result of the last run."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _row(n, p, m, extra, t_dict, t_csr, identical):
    row = {
        "n": n,
        "p": p,
        "m": m,
        **extra,
        "seconds_dict": round(t_dict, 4),
        "seconds_csr": round(t_csr, 4),
        "speedup": round(t_dict / t_csr, 2) if t_csr > 0 else float("inf"),
        "identical_outputs": identical,
    }
    print(
        f"  n={n:4d} m={m:5d}  dict {t_dict:7.3f}s  csr {t_csr:7.3f}s  "
        f"speedup {row['speedup']:5.2f}x  "
        f"parity={'ok' if identical else 'FAIL'}"
    )
    return row


def bench_modified_greedy(instances, repeats):
    rows = []
    for n, p in instances:
        g = generators.gnp_random_graph(n, p, seed=SEED)
        t_dict, r_dict = _best_of(
            lambda: build_spanner(g, "greedy", k=K, f=F, backend="dict"),
            repeats,
        )
        t_csr, r_csr = _best_of(
            lambda: build_spanner(g, "greedy", k=K, f=F, backend="csr"),
            repeats,
        )
        identical = set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        rows.append(_row(n, p, g.num_edges, {
            "spanner_edges": r_csr.spanner.num_edges,
            "bfs_calls": r_csr.bfs_calls,
        }, t_dict, t_csr, identical))
    return {
        "description": "fault_tolerant_spanner, unit weights (BFS/LBC)",
        "parameters": {"k": K, "f": F, "fault_model": "vertex"},
        "instances": rows,
    }


def bench_classic_greedy(instances, repeats):
    rows = []
    for n, p in instances:
        g = generators.weighted_gnp(n, p, seed=SEED)
        t_dict, r_dict = _best_of(
            lambda: build_spanner(g, "classic", k=K, backend="dict"), repeats
        )
        t_csr, r_csr = _best_of(
            lambda: build_spanner(g, "classic", k=K, backend="csr"), repeats
        )
        identical = set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
        rows.append(_row(n, p, g.num_edges, {
            "spanner_edges": r_csr.spanner.num_edges,
        }, t_dict, t_csr, identical))
    return {
        "description": "classic_greedy_spanner, weighted (Dijkstra probes)",
        "parameters": {"k": K},
        "instances": rows,
    }


def bench_exponential_greedy(instances, repeats):
    rows = []
    f = 2
    for n, p in instances:
        g = generators.weighted_gnp(n, p, seed=SEED)
        t_dict, r_dict = _best_of(
            lambda: build_spanner(g, "exact-greedy", k=K, f=f,
                                  backend="dict"),
            repeats,
        )
        t_csr, r_csr = _best_of(
            lambda: build_spanner(g, "exact-greedy", k=K, f=f,
                                  backend="csr"),
            repeats,
        )
        identical = (
            set(r_dict.spanner.edges()) == set(r_csr.spanner.edges())
            and r_dict.certificates == r_csr.certificates
        )
        rows.append(_row(n, p, g.num_edges, {
            "spanner_edges": r_csr.spanner.num_edges,
        }, t_dict, t_csr, identical))
    return {
        "description": "exponential_greedy_spanner, weighted "
                       "(branch-and-bound Dijkstra)",
        "parameters": {"k": K, "f": f, "fault_model": "vertex"},
        "instances": rows,
    }


def bench_repack(instances, repeats, repack_every):
    """CSR greedy with vs without scheduled mid-run row compaction."""
    rows = []
    for n, p in instances:
        g = generators.gnp_random_graph(n, p, seed=SEED)
        t_plain, r_plain = _best_of(
            lambda: build_spanner(g, "greedy", k=K, f=F, backend="csr"),
            repeats,
        )
        t_repack, r_repack = _best_of(
            lambda: build_spanner(
                g, "greedy", k=K, f=F, backend="csr",
                repack_every=repack_every,
            ),
            repeats,
        )
        identical = (
            set(r_plain.spanner.edges()) == set(r_repack.spanner.edges())
            and r_plain.certificates == r_repack.certificates
            and r_plain.bfs_calls == r_repack.bfs_calls
        )
        row = {
            "n": n,
            "p": p,
            "m": g.num_edges,
            "spanner_edges": r_repack.spanner.num_edges,
            "repack_every": repack_every,
            "repacks": int(r_repack.extra.get("repacks", 0)),
            "seconds_no_repack": round(t_plain, 4),
            "seconds_repack": round(t_repack, 4),
            "speedup": (
                round(t_plain / t_repack, 2) if t_repack > 0 else float("inf")
            ),
            "identical_outputs": identical,
        }
        print(
            f"  n={n:4d} m={g.num_edges:5d}  plain {t_plain:7.3f}s  "
            f"repack {t_repack:7.3f}s  speedup {row['speedup']:5.2f}x  "
            f"({row['repacks']} repacks)  "
            f"parity={'ok' if identical else 'FAIL'}"
        )
        rows.append(row)
    return {
        "description": "fault_tolerant_spanner on csr, repack_every "
                       "scheduling vs none (identical spanners; pure "
                       "memory-layout effect)",
        "parameters": {"k": K, "f": F, "fault_model": "vertex",
                       "repack_every": repack_every},
        "instances": rows,
    }


def bench_verification(instances, repeats):
    rows = []
    f = 1
    t = 2 * K - 1
    for n, p in instances:
        g = generators.weighted_gnp(n, p, seed=SEED)
        prebuilt = build_spanner(g, "greedy", k=K, f=f)
        h = prebuilt.spanner

        def run(backend):
            # A fresh session per run so the timing covers the CSR
            # freeze, exactly like the pre-session per-call behavior.
            session = SpannerSession(g, k=K, f=f, backend=backend)
            session.adopt(prebuilt)
            return session.verify(t=t)

        t_dict, r_dict = _best_of(lambda: run("dict"), repeats)
        t_csr, r_csr = _best_of(lambda: run("csr"), repeats)
        identical = (
            r_dict.ok == r_csr.ok
            and r_dict.exhaustive == r_csr.exhaustive
            and r_dict.fault_sets_checked == r_csr.fault_sets_checked
            and r_dict.counterexample == r_csr.counterexample
        )
        rows.append(_row(n, p, g.num_edges, {
            "spanner_edges": h.num_edges,
            "fault_sets_checked": r_csr.fault_sets_checked,
        }, t_dict, t_csr, identical))
    return {
        "description": "verify_ft_spanner, weighted, exhaustive "
                       "(Dijkstra sweep per fault set)",
        "parameters": {"t": t, "f": f, "fault_model": "vertex"},
        "instances": rows,
    }


def bench_verify_bidir(instances, repeats):
    """Exhaustive verification on integral weights, bidir vs dict."""
    rows = []
    f = 1
    t = 2 * K - 1
    for n, p in instances:
        g = generators.with_random_weights(
            generators.gnp_random_graph(n, p, seed=SEED),
            low=1.0, high=10.0, seed=SEED, integral=True,
        )
        prebuilt = build_spanner(g, "greedy", k=K, f=f)
        h = prebuilt.spanner

        def run(backend, search):
            # A fresh session per run so the timing covers the CSR
            # freeze, exactly like the pre-session per-call behavior.
            session = SpannerSession(
                g, k=K, f=f, backend=backend, search=search
            )
            session.adopt(prebuilt)
            return session.verify(t=t)

        t_dict, r_dict = _best_of(lambda: run("dict", "auto"), repeats)
        t_csr, r_csr = _best_of(lambda: run("csr", "bidir"), repeats)
        identical = (
            r_dict.ok == r_csr.ok
            and r_dict.exhaustive == r_csr.exhaustive
            and r_dict.fault_sets_checked == r_csr.fault_sets_checked
            and r_dict.counterexample == r_csr.counterexample
        )
        rows.append(_row(n, p, g.num_edges, {
            "spanner_edges": h.num_edges,
            "fault_sets_checked": r_csr.fault_sets_checked,
        }, t_dict, t_csr, identical))
    return {
        "description": "verify_ft_spanner, integral weights, exhaustive "
                       "(csr probes with search='bidir'; identical "
                       "report)",
        "parameters": {"t": t, "f": f, "fault_model": "vertex",
                       "search": "bidir"},
        "instances": rows,
    }


def run(repeats: int = 3, quick: bool = False, only: str = None):
    """Benchmark the scenarios (optionally filtered by name substring)."""
    if quick:
        plan = [
            ("modified_greedy_unit", bench_modified_greedy, QUICK_MODIFIED),
            ("classic_greedy_weighted", bench_classic_greedy, QUICK_CLASSIC),
            ("exponential_greedy_weighted", bench_exponential_greedy,
             QUICK_EXPONENTIAL),
            ("verification_sweep", bench_verification, QUICK_VERIFICATION),
            ("verify_bidir", bench_verify_bidir, QUICK_VERIFY_BIDIR),
            ("modified_greedy_repack",
             lambda inst, rep: bench_repack(inst, rep, QUICK_REPACK_EVERY),
             QUICK_REPACK),
        ]
        repeats = 1
    else:
        plan = [
            ("modified_greedy_unit", bench_modified_greedy,
             MODIFIED_INSTANCES),
            ("classic_greedy_weighted", bench_classic_greedy,
             CLASSIC_INSTANCES),
            ("exponential_greedy_weighted", bench_exponential_greedy,
             EXPONENTIAL_INSTANCES),
            ("verification_sweep", bench_verification,
             VERIFICATION_INSTANCES),
            ("verify_bidir", bench_verify_bidir, VERIFY_BIDIR_INSTANCES),
            ("modified_greedy_repack",
             lambda inst, rep: bench_repack(inst, rep, REPACK_EVERY),
             REPACK_INSTANCES),
        ]
    if only:
        plan = [entry for entry in plan if only in entry[0]]
        if not plan:
            raise SystemExit(f"--only {only!r} matches no scenario")
    scenarios = {}
    for name, fn, instances in plan:
        print(f"{name}:")
        scenarios[name] = fn(instances, repeats)
    report = {
        "benchmark": "dict vs csr backend",
        "quick": quick,
        "seed": SEED,
        "repeats": repeats,
        "timing": "best-of-repeats",
        "python": platform.python_version(),
        "scenarios": scenarios,
    }
    # Scoped name: this tracks only the BFS/LBC hot-path scenario (the
    # headline trajectory since PR 1), not the Dijkstra scenarios.
    if "modified_greedy_unit" in scenarios:
        report["modified_greedy_largest_instance_speedup"] = (
            scenarios["modified_greedy_unit"]["instances"][-1]["speedup"]
        )
    return report


def _all_parity_ok(report) -> bool:
    return all(
        row["identical_outputs"]
        for scenario in report["scenarios"].values()
        for row in scenario["instances"]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON report "
                             f"(default: {DEFAULT_OUTPUT})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per backend (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke run: tiny instances, one repeat "
                             "(parity checks still apply)")
    parser.add_argument("--only", default=None, metavar="SUBSTR",
                        help="run only scenarios whose name contains "
                             "this substring (e.g. 'verify' for the "
                             "weighted-engine sweeps); a filtered run "
                             "never writes the JSON report")
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats, quick=args.quick, only=args.only)
    if args.only:
        print("filtered run: skipping JSON write")
    elif args.quick and args.output == DEFAULT_OUTPUT:
        print("quick run: skipping JSON write (pass --output to force)")
    else:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.output}")
    if not _all_parity_ok(report):
        print("ERROR: backend parity violated")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
