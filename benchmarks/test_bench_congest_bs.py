"""E10 -- Theorem 14: Baswana-Sen in CONGEST.

Rounds must follow the O(k^2) schedule independent of n, every message
must fit the O(log n)-bit budget (the engine enforces it; we report the
measured maximum), and the output must be a (2k-1)-spanner of the
expected size.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.bounds import bs_size_bound
from repro.distributed import congest_baswana_sen
from repro.graph import generators
from repro.verification import max_stretch


def test_bench_congest_bs_rounds_vs_k(benchmark):
    def run():
        rows = []
        g = generators.weighted_gnp(60, 0.15, seed=900)
        for k in (1, 2, 3, 4, 5):
            result = congest_baswana_sen(g, k, seed=900 + k)
            stretch = max_stretch(g, result.spanner)
            rows.append((k, result, stretch))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E10a: CONGEST Baswana-Sen rounds vs k (weighted G(60, .15))",
        ["k", "rounds", "k^2", "rounds/k^2", "max msg words",
         "|E(H)|", "stretch", "guarantee"],
    )
    for k, result, stretch in rows:
        table.add_row([
            k, result.rounds, k * k, (result.rounds or 0) / (k * k),
            int(result.extra["max_message_words"]),
            result.num_edges, stretch, 2 * k - 1,
        ])
        assert stretch <= 2 * k - 1 + 1e-9
        assert result.extra["max_message_words"] <= 8
    emit(table, "E10a_congest_bs_k")
    # O(k^2): normalized rounds bounded.
    normalized = [(r[1].rounds or 0) / (r[0] ** 2) for r in rows]
    assert max(normalized) <= 8


def test_bench_congest_bs_rounds_vs_n(benchmark):
    """Rounds must NOT grow with n (the whole point of CONGEST BS)."""

    def run():
        rows = []
        for n in (30, 60, 120, 240):
            g = generators.weighted_gnp(n, min(1.0, 8.0 / n), seed=901 + n)
            result = congest_baswana_sen(g, 3, seed=n)
            rows.append((n, result.rounds, result.num_edges))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E10b: CONGEST Baswana-Sen rounds vs n (k=3)",
        ["n", "rounds", "|E(H)|", "size bound k n^(1+1/k)"],
    )
    for n, rounds, size in rows:
        table.add_row([n, rounds, size, bs_size_bound(n, 3)])
        assert size <= 6 * bs_size_bound(n, 3)
    emit(table, "E10b_congest_bs_n")
    round_counts = [r[1] for r in rows]
    assert max(round_counts) - min(round_counts) <= 2


def test_bench_congest_bs_build(benchmark):
    g = generators.weighted_gnp(80, 0.1, seed=903)
    benchmark.pedantic(
        lambda: congest_baswana_sen(g, 2, seed=1), rounds=3, iterations=1
    )
