"""E12 -- the baseline landscape: CLPR10 vs DK11 vs modified greedy.

The literature's size story, measured: [CLPR10] (~kf overhead) >
[DK11] (f^(2-1/k) log n) > modified greedy (k f^(1-1/k)) on dense
inputs, with the non-fault-tolerant [ADD+93] greedy as the floor.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.baselines import (
    classic_greedy_spanner,
    clpr_fault_tolerant_spanner,
    dk_fault_tolerant_spanner,
)
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators

N, K = 50, 2


def test_bench_baseline_sizes(benchmark):
    def run():
        g = generators.complete_graph(N)
        rows = []
        for f in (1, 2, 4):
            greedy = fault_tolerant_spanner(g, K, f).num_edges
            # DK11's guarantee needs Theta(f^3 log n) iterations with a
            # substantial constant at this scale; 120 * f empirically
            # yields genuinely fault-tolerant outputs (cf. the test
            # suite), making the size comparison fair.
            dk = dk_fault_tolerant_spanner(
                g, K, f, seed=1100 + f, iterations=120 * f
            ).num_edges
            clpr = clpr_fault_tolerant_spanner(g, K, f, seed=1100 + f).num_edges
            rows.append((f, greedy, dk, clpr))
        floor = classic_greedy_spanner(g, K).num_edges
        return rows, floor

    (rows, floor) = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"E12: fault-tolerant spanner sizes on K_{N} (k={K}); "
        f"non-FT greedy floor = {floor}",
        ["f", "modified greedy", "DK11", "CLPR10",
         "greedy/floor", "DK/greedy", "CLPR/greedy"],
    )
    for f, greedy, dk, clpr in rows:
        table.add_row([
            f, greedy, dk, clpr,
            greedy / floor, dk / max(greedy, 1), clpr / max(greedy, 1),
        ])
        # The paper's claim: the greedy is the sparsest FT construction.
        assert greedy <= dk
        assert greedy <= clpr
    emit(table, "E12_baselines")
    # The greedy's win must be substantial at every f (the paper's size
    # improvement is a polynomial factor, not marginal constants).
    for f, greedy, dk, clpr in rows:
        assert dk / max(greedy, 1) >= 1.5
        assert clpr / max(greedy, 1) >= 1.5


def test_bench_dk_build(benchmark):
    g = generators.complete_graph(N)
    benchmark.pedantic(
        lambda: dk_fault_tolerant_spanner(g, K, 2, seed=5),
        rounds=2, iterations=1,
    )


def test_bench_clpr_build(benchmark):
    g = generators.complete_graph(N)
    benchmark.pedantic(
        lambda: clpr_fault_tolerant_spanner(g, K, 2, seed=5),
        rounds=2, iterations=1,
    )
