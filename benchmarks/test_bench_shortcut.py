"""E17 (extension) -- the degree-shortcut ablation.

An engineering extension beyond the paper: skip LBC calls whose YES
answer is forced by Theorem 4 (an endpoint's whole H-neighborhood is a
cut of size <= f).  The output is provably identical; this bench
measures the BFS savings and wall-clock effect across densities.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.greedy_modified import modified_greedy_unweighted
from repro.graph import generators

K, F = 2, 3


def test_bench_shortcut_ablation(benchmark):
    def run():
        rows = []
        for name, g in [
            ("sparse G(150, 4/n)", generators.gnp_random_graph(
                150, 4.0 / 150, seed=1700)),
            ("medium G(120, 12/n)", generators.gnp_random_graph(
                120, 12.0 / 120, seed=1701)),
            ("dense K_60", generators.complete_graph(60)),
        ]:
            start = time.perf_counter()
            plain = modified_greedy_unweighted(g, K, F)
            t_plain = time.perf_counter() - start
            start = time.perf_counter()
            fast = modified_greedy_unweighted(g, K, F, degree_shortcut=True)
            t_fast = time.perf_counter() - start
            assert plain.spanner == fast.spanner  # exactness
            rows.append((name, g.num_edges, plain.bfs_calls,
                         fast.bfs_calls,
                         int(fast.extra["degree_shortcuts"]),
                         t_plain, t_fast))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"E17: degree-shortcut ablation (k={K}, f={F}); output verified "
        "identical in every row",
        ["workload", "m", "BFS plain", "BFS shortcut", "shortcuts taken",
         "sec plain", "sec shortcut", "speedup"],
    )
    for name, m, bfs_plain, bfs_fast, taken, tp, tf in rows:
        table.add_row([name, m, bfs_plain, bfs_fast, taken, tp, tf,
                       tp / max(tf, 1e-6)])
        assert bfs_fast <= bfs_plain
    emit(table, "E17_shortcut")
    # On the sparse workload most edges are forced: big BFS savings.
    sparse = rows[0]
    assert sparse[3] < sparse[2]


def test_bench_shortcut_build(benchmark):
    g = generators.gnp_random_graph(150, 4.0 / 150, seed=1702)
    benchmark(
        lambda: modified_greedy_unweighted(g, K, F, degree_shortcut=True)
    )
