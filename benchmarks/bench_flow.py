"""Micro-benchmark: exhaustive fault-set sweep vs witness verification.

Times ``verify_ft_spanner`` in its two modes on the same spanner and
checks the verdicts agree, writing the results to ``BENCH_flow.json``
at the repository root.  The point being measured is the complexity
cliff the Dinic witness engine removes: the exhaustive sweep enumerates
``C(n, f)`` (vertex) or ``C(m, f)`` (edge) fault sets, while witness
mode certifies each spanner-edge pair once with an (f+1)-disjoint-path
max-flow certificate -- polynomial in n and m with no ``C(., f)`` term,
so the gap widens combinatorially as f grows:

* ``witness_vs_exhaustive_vertex`` -- vertex faults, f = 1, 2, 3 on a
  fixed G(30, 0.25) instance.  The sweep is forced exhaustive (a
  proof) by a large budget; witness mode produces the same
  proof-strength verdict from certificates.
* ``witness_vs_exhaustive_edge`` -- edge faults, f = 1, 2.  The edge
  fault universe is m >> n, so the sweep blows up sooner (f = 3 would
  already be ~220k fault sets on this instance).

``identical_outputs`` records that both modes returned the same
verdict AND both were full proofs (exhaustive sweep; full pair
coverage with no sampled fallback on the witness side) -- the speedup
is only meaningful between runs of equal evidentiary strength.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_flow.py [--quick]

``--quick`` shrinks to a seconds-long smoke run (used by CI); the JSON
it writes is marked ``"quick": true`` so a full run's numbers are never
silently overwritten by smoke ones unless you ask for it.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.verification import verify_ft_spanner

SEED = 42
K = 2
# Large enough that every sweep in the plan stays exhaustive: the
# benchmark compares proof against proof, never proof against sample.
FORCE_EXHAUSTIVE = 10 ** 9

INSTANCE = (30, 0.25)
QUICK_INSTANCE = (16, 0.35)
VERTEX_FS = [1, 2, 3]
EDGE_FS = [1, 2]
QUICK_VERTEX_FS = [1, 2]
QUICK_EDGE_FS = [1]

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_flow.json"


def _best_of(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _instance(n, p):
    return generators.ensure_connected(
        generators.gnp_random_graph(n, p, seed=SEED), seed=SEED
    )


def bench_modes(fault_model, f_values, n, p, repeats):
    g = _instance(n, p)
    rows = []
    for f in f_values:
        result = fault_tolerant_spanner(g, K, f, fault_model=fault_model)
        h = result.spanner
        t = 2 * K - 1

        def run(mode):
            return verify_ft_spanner(
                g, h, t=t, f=f, fault_model=fault_model,
                exhaustive_budget=FORCE_EXHAUSTIVE, mode=mode,
            )

        t_sweep, sweep = _best_of(lambda: run("sweep"), repeats)
        t_wit, witness = _best_of(lambda: run("witness"), repeats)
        # Equal verdicts at equal proof strength, or the row is void.
        identical = (
            sweep.ok == witness.ok
            and sweep.exhaustive
            and witness.exhaustive
        )
        sec_ex = round(t_sweep, 4)
        sec_wit = round(t_wit, 4)
        row = {
            "n": n,
            "p": p,
            "m": g.num_edges,
            "f": f,
            "spanner_edges": h.num_edges,
            "fault_sets_swept": sweep.fault_sets_checked,
            "pairs_checked": witness.pairs_checked,
            "pairs_witnessed": witness.pairs_witnessed,
            "fallback_fault_sets": witness.fault_sets_checked,
            "seconds_exhaustive": sec_ex,
            "seconds_witness": sec_wit,
            # From the rounded values on purpose: the committed JSON
            # must be self-consistent for scripts/check_bench_json.py.
            "speedup": round(sec_ex / sec_wit, 2)
            if sec_wit > 0 else float("inf"),
            "identical_outputs": identical,
        }
        rows.append(row)
        print(
            f"  n={n:3d} m={g.num_edges:4d} f={f}  "
            f"sweep {t_sweep:8.3f}s ({sweep.fault_sets_checked:6d} sets)  "
            f"witness {t_wit:7.3f}s "
            f"({witness.pairs_witnessed}/{witness.pairs_checked} pairs)  "
            f"speedup {row['speedup']:8.2f}x  "
            f"parity={'ok' if identical else 'FAIL'}"
        )
    return {
        "description": (
            f"verify_ft_spanner, {fault_model} faults: exhaustive "
            f"C(., f) fault-set sweep vs per-pair (f+1)-disjoint-path "
            f"witness certificates (Dinic max-flow engine); both runs "
            f"are full proofs and must agree"
        ),
        "parameters": {
            "k": K, "t": 2 * K - 1, "fault_model": fault_model,
            "exhaustive_budget": FORCE_EXHAUSTIVE,
        },
        "instances": rows,
    }


def run(repeats: int = 3, quick: bool = False):
    if quick:
        repeats = 1
        n, p = QUICK_INSTANCE
        vertex_fs, edge_fs = QUICK_VERTEX_FS, QUICK_EDGE_FS
    else:
        n, p = INSTANCE
        vertex_fs, edge_fs = VERTEX_FS, EDGE_FS
    scenarios = {}
    for name, model, fs in [
        ("witness_vs_exhaustive_vertex", "vertex", vertex_fs),
        ("witness_vs_exhaustive_edge", "edge", edge_fs),
    ]:
        print(f"{name}:")
        scenarios[name] = bench_modes(model, fs, n, p, repeats)
    report = {
        "benchmark": "exhaustive sweep vs witness mode, flow engine",
        "quick": quick,
        "seed": SEED,
        "repeats": repeats,
        "timing": "best-of-repeats",
        "python": platform.python_version(),
        "scenarios": scenarios,
    }
    # Headline trajectory: the largest-f vertex row, where the sweep's
    # combinatorial cost is steepest.
    report["witness_speedup_at_max_f"] = (
        scenarios["witness_vs_exhaustive_vertex"]["instances"][-1]["speedup"]
    )
    return report


def _all_parity_ok(report) -> bool:
    return all(
        row["identical_outputs"]
        for scenario in report["scenarios"].values()
        for row in scenario["instances"]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON report "
                             f"(default: {DEFAULT_OUTPUT})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per mode (default 3)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke run: tiny instance, one repeat "
                             "(verdict-parity checks still apply)")
    args = parser.parse_args(argv)
    report = run(repeats=args.repeats, quick=args.quick)
    if args.quick and args.output == DEFAULT_OUTPUT:
        print("quick run: skipping JSON write (pass --output to force)")
    else:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.output}")
    if not _all_parity_ok(report):
        print("ERROR: witness verdict diverged from the exhaustive sweep")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
