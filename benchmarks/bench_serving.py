"""Load-test benchmark: the resilient serving core, healthy vs chaos.

Serves fault-scenario distance queries for a precomputed
fault-tolerant spanner through :class:`repro.serving.SpannerServer`
(multi-process workers adopting one shared-memory snapshot) and drives
it with the open-loop generator in :mod:`repro.serving.loadgen`:
arrivals are *scheduled* at a fixed rate and each request's latency is
measured from its scheduled arrival, so a slow server inflates the
recorded tail instead of silently back-pressuring the workload
(coordinated omission).  Results go to ``BENCH_serving.json`` at the
repository root.

Two rows per scenario, same workload seed:

* ``chaos_rate = 0.0`` -- the healthy baseline (throughput, p50/p99);
* ``chaos_rate = 0.1`` -- every dispatched shard has a 10% chance of a
  seeded fault injection (worker SIGKILL mid-request or a stall that
  overruns the request deadline), exercising retry-with-backoff,
  health-checked respawn, and deadline enforcement under load.

Every *completed* answer is audited bit-identical against a fresh
in-process :class:`~repro.graph.snapshot.ScenarioSweep` after the
clock stops (``parity_ok``); a request that does not complete must
have resolved to a typed ``DeadlineExceeded``/``ServingUnavailable``
(counted), never a wrong answer and never a hang.  A parity failure
fails the run -- latency numbers for wrong answers are worthless.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]

``--quick`` shrinks to a seconds-long smoke run (used by CI) and skips
the JSON write unless ``--output`` is passed explicitly.
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.serving import ChaosPolicy, ServingConfig, SpannerServer, run_load

SEED = 42
K = 2
F = 2

INSTANCE = (120, 0.08)
QUICK_INSTANCE = (40, 0.2)
REQUESTS = 150
QUICK_REQUESTS = 20
RATE_RPS = 100.0
DEADLINE_SECONDS = 1.0

# 10% total injection rate: mostly SIGKILLs (retried transparently),
# a few stalls long enough to overrun the request deadline (surfaced
# as typed DeadlineExceeded).
CHAOS_KILL_RATE = 0.08
CHAOS_STALL_RATE = 0.02
CHAOS_STALL_SECONDS = 2.0

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_serving.json"
)


def _instance(n, p):
    return generators.ensure_connected(
        generators.gnp_random_graph(n, p, seed=SEED), seed=SEED
    )


def _serve_once(spanner, n, m, chaos_rate, requests, workers):
    chaos = None
    if chaos_rate > 0:
        chaos = ChaosPolicy(
            SEED,
            kill_rate=CHAOS_KILL_RATE,
            stall_rate=CHAOS_STALL_RATE,
            stall_seconds=CHAOS_STALL_SECONDS,
        )
    config = ServingConfig(
        workers=workers,
        deadline=DEADLINE_SECONDS,
        backoff_base=0.01,
        backoff_cap=0.05,
    )
    with SpannerServer(spanner, config=config, chaos=chaos) as server:
        report = run_load(
            server,
            requests=requests,
            rate=RATE_RPS,
            pairs_per_request=8,
            failures=F,
            seed=SEED,
        )
    stats = report.stats
    row = {
        "n": n,
        "m": m,
        "workers": workers,
        "requests": report.requests,
        "completed": report.completed,
        "unavailable": report.unavailable,
        "rate_rps": RATE_RPS,
        "throughput_rps": round(report.throughput_rps, 2),
        "p50_ms": round(report.p50_ms, 3),
        "p99_ms": round(report.p99_ms, 3),
        "deadline_ms": DEADLINE_SECONDS * 1000.0,
        "chaos_rate": chaos_rate,
        "deadline_errors": report.deadline_errors,
        "retries": stats["retries"],
        "worker_deaths": stats["worker_deaths"],
        "respawns": stats["respawns"],
        "degraded_shards": stats["degraded_shards"],
        "parity_ok": report.parity_ok,
    }
    print(
        f"  chaos={chaos_rate:4.0%}  {row['throughput_rps']:7.1f} rps  "
        f"p50 {row['p50_ms']:8.2f} ms  p99 {row['p99_ms']:8.2f} ms  "
        f"deadline_errors={row['deadline_errors']:2d}  "
        f"retries={row['retries']:2d}  respawns={row['respawns']:2d}  "
        f"parity={'ok' if row['parity_ok'] else 'FAIL'}"
    )
    return row


def run(quick: bool = False):
    n, p = QUICK_INSTANCE if quick else INSTANCE
    requests = QUICK_REQUESTS if quick else REQUESTS
    g = _instance(n, p)
    spanner = fault_tolerant_spanner(g, K, F, fault_model="vertex").spanner
    scenarios = {}
    name = "open_loop_healthy_vs_chaos"
    print(f"{name}: n={n} m={spanner.num_edges} "
          f"(spanner of a G({n}, {p}) instance, k={K}, f={F})")
    rows = [
        _serve_once(spanner, n, spanner.num_edges, rate, requests, 2)
        for rate in (0.0, 0.1)
    ]
    scenarios[name] = {
        "description": (
            "open-loop load (scheduled arrivals, latency measured from "
            "the schedule to dodge coordinated omission) against the "
            "multi-process serving pool on a shared-memory snapshot of "
            f"a (k={K}, f={F}) fault-tolerant spanner; the healthy row "
            "vs a 10% seeded injection of worker SIGKILLs and "
            "deadline-overrunning stalls"
        ),
        "parameters": {
            "k": K, "f": F, "p": p, "rate_rps": RATE_RPS,
            "pairs_per_request": 8, "deadline_seconds": DEADLINE_SECONDS,
            "kill_rate": CHAOS_KILL_RATE, "stall_rate": CHAOS_STALL_RATE,
            "stall_seconds": CHAOS_STALL_SECONDS,
        },
        "instances": rows,
    }
    report = {
        "benchmark": "resilient serving core, open-loop load test",
        "quick": quick,
        "seed": SEED,
        "repeats": 1,
        "timing": "open-loop wall clock, latency from scheduled arrival",
        "python": platform.python_version(),
        "scenarios": scenarios,
    }
    healthy, chaotic = rows
    if chaotic["throughput_rps"] > 0:
        report["chaos_throughput_retention"] = round(
            chaotic["throughput_rps"] / healthy["throughput_rps"], 3
        )
    return report


def _all_parity_ok(report) -> bool:
    return all(
        row["parity_ok"]
        for scenario in report["scenarios"].values()
        for row in scenario["instances"]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"where to write the JSON report "
                             f"(default: {DEFAULT_OUTPUT})")
    parser.add_argument("--quick", action="store_true",
                        help="smoke run: tiny instance, few requests "
                             "(parity audit still applies)")
    args = parser.parse_args(argv)
    report = run(quick=args.quick)
    if args.quick and args.output == DEFAULT_OUTPUT:
        print("quick run: skipping JSON write (pass --output to force)")
    else:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.output}")
    if not _all_parity_ok(report):
        print("ERROR: a served answer diverged from the in-process sweep")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
