"""E2 -- Theorem 5: Algorithm 3's output is always an f-FT (2k-1)-spanner.

Sweeps (k, f) on G(n, p) and exhaustively (or heavily) verifies each
output.  The table reports the verification verdict per configuration --
the reproduction of the paper's correctness theorem.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.verification import verify_ft_spanner

CONFIGS = [
    # (n, p, k, f, fault_model)
    (24, 0.30, 2, 1, "vertex"),
    (24, 0.30, 2, 2, "vertex"),
    (24, 0.30, 3, 1, "vertex"),
    (24, 0.30, 2, 1, "edge"),
    (24, 0.30, 2, 2, "edge"),
    (40, 0.20, 2, 3, "vertex"),
]


def test_bench_correctness_sweep(benchmark):
    def run():
        rows = []
        for idx, (n, p, k, f, model) in enumerate(CONFIGS):
            g = generators.gnp_random_graph(n, p, seed=500 + idx)
            result = fault_tolerant_spanner(g, k, f, fault_model=model)
            report = verify_ft_spanner(
                g, result.spanner, t=2 * k - 1, f=f, fault_model=model,
                exhaustive_budget=30_000, samples=400, seed=idx,
            )
            rows.append((n, k, f, model, g.num_edges,
                         result.num_edges, report))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E2: Theorem 5 -- every output verified fault tolerant",
        ["n", "k", "f", "model", "|E(G)|", "|E(H)|",
         "verification", "fault sets"],
    )
    for n, k, f, model, m, size, report in rows:
        kind = "exhaustive" if report.exhaustive else "sampled"
        table.add_row(
            [n, k, f, model, m, size,
             f"{'OK' if report.ok else 'FAIL'} ({kind})",
             report.fault_sets_checked]
        )
        assert report.ok, str(report.counterexample)
    emit(table, "E2_correctness")


def test_bench_construction_speed(benchmark):
    """Microbenchmark: the headline construction on G(100, 0.1), k=2, f=2."""
    g = generators.gnp_random_graph(100, 0.1, seed=42)
    result = benchmark(lambda: fault_tolerant_spanner(g, 2, 2))
    assert result.num_edges > 0
