"""E13 -- edge fault tolerance: same bounds, edge-based LBC.

The paper: "the proofs for the edge fault-tolerant case are essentially
identical."  We measure EFT sizes next to VFT sizes across f and verify
the EFT outputs.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import emit
from repro.analysis.tables import Table
from repro.core.bounds import modified_greedy_size_bound
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.graph import generators
from repro.verification import verify_ft_spanner

N, K = 60, 2


def test_bench_eft_vs_vft(benchmark):
    def run():
        g = generators.complete_graph(N)
        rows = []
        for f in (1, 2, 4):
            vft = fault_tolerant_spanner(g, K, f, fault_model="vertex")
            eft = fault_tolerant_spanner(g, K, f, fault_model="edge")
            rows.append((f, vft.num_edges, eft.num_edges))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        f"E13a: EFT vs VFT spanner sizes (K_{N}, k={K})",
        ["f", "|E| VFT", "|E| EFT", "EFT/VFT", "bound shape"],
    )
    for f, vft, eft in rows:
        bound = modified_greedy_size_bound(N, K, f)
        table.add_row([f, vft, eft, eft / max(vft, 1), bound])
        assert eft <= 4 * bound
    emit(table, "E13a_eft_sizes")


def test_bench_eft_correctness(benchmark):
    def run():
        g = generators.gnp_random_graph(22, 0.35, seed=1200)
        out = []
        for f in (1, 2):
            result = fault_tolerant_spanner(g, 2, f, fault_model="edge")
            report = verify_ft_spanner(
                g, result.spanner, t=3, f=f, fault_model="edge",
                exhaustive_budget=8_000, samples=300, seed=f,
            )
            out.append((f, g.num_edges, result.num_edges, report))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "E13b: EFT correctness (G(22, .35), k=2)",
        ["f", "|E(G)|", "|E(H)|", "verification"],
    )
    for f, m, size, report in rows:
        kind = "exhaustive" if report.exhaustive else "sampled"
        table.add_row([f, m, size,
                       f"{'OK' if report.ok else 'FAIL'} ({kind})"])
        assert report.ok, str(report.counterexample)
    emit(table, "E13b_eft_correct")
