#!/usr/bin/env python3
"""Fault-tolerant distance oracle + availability analysis.

Scenario: a monitoring service answers "how far is service A from
service B right now, given the incidents currently open?" thousands of
times per minute.  Keeping the full mesh in memory is wasteful; a
fault-tolerant spanner is the classical answer ([TZ05]-style oracles are
the original application of spanners).

This example:

1. opens one :class:`~repro.session.SpannerSession` over the service
   mesh and builds its spanner,
2. answers distance/path queries under declared incident sets with the
   (2k-1) guarantee through ``session.oracle()``,
3. runs a Monte-Carlo degradation profile (``session.degradation()``):
   what happens *beyond* the designed fault budget?

The oracle and the degradation sweep share the session's one frozen
CSR snapshot per graph -- no re-freezing between steps.

Run:  python examples/fault_tolerant_oracle.py
"""

from repro import SpannerSession
from repro.analysis.tables import Table
from repro.graph import generators


def main() -> None:
    # A 120-service mesh with clustered structure.
    g = generators.ensure_connected(
        generators.clustered_graph(
            clusters=8, cluster_size=15, p_intra=0.5, p_inter=0.02, seed=11
        ),
        seed=11,
    )
    k, f = 2, 2
    session = SpannerSession(g, k=k, f=f, seed=5)
    session.build("greedy")
    oracle = session.oracle()
    print(f"mesh: {g.num_nodes} services, {g.num_edges} links")
    print(f"oracle stores {oracle.size} links "
          f"({100 * oracle.size / g.num_edges:.0f}%), "
          f"stretch guarantee {oracle.stretch} under <= {f} incidents\n")

    # Queries under incident scenarios.
    scenarios = [[], [7], [7, 64]]
    table = Table(
        "distance queries under open incidents",
        ["incidents", "pair", "oracle distance", "route length (hops)"],
    )
    for incidents in scenarios:
        d = oracle.distance(0, 100, faults=incidents)
        route = oracle.path(0, 100, faults=incidents)
        table.add_row([
            incidents if incidents else "none", "0 -> 100", d,
            len(route) - 1 if route else "unreachable",
        ])
    print(table.render())

    # Degradation beyond the design budget (shares the session snapshot).
    profile = session.degradation(
        2 * f, scenarios=25, pairs_per_scenario=20,
    )
    table = Table(
        f"\ndegradation profile (design budget f={f}; guarantee "
        f"certified only up to f)",
        ["simultaneous failures", "connectivity", "p95 stretch",
         "max stretch", "guarantee violations"],
    )
    for j, report in profile:
        table.add_row([
            f"{j}{' (within budget)' if j <= f else ''}",
            f"{100 * report.connectivity:.1f}%",
            f"{report.p95_stretch:.2f}",
            f"{report.max_stretch:.2f}",
            report.guarantee_violations,
        ])
    print(table.render())
    print("\nWithin the budget the guarantee is a theorem; beyond it the "
          "spanner degrades gracefully rather than falling off a cliff.")


if __name__ == "__main__":
    main()
