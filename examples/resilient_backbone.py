#!/usr/bin/env python3
"""Designing a fault-resilient network backbone.

Scenario: a data-center operator has a dense candidate link graph (every
rack pair that *could* be cabled) and wants to buy as few links as
possible while guaranteeing that even if any two switches fail, traffic
between surviving racks is detoured by at most 3x.

This is exactly an f-VFT (2k-1)-spanner with k = 2, f = 2.  The example:

1. builds a clustered topology (racks within a pod densely connected,
   pods sparsely bridged -- the regime where fault tolerance matters),
2. compares the paper's greedy against buying everything, the non-fault-
   tolerant greedy, and the DK11 baseline,
3. simulates actual failures and measures worst-case detours.

Run:  python examples/resilient_backbone.py
"""

import random

from repro import build_spanner, generators, max_stretch_under_faults
from repro.analysis.tables import Table


def build_candidate_topology():
    """6 pods x 10 racks: dense in-pod links, several pod bridges."""
    return generators.ensure_connected(
        generators.clustered_graph(
            clusters=6, cluster_size=10, p_intra=0.8, p_inter=0.06, seed=2024
        ),
        seed=2024,
    )


def main() -> None:
    g = build_candidate_topology()
    print(f"candidate links: {g.num_edges} across {g.num_nodes} racks\n")

    k, f = 2, 2
    # One registry call per candidate design; the registry validates
    # that each construction actually honors the requested options.
    designs = {
        "buy everything": g,
        "classic greedy (no fault tolerance)":
            build_spanner(g, "classic", k=k).spanner,
        "DK11 sampling": build_spanner(
            g, "dk", k=k, f=f, seed=1, iterations=240
        ).spanner,
        "modified greedy (this paper)":
            build_spanner(g, "greedy", k=k, f=f).spanner,
    }

    # Stress each design with random double faults and measure the worst
    # detour experienced by surviving rack pairs.
    rng = random.Random(99)
    racks = sorted(g.nodes())
    fault_sets = [tuple(rng.sample(racks, f)) for _ in range(60)]

    table = Table(
        f"backbone designs under any {f} switch failures "
        f"(target stretch <= {2 * k - 1})",
        ["design", "links bought", "worst detour over 60 double-faults",
         "meets target"],
    )
    for name, h in designs.items():
        worst = 1.0
        for faults in fault_sets:
            worst = max(
                worst, max_stretch_under_faults(g, h, faults, "vertex")
            )
        table.add_row([
            name, h.num_edges,
            "disconnected" if worst == float("inf") else f"{worst:.2f}",
            worst <= 2 * k - 1 + 1e-9,
        ])
    print(table.render())
    print(
        "\nThe paper's greedy buys the fewest links among designs that "
        "meet the detour target."
    )


if __name__ == "__main__":
    main()
