#!/usr/bin/env python3
"""The distributed constructions (paper Section 5) on the simulator.

Shows the three distributed algorithms side by side on the same network:

* LOCAL (Theorem 12): decomposition -> per-cluster greedy -> union,
  O(log n) rounds with unbounded messages.
* CONGEST Baswana-Sen (Theorem 14): O(k^2) rounds, O(1)-word messages,
  but no fault tolerance.
* CONGEST fault-tolerant (Theorem 15): DK11 sampling over pipelined
  Baswana-Sen instances.

Run:  python examples/distributed_spanner.py
"""

import math

from repro import (
    build_spanner,
    generators,
    max_stretch,
    verify_ft_spanner,
)
from repro.analysis.tables import Table


def main() -> None:
    k, f = 2, 1
    g = generators.gnp_random_graph(80, 0.1, seed=5)
    print(
        f"network: {g.num_nodes} nodes, {g.num_edges} edges, "
        f"log2 n = {math.log2(g.num_nodes):.1f}\n"
    )

    # All three through the one registry dispatcher; note congest-bs is
    # not fault-tolerant, so it is built with f=0.
    local = build_spanner(g, "local", k=k, f=f, seed=1)
    bs = build_spanner(g, "congest-bs", k=k, seed=2)
    cft = build_spanner(g, "congest", k=k, f=f, seed=3, iterations=150)

    table = Table(
        f"distributed spanners (k={k}, f={f})",
        ["algorithm", "model", "rounds", "max msg words",
         "|E(H)|", "fault tolerant"],
    )
    table.add_row([
        "local-ft (Thm 12)", "LOCAL", local.rounds, "unbounded",
        local.num_edges, f"f={f}",
    ])
    table.add_row([
        "baswana-sen (Thm 14)", "CONGEST", bs.rounds,
        int(bs.extra["max_message_words"]), bs.num_edges, "no",
    ])
    table.add_row([
        "congest-ft (Thm 15)", "CONGEST", cft.rounds,
        int(cft.extra["max_message_words"]), cft.num_edges, f"f={f}",
    ])
    print(table.render())

    print("\nchecks:")
    print(f"  local-ft verified:   "
          f"{bool(verify_ft_spanner(g, local.spanner, t=2 * k - 1, f=f, samples=150, seed=0))}")
    print(f"  congest-ft verified: "
          f"{bool(verify_ft_spanner(g, cft.spanner, t=2 * k - 1, f=f, samples=150, seed=0))}")
    print(f"  baswana-sen stretch: {max_stretch(g, bs.spanner):.2f} "
          f"(guarantee {2 * k - 1}, no fault tolerance)")
    print(f"\n  congest-ft round breakdown: "
          f"phase1={int(cft.extra['phase1_rounds'])} "
          f"(selection exchange), "
          f"phase2={int(cft.extra['phase2_rounds'])} "
          f"(= {int(cft.extra['max_instance_rounds'])} BS rounds x "
          f"{int(cft.extra['edge_congestion'])} max edge congestion)")


if __name__ == "__main__":
    main()
