#!/usr/bin/env python3
"""Quickstart: build and verify a fault-tolerant spanner in ~20 lines.

One `SpannerSession` carries the whole workflow: the session holds the
graph, the parameters (k, f, fault model, backend, seed), and -- on the
CSR backend -- one frozen snapshot per graph that the build check,
verification sweep, and any later oracle/router all share.

Run:  python examples/quickstart.py
"""

from repro import SpannerSession, generators, max_stretch


def main() -> None:
    # A random 100-node network.
    g = generators.gnp_random_graph(100, 0.15, seed=7)
    print(f"input: {g.num_nodes} nodes, {g.num_edges} edges")

    # A session for a 2-fault-tolerant 3-spanner (k=2 => stretch 2k-1=3):
    # even if any 2 nodes fail, surviving distances stretch by at most 3x.
    session = SpannerSession(g, k=2, f=2, seed=0)
    result = session.build("greedy")
    print(f"spanner: {result.num_edges} edges "
          f"({100 * result.compression_ratio(g):.0f}% of input)")
    print(f"guarantee: stretch <= {result.stretch} under any "
          f"{result.f} vertex faults")

    # Measure the fault-free stretch actually achieved.
    print(f"measured fault-free stretch: {max_stretch(g, result.spanner):.2f}")

    # Verify the fault-tolerance guarantee, reusing the session's frozen
    # snapshot.  At n=100, f=2 there are ~5000 fault sets; cap the
    # exhaustive budget so this demo samples adversarially instead (full
    # enumeration is available, just slower).
    report = session.verify(exhaustive_budget=1_000, samples=200)
    kind = "exhaustive" if report.exhaustive else "sampled"
    print(f"verification ({kind}, {report.fault_sets_checked} fault sets): "
          f"{'OK' if report.ok else 'FAILED'}")


if __name__ == "__main__":
    main()
