#!/usr/bin/env python3
"""Weighted spanners on a synthetic road network (Algorithm 4).

Scenario: a regional road authority wants a minimal "priority plowing"
subnetwork: after any single road closure (edge fault), every surviving
town pair must remain reachable with at most 3x the normal driving
distance, using only plowed roads.

Roads are modeled as a random geometric graph (towns scattered in the
plane, roads between nearby towns, length = Euclidean distance) -- the
geometric setting of [LNS98] that started the fault-tolerant spanner
literature, handled here by the paper's weighted Algorithm 4 with edge
faults.

Run:  python examples/weighted_road_network.py
"""

import math
import random

from repro import SpannerSession, generators
from repro.analysis.tables import Table
from repro.graph.traversal import weighted_distance
from repro.graph.views import EdgeFaultView


def main() -> None:
    # Towns in a 1x1 region; roads shorter than 0.22 exist.
    g = generators.ensure_connected(
        generators.random_geometric_graph(70, 0.22, seed=314), seed=314
    )
    total_km = g.total_weight()
    print(f"road network: {g.num_nodes} towns, {g.num_edges} roads, "
          f"total length {total_km:.1f}")

    k, f = 2, 1
    session = SpannerSession(g, k=k, f=f, fault_model="edge", seed=1)
    result = session.build("greedy")
    plowed = result.spanner
    print(f"priority network: {plowed.num_edges} roads, "
          f"total length {plowed.total_weight():.1f} "
          f"({100 * plowed.total_weight() / total_km:.0f}% of all road-km)\n")

    # Spot-check detours under specific closures.
    rng = random.Random(0)
    closures = rng.sample(list(g.edges()), 5)
    towns = sorted(g.nodes())
    table = Table(
        "detour factors after single road closures (guarantee: <= 3)",
        ["closed road", "town pair", "direct km", "plowed km", "factor"],
    )
    for closure in closures:
        gv = EdgeFaultView(g, [closure])
        hv = EdgeFaultView(plowed, [closure])
        worst = (None, 1.0, 0.0, 0.0)
        for _ in range(40):
            a, b = rng.sample(towns, 2)
            dg = weighted_distance(gv, a, b)
            if math.isinf(dg) or dg == 0:
                continue
            dh = weighted_distance(hv, a, b)
            factor = dh / dg
            if factor > worst[1]:
                worst = ((a, b), factor, dg, dh)
        if worst[0] is not None:
            table.add_row([
                f"{closure[0]}-{closure[1]}",
                f"{worst[0][0]}-{worst[0][1]}",
                f"{worst[2]:.3f}", f"{worst[3]:.3f}", f"{worst[1]:.2f}",
            ])
    print(table.render())

    # The session reuses its frozen snapshot for the verification sweep.
    report = session.verify(samples=250)
    print(f"\nfull guarantee verification (sampled): "
          f"{'OK' if report.ok else 'FAILED'}")


if __name__ == "__main__":
    main()
