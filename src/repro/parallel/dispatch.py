"""Deadline/retry dispatch of idempotent job shards over a worker pool.

The dispatch half of the parallel-execution substrate: given a
:class:`~repro.parallel.pool.WorkerPool` and a list of :class:`Job`
shards, run every shard to completion, a typed error, or the deadline.
The loop is workload-agnostic -- the serving layer dispatches
fault-scenario query shards, the distributed runtime dispatches
Baswana-Sen instances -- and encodes the failure semantics the chaos
suite pins:

* worker death mid-shard -> reap + backoff + respawn + resend; after
  ``max_retries`` resends the shard goes to the degradation callback;
* deadline expiry -> outstanding workers are SIGKILLed (a stalled
  worker holds no cancellable state; worker state is rebuilt by the
  executor factory on respawn, so killing is cheap) and
  :class:`~repro.parallel.errors.DeadlineExceeded` is raised carrying
  every already-completed job result;
* pool unusable (nothing alive, spawns exhausted) -> the ``degrade``
  callback answers in-process, or, without one,
  :class:`~repro.parallel.errors.ServingUnavailable`;
* an application error raised by the executor is deterministic, so it
  is *not* retried: it re-raises in the caller exactly as in-process
  execution would.

Retrying requires **idempotent** shards: resending must produce the
identical answer.  Both substrate clients satisfy this -- serving
queries run against an immutable snapshot, distributed instance jobs
are pure functions of ``(participants, seed)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing import connection
from typing import Callable, Dict, List, Optional, Tuple

from repro.parallel.errors import DeadlineExceeded, ServingUnavailable
from repro.parallel.pool import Worker, WorkerPool

__all__ = ["DispatchStats", "Dispatcher", "Job"]


@dataclass
class DispatchStats:
    """Dispatcher-lifetime counters (updated in place; read any time).

    The pool-owned counters (``respawns``, ``spawn_rejections``) live
    on the :class:`~repro.parallel.pool.WorkerPool`; clients merge them
    when reporting (e.g. ``SpannerServer.stats_dict``).
    """

    requests: int = 0
    shards: int = 0
    retries: int = 0
    worker_deaths: int = 0
    deadline_errors: int = 0
    degraded_shards: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class Job:
    """One dispatched shard: kind, payload, result slot, retry count."""

    __slots__ = ("kind", "payload", "index", "attempts", "result", "done")

    def __init__(self, kind: str, payload, index: int) -> None:
        self.kind = kind
        self.payload = payload
        self.index = index
        self.attempts = 0
        self.result = None
        self.done = False


class Dispatcher:
    """Run job shards over a pool under a deadline and a retry budget.

    Parameters
    ----------
    pool:
        The :class:`~repro.parallel.pool.WorkerPool` to dispatch over.
    deadline:
        Default per-request latency budget in seconds (overridable per
        :meth:`dispatch` call).
    max_retries:
        How many times one shard may be *resent* after its worker died
        (the first send is not a retry).
    backoff_base / backoff_cap:
        Exponential backoff in front of shard resends.
    degrade:
        Optional callback ``degrade(job)`` invoked when the pool cannot
        serve a shard (retries exhausted, or nothing alive and nothing
        spawnable).  It must complete the job in-process (set
        ``job.result`` / ``job.done``) or raise, and it owns the
        ``stats.degraded_shards`` accounting (so a callback that
        refuses -- e.g. serving's ``degrade=False`` -- counts nothing).
        Without one, an unusable pool raises
        :class:`~repro.parallel.errors.ServingUnavailable`.
    chaos:
        Optional chaos policy (:mod:`repro.parallel.chaos`); one
        directive is drawn per dispatched shard, in dispatch order.
    stats:
        A :class:`DispatchStats` (or duck-typed equivalent) mutated in
        place; a private one is created when omitted.
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        deadline: float = 5.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        degrade: Optional[Callable[[Job], None]] = None,
        chaos=None,
        stats: Optional[DispatchStats] = None,
    ) -> None:
        if not deadline > 0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.pool = pool
        self.deadline = deadline
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.degrade = degrade
        self.chaos = chaos
        self.stats = stats if stats is not None else DispatchStats()
        self._msg_counter = 0

    def dispatch(
        self, jobs: List[Job], deadline: Optional[float] = None
    ) -> None:
        """Run every job to completion, a typed error, or the deadline."""
        budget = self.deadline if deadline is None else deadline
        if not budget > 0:
            raise ValueError(f"deadline must be > 0, got {budget!r}")
        start = time.monotonic()
        deadline_at = start + budget
        stats = self.stats
        stats.requests += 1
        stats.shards += len(jobs)
        pending: List[Job] = list(jobs)
        busy: Dict[object, Tuple[Worker, Job, int]] = {}
        pool = self.pool

        def remaining() -> float:
            return deadline_at - time.monotonic()

        def fail_deadline() -> None:
            # A stalled worker holds no cancellable state; SIGKILL and
            # let the next request's ensure() respawn it.
            stats.deadline_errors += 1
            for conn in list(busy):
                worker, _, _ = busy.pop(conn)
                stats.worker_deaths += 1
                pool.discard(worker)
            raise DeadlineExceeded(
                budget, time.monotonic() - start,
                [j.result if j.done else None for j in jobs],
                sum(1 for j in jobs if j.done),
            )

        def degrade(job: Job) -> None:
            if self.degrade is None:
                raise ServingUnavailable(
                    "worker pool unusable (crashes/spawn failures "
                    "exhausted the retry budget) and no degradation "
                    "path is configured"
                )
            self.degrade(job)

        def worker_died(conn, worker: Worker, job: Job) -> None:
            # Reap it, back off, and resend within the retry budget.
            busy.pop(conn, None)
            stats.worker_deaths += 1
            pool.discard(worker)
            if job.attempts > self.max_retries:
                degrade(job)
                return
            stats.retries += 1
            pause = min(
                self.backoff_base * (2 ** (job.attempts - 1)),
                self.backoff_cap,
                max(0.0, remaining()),
            )
            if pause > 0:
                time.sleep(pause)
            pending.append(job)

        while pending or busy:
            if remaining() <= 0:
                fail_deadline()
            # Fill idle workers with pending shards.
            if pending:
                live = pool.ensure(budget=max(0.0, remaining()))
                idle = [w for w in live if w.conn not in busy]
                while pending and idle:
                    job = pending.pop(0)
                    worker = idle.pop(0)
                    directive = (
                        self.chaos.directive()
                        if self.chaos is not None else None
                    )
                    self._msg_counter += 1
                    msg_id = self._msg_counter
                    try:
                        worker.conn.send(
                            (msg_id, job.kind, job.payload, directive)
                        )
                    except (BrokenPipeError, OSError):
                        stats.worker_deaths += 1
                        pool.discard(worker)
                        pending.insert(0, job)
                        continue
                    job.attempts += 1
                    busy[worker.conn] = (worker, job, msg_id)
                if pending and not busy:
                    # Nothing alive and nothing spawnable: the pool is
                    # unusable for this request.
                    for job in list(pending):
                        degrade(job)
                    pending.clear()
                    continue
            # ensure() above may have reaped a dead *busy* worker and
            # closed its pipe; route its shard through the death path
            # before handing the fd set to connection.wait().
            for conn in list(busy):
                if conn.closed:
                    worker, job, _ = busy[conn]
                    worker_died(conn, worker, job)
            if not busy:
                continue
            timeout = remaining()
            if timeout <= 0:
                fail_deadline()
            ready = connection.wait(list(busy), timeout=timeout)
            if not ready:
                fail_deadline()
            for conn in ready:
                worker, job, msg_id = busy[conn]
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    # Worker died mid-shard (SIGKILL, crash).
                    worker_died(conn, worker, job)
                    continue
                rid, status, value = reply
                if rid != msg_id:
                    # Stale reply from a shard abandoned by an earlier
                    # request (application error mid-flight); the
                    # worker is still busy with the current shard.
                    continue
                del busy[conn]
                if status == "ok":
                    job.result = value
                    job.done = True
                else:
                    # Deterministic application error: identical to
                    # what in-process execution would raise.  Not
                    # retried; outstanding shards are abandoned (their
                    # late replies are discarded as stale above).
                    raise value
