"""Typed errors of the parallel-execution substrate.

The substrate's contract is that a dispatched request always resolves
to either a bit-identical answer or one of these typed errors -- never
a wrong answer and never a hang (``tests/test_serving_chaos.py`` drives
that contract under seeded worker kills, stalls, and spawn failures).

These classes were born in the serving layer and keep their names --
``repro.serving.errors`` re-exports them, so code and tests that catch
``repro.serving.errors.DeadlineExceeded`` keep working unchanged.  The
distributed runtime raises the same families when its round workers
die or its pools cannot spawn.

Hierarchy
---------
* :class:`ServingError` -- base class (a ``RuntimeError``).
* :class:`DeadlineExceeded` -- the per-request latency budget expired;
  carries any partial batch results already computed.
* :class:`ServingUnavailable` -- the worker pool is unusable (spawns
  exhausted, retries exhausted) and graceful degradation is disabled.
* :class:`WorkerCrashed` -- internal: one worker died or failed its
  startup health check.  The dispatcher converts it into a retry, a
  respawn, or one of the public errors above; callers only see it via
  ``__cause__`` chains.
* :class:`ChaosSpawnFailure` -- internal: a chaos policy rejected a
  spawn (deterministic fault injection, see
  :mod:`repro.parallel.chaos`).
* :class:`SnapshotStale` -- streaming updates were applied while a live
  server still holds the pre-update snapshot; close the server, apply,
  and ``serve()`` again.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "ChaosSpawnFailure",
    "DeadlineExceeded",
    "ServingError",
    "ServingUnavailable",
    "SnapshotStale",
    "WorkerCrashed",
]


class ServingError(RuntimeError):
    """Base class for parallel-substrate (and serving-layer) errors."""


class DeadlineExceeded(ServingError):
    """A request's latency budget expired before every item resolved.

    Attributes
    ----------
    deadline:
        The budget that expired, in seconds.
    elapsed:
        Wall-clock seconds actually spent before giving up.
    partial:
        The per-item results computed before the deadline: a list
        aligned with the request's items (pairs, roots, ...) holding
        the bit-identical answer where a shard completed and ``None``
        where it did not.  Partial answers are exact -- the immutable
        snapshot makes every shard idempotent -- so a caller may keep
        them.
    completed:
        How many items of :attr:`partial` are filled in.
    """

    def __init__(
        self,
        deadline: float,
        elapsed: float,
        partial: Optional[List] = None,
        completed: int = 0,
    ) -> None:
        super().__init__(
            f"deadline of {deadline:.3f}s exceeded after {elapsed:.3f}s "
            f"({completed} item(s) completed)"
        )
        self.deadline = deadline
        self.elapsed = elapsed
        self.partial = [] if partial is None else partial
        self.completed = completed


class ServingUnavailable(ServingError):
    """The pool cannot serve and graceful degradation is disabled.

    Raised when no worker survives (spawn attempts exhausted, or a
    shard exceeded its retry budget) and the dispatcher was configured
    without a degradation path (serving: ``degrade=False``); with
    degradation enabled the dispatcher answers in-process instead and
    this error never escapes.
    """


class SnapshotStale(ServingError):
    """Streaming updates would silently outdate a live server's snapshot.

    A :class:`~repro.serving.dispatcher.SpannerServer` packs its
    snapshot into shared memory once, at construction -- workers never
    see later graph mutations, by design.  So
    :meth:`repro.session.SpannerSession.apply_updates` refuses to run
    while a server built from the session is still open: silently
    serving pre-update answers would violate the "bit-identical or
    typed error" contract.  The remedy is the refreeze-then-serve path:
    ``server.close()`` (or leave the ``with`` block), apply the
    updates, then call ``serve()`` again for a server over the updated
    snapshot.
    """


class WorkerCrashed(ServingError):
    """Internal: a worker process died or failed its health check."""


class ChaosSpawnFailure(ServingError):
    """Internal: a chaos policy injected a worker spawn failure."""
