"""Supervised worker processes with a pluggable request executor.

This is the process-pool half of the parallel-execution substrate
shared by the serving layer (:mod:`repro.serving`) and the distributed
round engine (:mod:`repro.distributed.runtime`).  A pool knows nothing
about snapshots or CONGEST rounds: it spawns workers, health-checks
them, reaps corpses, and respawns with exponential backoff.  What a
worker *does* is supplied as an **executor factory** -- a module-level
(spawn-safe) callable run once inside the fresh process:

    ``executor = factory(*factory_args)``

The factory builds whatever per-process state the workload needs (the
serving layer adopts the shared-memory snapshot and returns a
sweep-bound executor; the distributed runtime instantiates the node
protocols of its partition) and returns a callable
``executor(kind, payload) -> result`` that answers requests until the
pool shuts the worker down.

Protocol (one tuple per message, pickled by ``multiprocessing``):

* parent -> worker: ``(msg_id, kind, payload, directive)`` or ``None``
  (shut down);
* worker -> parent: ``("hello", pid)`` once at startup, then
  ``(msg_id, "ok", result)`` / ``(msg_id, "error", exception)`` per
  request.

``directive`` is a chaos directive (:mod:`repro.parallel.chaos`),
honored *before* computing: ``("kill",)`` SIGKILLs the worker
mid-request, ``("stall", s)`` sleeps -- the two failure modes the
dispatcher's retry and deadline machinery exist for.

A fresh worker must complete the startup handshake (it sends
``("hello", pid)`` once its executor is built) before it joins the
rotation, so a worker that dies building its state never receives a
request.  Spawn attempts are bounded, run through the chaos policy's
injected spawn failures, and back off exponentially; crashed workers
are reaped on every :meth:`WorkerPool.ensure` and respawned up to the
pool size.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import signal
import time
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Sequence, Tuple

from repro.parallel.errors import (
    ChaosSpawnFailure,
    ServingUnavailable,
    WorkerCrashed,
)

__all__ = [
    "Worker",
    "WorkerPool",
    "attach_shared",
    "default_start_method",
    "worker_main",
]


def attach_shared(name: str) -> shared_memory.SharedMemory:
    """Attach an existing shared segment without tracker side effects.

    ``SharedMemory(name=...)`` registers the segment with the process's
    resource tracker, which (a) warns about "leaked" segments the
    attacher never owned and (b) can unlink a segment other processes
    still use when an attacher's tracker cleans up.  Python 3.13+ has
    ``track=False`` for exactly this.  On older versions we suppress
    the registration call itself while attaching: unregister-after-
    attach (the other folk workaround) is wrong under ``fork``, where
    the worker shares the parent's tracker process and the unregister
    would erase the *owner's* registration.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def worker_main(
    conn,
    factory: Callable[..., Callable[[str, object], object]],
    factory_args: Sequence,
) -> None:
    """Entry point of one worker process (module-level: spawn-safe)."""
    # The parent owns lifecycle; a terminal-wide SIGINT (Ctrl-C) should
    # interrupt the dispatcher, not spray worker tracebacks.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    code = 0
    try:
        executor = factory(*factory_args)
        # Everything alive now -- the forked copy of the parent heap
        # plus the executor's own startup state -- lives for the whole
        # worker.  Freeze it out of the cyclic collector: GC passes in
        # this worker then scan only per-request garbage (keeping
        # collections short and heap-size-independent), and under
        # ``fork`` the collector stops touching inherited objects'
        # headers, preserving copy-on-write page sharing.
        gc.freeze()
        conn.send(("hello", os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg is None:
                break
            msg_id, kind, payload, directive = msg
            if directive is not None:
                if directive[0] == "kill":
                    # A real mid-request crash: no goodbye, no reply.
                    os.kill(os.getpid(), signal.SIGKILL)
                elif directive[0] == "stall":
                    time.sleep(directive[1])
            try:
                result = executor(kind, payload)
            except Exception as exc:
                conn.send((msg_id, "error", exc))
            else:
                conn.send((msg_id, "ok", result))
    except BaseException:
        code = 1
    finally:
        try:
            conn.close()
        except Exception:
            pass
        # Skip interpreter teardown: executors may hold memoryview
        # exports over a shared segment, and letting GC close the mmap
        # under them raises BufferError noise for every worker.
        os._exit(code)


class Worker:
    """One pool member: its process, pipe, and liveness."""

    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker and release its pipe (idempotent)."""
        try:
            self.proc.kill()
        except Exception:
            pass
        self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "alive" if self.alive() else "dead"
        return f"Worker(pid={self.proc.pid}, {state})"


def default_start_method() -> str:
    # fork is the fast path (no re-import, instant spawn); fall back to
    # whatever the platform offers when it is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class WorkerPool:
    """Spawn, health-check, reap, and respawn request workers.

    Parameters
    ----------
    factory / factory_args:
        The executor factory run inside each fresh worker (see module
        docs).  ``factory`` must be a module-level callable so the pool
        works under every start method; ``factory_args`` must be
        picklable under ``spawn`` (under ``fork`` they may be arbitrary
        in-memory objects).
    size:
        Target number of live workers.
    start_method / chaos / spawn_attempts / backoff_base / backoff_cap
    / spawn_timeout:
        Lifecycle tunables; see :class:`repro.serving.ServingConfig`
        for the serving-layer defaults built on top of these.

    The pool never blocks indefinitely: spawn handshakes are bounded by
    ``spawn_timeout``, spawn retries by ``spawn_attempts`` with
    exponential backoff (``backoff_base`` doubling up to
    ``backoff_cap``), and :meth:`ensure` takes an optional time budget
    so a request's deadline caps respawn work done on its behalf.

    Counters (``respawns``, ``spawn_rejections``) are pool-lifetime
    totals surfaced through the server's stats.
    """

    def __init__(
        self,
        factory: Callable[..., Callable[[str, object], object]],
        factory_args: Sequence = (),
        size: int = 1,
        *,
        start_method: Optional[str] = None,
        chaos=None,
        spawn_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        spawn_timeout: float = 10.0,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if spawn_attempts < 1:
            raise ValueError(
                f"spawn_attempts must be >= 1, got {spawn_attempts}"
            )
        self.factory = factory
        self.factory_args = tuple(factory_args)
        self.size = size
        self.chaos = chaos
        self.spawn_attempts = spawn_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.spawn_timeout = spawn_timeout
        self._ctx = multiprocessing.get_context(
            start_method or default_start_method()
        )
        self.workers: List[Worker] = []
        self.respawns = 0
        self.spawn_rejections = 0
        self._started = False

    # ------------------------------------------------------------- #
    # Spawning
    # ------------------------------------------------------------- #

    def _spawn_once(self) -> Worker:
        """One spawn attempt: chaos gate, fork/spawn, health handshake."""
        if self.chaos is not None and self.chaos.spawn_fails():
            self.spawn_rejections += 1
            raise ChaosSpawnFailure("chaos policy rejected this spawn")
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.factory, self.factory_args),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        # Health-checked admission: the worker is in the rotation only
        # after it proves it built its executor state and can talk.
        if parent_conn.poll(self.spawn_timeout):
            try:
                msg = parent_conn.recv()
            except (EOFError, OSError):
                msg = None
            if isinstance(msg, tuple) and msg and msg[0] == "hello":
                return Worker(proc, parent_conn)
        try:
            proc.kill()
        except Exception:
            pass
        proc.join(timeout=5.0)
        parent_conn.close()
        raise WorkerCrashed("worker failed its startup health check")

    def spawn(self, budget: Optional[float] = None) -> Worker:
        """Spawn one healthy worker within the attempt/time budget.

        Raises :class:`ServingUnavailable` when every attempt fails (or
        the time budget runs out first); the last underlying failure is
        chained as ``__cause__``.
        """
        deadline = None if budget is None else time.monotonic() + budget
        delay = self.backoff_base
        last: Optional[Exception] = None
        for attempt in range(self.spawn_attempts):
            if deadline is not None and time.monotonic() >= deadline:
                break
            try:
                return self._spawn_once()
            except (ChaosSpawnFailure, WorkerCrashed) as exc:
                last = exc
                if attempt + 1 < self.spawn_attempts:
                    pause = delay
                    if deadline is not None:
                        pause = min(pause, deadline - time.monotonic())
                    if pause > 0:
                        time.sleep(pause)
                    delay = min(delay * 2, self.backoff_cap)
        raise ServingUnavailable(
            f"could not spawn a healthy worker within "
            f"{self.spawn_attempts} attempt(s)"
        ) from last

    def start(self) -> int:
        """Best-effort initial fill; returns how many workers are live.

        Spawn failures here are not fatal -- the dispatcher re-ensures
        the pool per request and degrades (or raises a typed error)
        only when it genuinely cannot serve.
        """
        self._started = True
        for _ in range(self.size - len(self.workers)):
            try:
                self.workers.append(self.spawn())
            except ServingUnavailable:
                break
        return len(self.workers)

    # ------------------------------------------------------------- #
    # Supervision
    # ------------------------------------------------------------- #

    def reap(self) -> int:
        """Drop dead workers from the rotation; returns how many."""
        dead = [w for w in self.workers if not w.alive()]
        for w in dead:
            w.kill()  # joins the corpse and closes the pipe
            self.workers.remove(w)
        return len(dead)

    def discard(self, worker: Worker) -> None:
        """Remove one (crashed or condemned) worker immediately."""
        worker.kill()
        if worker in self.workers:
            self.workers.remove(worker)

    def ensure(self, budget: Optional[float] = None) -> List[Worker]:
        """Reap corpses, respawn up to ``size``, return the live list.

        Respawning is best-effort within ``budget`` seconds; an empty
        return (no live workers, none spawnable) is the dispatcher's
        cue to degrade or raise :class:`ServingUnavailable`.
        """
        self.reap()
        deadline = None if budget is None else time.monotonic() + budget
        while len(self.workers) < self.size:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0 and self.workers:
                    break  # out of time, but we have someone to serve with
            try:
                worker = self.spawn(budget=remaining)
            except ServingUnavailable:
                break
            self.workers.append(worker)
            if self._started:
                self.respawns += 1
        return list(self.workers)

    def close(self) -> None:
        """Shut every worker down (polite stop, then SIGKILL)."""
        for w in self.workers:
            try:
                w.conn.send(None)
            except Exception:
                pass
        for w in self.workers:
            w.proc.join(timeout=1.0)
            w.kill()
        self.workers.clear()

    def __len__(self) -> int:
        return len(self.workers)

    def __repr__(self) -> str:
        return (
            f"WorkerPool(size={self.size}, live={len(self.workers)}, "
            f"respawns={self.respawns})"
        )
