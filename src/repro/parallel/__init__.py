"""Shared parallel-execution substrate (process pools + dispatch).

Extracted from the serving layer (PR 10) so that two very different
workloads run on one supervised-multiprocessing core:

* :mod:`repro.serving` -- fault-scenario query serving over a
  shared-memory snapshot (workers adopt the packed
  :class:`~repro.graph.snapshot.CSRSnapshot` zero-copy via
  :func:`~repro.graph.snapshot.adopt_snapshot`);
* :mod:`repro.distributed.runtime` -- the synchronous CONGEST/LOCAL
  round engine, executing each round across worker processes over node
  partitions.

Pieces
------
* :class:`WorkerPool` (:mod:`repro.parallel.pool`) -- health-checked
  spawn with startup handshake, exponential-backoff respawn, reap, and
  chaos-gated spawn rejection.  What a worker *does* is a pluggable
  executor factory, so the pool itself is workload-agnostic.
* :class:`Dispatcher` (:mod:`repro.parallel.dispatch`) -- deadline +
  retry dispatch of idempotent job shards, with graceful degradation
  through a client-supplied callback.
* :mod:`repro.parallel.chaos` -- deterministic fault injection
  (seeded :class:`ChaosPolicy`, scripted :class:`ScriptedChaos`).
* :mod:`repro.parallel.errors` -- the typed failure surface
  (re-exported by :mod:`repro.serving.errors` for compatibility).
"""

from repro.parallel.chaos import (
    KILL,
    ChaosPolicy,
    ScriptedChaos,
    validate_directive,
)
from repro.parallel.dispatch import DispatchStats, Dispatcher, Job
from repro.parallel.errors import (
    ChaosSpawnFailure,
    DeadlineExceeded,
    ServingError,
    ServingUnavailable,
    SnapshotStale,
    WorkerCrashed,
)
from repro.parallel.pool import (
    Worker,
    WorkerPool,
    attach_shared,
    default_start_method,
    worker_main,
)

__all__ = [
    "ChaosPolicy",
    "ChaosSpawnFailure",
    "DeadlineExceeded",
    "DispatchStats",
    "Dispatcher",
    "Job",
    "KILL",
    "ScriptedChaos",
    "ServingError",
    "ServingUnavailable",
    "SnapshotStale",
    "Worker",
    "WorkerCrashed",
    "WorkerPool",
    "attach_shared",
    "default_start_method",
    "validate_directive",
    "worker_main",
]
