"""Deterministic chaos harness for the parallel-execution substrate.

Fault injection is only useful when it is *reproducible*: a flaky chaos
test is worse than none.  Both policies here are consumed by the
dispatcher from a single thread in dispatch order, so a fixed seed (or
a fixed script) yields the same kill/stall/spawn-failure sequence on
every run -- ``tests/test_serving_chaos.py`` replays identical chaos
schedules and asserts identical outcome sequences.

Directives
----------
A *directive* is what the dispatcher attaches to one dispatched shard:

* ``None`` -- healthy execution;
* ``("kill",)`` -- the worker SIGKILLs itself on receipt, before
  computing (a mid-request crash: the parent sees the pipe close with
  the request outstanding);
* ``("stall", seconds)`` -- the worker sleeps before computing (a slow
  replica: long enough stalls trip the request deadline).

Spawn failures are drawn separately, once per spawn attempt.

:class:`ChaosPolicy` draws directives from a seeded RNG at configured
rates (the benchmark's "10%-chaos" runs); :class:`ScriptedChaos` plays
back an explicit schedule for precise unit tests ("kill exactly the
second shard").
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterable, Optional, Tuple

__all__ = ["ChaosPolicy", "ScriptedChaos", "KILL", "validate_directive"]

#: The kill directive (module-level constant for readable test scripts).
KILL = ("kill",)

_DIRECTIVE_KINDS = ("kill", "stall")


def validate_directive(directive) -> None:
    """Reject malformed chaos directives eagerly (at policy build time)."""
    if directive is None:
        return
    if (
        not isinstance(directive, tuple)
        or not directive
        or directive[0] not in _DIRECTIVE_KINDS
    ):
        raise ValueError(
            f"chaos directive must be None, ('kill',) or "
            f"('stall', seconds), got {directive!r}"
        )
    if directive[0] == "stall":
        if len(directive) != 2 or not directive[1] >= 0:
            raise ValueError(
                f"stall directive needs a non-negative duration, got "
                f"{directive!r}"
            )
    elif len(directive) != 1:
        raise ValueError(f"kill directive takes no arguments: {directive!r}")


class ChaosPolicy:
    """Seeded random fault injection at configured rates.

    One uniform draw per dispatched shard decides its directive
    (``kill`` with probability ``kill_rate``, else ``stall`` with
    probability ``stall_rate``, else healthy), and one draw per spawn
    attempt decides injected spawn failures.  The draws happen in the
    dispatcher's single-threaded dispatch order, so the whole chaos
    schedule is a pure function of the seed and the request sequence.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        kill_rate: float = 0.0,
        stall_rate: float = 0.0,
        spawn_fail_rate: float = 0.0,
        stall_seconds: float = 0.05,
    ) -> None:
        for name, rate in (
            ("kill_rate", kill_rate),
            ("stall_rate", stall_rate),
            ("spawn_fail_rate", spawn_fail_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if kill_rate + stall_rate > 1.0:
            raise ValueError(
                f"kill_rate + stall_rate must not exceed 1 "
                f"(got {kill_rate} + {stall_rate})"
            )
        if stall_seconds < 0:
            raise ValueError(
                f"stall_seconds must be >= 0, got {stall_seconds!r}"
            )
        self.seed = seed
        self.kill_rate = kill_rate
        self.stall_rate = stall_rate
        self.spawn_fail_rate = spawn_fail_rate
        self.stall_seconds = stall_seconds
        self._rng = random.Random(seed)

    def directive(self) -> Optional[Tuple]:
        """The next shard's directive (one seeded draw)."""
        r = self._rng.random()
        if r < self.kill_rate:
            return KILL
        if r < self.kill_rate + self.stall_rate:
            return ("stall", self.stall_seconds)
        return None

    def spawn_fails(self) -> bool:
        """Whether the next spawn attempt is rejected (one seeded draw)."""
        return self._rng.random() < self.spawn_fail_rate

    def __repr__(self) -> str:
        return (
            f"ChaosPolicy(seed={self.seed}, kill={self.kill_rate}, "
            f"stall={self.stall_rate}, spawn_fail={self.spawn_fail_rate})"
        )


class ScriptedChaos:
    """Play back an explicit chaos schedule (for precise tests).

    ``directives`` are consumed one per dispatched shard, in dispatch
    order; once the script runs out, every further shard is healthy.
    ``spawn_failures`` rejects that many spawn attempts before letting
    spawns succeed again.
    """

    def __init__(
        self,
        directives: Iterable[Optional[Tuple]] = (),
        spawn_failures: int = 0,
    ) -> None:
        directives = list(directives)
        for d in directives:
            validate_directive(d)
        if spawn_failures < 0:
            raise ValueError(
                f"spawn_failures must be >= 0, got {spawn_failures}"
            )
        self._directives = deque(directives)
        self._spawn_failures = spawn_failures

    def directive(self) -> Optional[Tuple]:
        """The next scripted directive (``None`` once exhausted)."""
        return self._directives.popleft() if self._directives else None

    def spawn_fails(self) -> bool:
        """Reject spawns until the scripted failure budget is spent."""
        if self._spawn_failures > 0:
            self._spawn_failures -= 1
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"ScriptedChaos(pending={len(self._directives)}, "
            f"spawn_failures={self._spawn_failures})"
        )
