"""Dinic's (Dinitz') max-flow on CSR-derived residual networks.

The engine follows the classic two-phase structure (the same shape as
the exemplar C++ implementations this subsystem is modeled on):

1. *Level phase* -- a BFS over the residual graph assigns each node its
   hop level from the source; only arcs that step exactly one level
   forward participate in the next phase.
2. *Blocking-flow phase* -- a DFS with per-node current-arc pointers
   repeatedly augments along level-increasing paths until none remain,
   never rescanning an arc that was already rejected.

State lives in a :class:`FlowWorkspace` with the same generation-stamp
discipline as :class:`~repro.graph.traversal.BFSWorkspace`: the level
and current-arc arrays are validated by a per-phase ``bytearray`` stamp,
so starting a new phase (or a new query on a reused workspace) is O(1)
instead of O(n) clears.

Networks use the paired-arc residual layout: arcs are appended in
pairs, arc ``a`` and ``a ^ 1`` are mutual reverses, and pushing ``x``
units over ``a`` means ``cap[a] -= x; cap[a ^ 1] += x``.  Capacities
are integers; the *unit* blocking flow (``unit=True``) exploits
all-capacities-{0,1} networks -- every augmentation pushes exactly one
unit and saturates its whole path -- while the *general* path computes
the bottleneck explicitly.  Both take the same augmenting paths in the
same order, so on a unit-capacity network their final residual arrays
are bit-identical (``tests/test_flow.py`` asserts this).

:class:`DisjointPathNetwork` is the consumer this subsystem exists for:
it builds, straight from :class:`~repro.graph.csr.CSRGraph` rows, the
unit-capacity network whose max s-t flow value *is* the number of
pairwise edge-disjoint (fault model ``"edge"``) or internally
vertex-disjoint (``"vertex"``, via the vertex-splitting transform)
u-v paths -- Menger's theorem.  :func:`decompose_paths` then extracts
the actual paths from the integral flow, which is what turns a flow
value into a checkable fault-tolerance certificate.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

from repro.graph.csr import CSRLike

INFINITY = math.inf

FLOW_FAULT_MODELS = ("vertex", "edge")


class FlowWorkspace:
    """Reusable, generation-stamped scratch state for Dinic's algorithm.

    ``level[x]`` and ``arc_it[x]`` are only meaningful while
    ``stamp[x] == gen``; a new BFS phase bumps the generation instead of
    clearing the arrays.  ``arc_it`` holds the blocking-flow DFS's
    current-arc pointer (an index into the node's adjacency row), the
    invariant that makes a whole phase O(V * E) instead of O(V * E^2):
    arcs rejected once stay rejected for the rest of the phase.

    Grow-only (``ensure``), so one workspace serves many queries on
    networks of varying size, exactly like ``BFSWorkspace``.
    """

    __slots__ = ("level", "arc_it", "stamp", "gen", "queue", "stack")

    def __init__(self, num_nodes: int = 0) -> None:
        self.level = [0] * num_nodes
        self.arc_it = [0] * num_nodes
        self.stamp = bytearray(num_nodes)
        self.gen = 0
        self.queue = [0] * num_nodes
        self.stack: List[int] = []

    def ensure(self, num_nodes: int) -> None:
        """Grow every array to cover ``num_nodes`` flow nodes."""
        have = len(self.level)
        if num_nodes > have:
            grow = num_nodes - have
            self.level.extend([0] * grow)
            self.arc_it.extend([0] * grow)
            self.stamp.extend(b"\x00" * grow)
            self.queue.extend([0] * grow)

    def next_generation(self) -> int:
        """Advance the stamp; zero-fill only on the 1-byte wraparound."""
        self.gen += 1
        if self.gen == 256:
            self.gen = 1
            self.stamp[:] = bytes(len(self.stamp))
        return self.gen


class FlowNetwork:
    """A directed residual network in the paired-arc layout.

    ``add_arc(u, v, cap, rev_cap)`` appends the forward arc and its
    reverse as consecutive ids, so ``a ^ 1`` is always the partner.
    ``cap`` holds *residual* capacities and is what max-flow mutates;
    ``base`` keeps the as-built capacities so :meth:`reset` restores a
    pristine network in one slice assignment and so ``flow_on`` can
    recover the (antisymmetric) flow value per arc.  Arcs disabled for
    the current query via :meth:`ban_arc` are tracked so flow
    accounting treats their capacity as 0, not as saturated.
    """

    __slots__ = ("num_nodes", "head", "cap", "base", "adj", "banned")

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.head: List[int] = []
        self.cap: List[int] = []
        self.base: List[int] = []
        self.adj: List[List[int]] = [[] for _ in range(num_nodes)]
        self.banned: List[int] = []

    def add_arc(self, u: int, v: int, cap: int, rev_cap: int = 0) -> int:
        """Append the arc pair u->v / v->u; return the forward arc id."""
        if cap < 0 or rev_cap < 0:
            raise ValueError("arc capacities must be non-negative")
        a = len(self.head)
        self.head.append(v)
        self.cap.append(cap)
        self.base.append(cap)
        self.adj[u].append(a)
        self.head.append(u)
        self.cap.append(rev_cap)
        self.base.append(rev_cap)
        self.adj[v].append(a + 1)
        return a

    @property
    def num_arcs(self) -> int:
        return len(self.head)

    def reset(self) -> None:
        """Restore every residual capacity to its as-built value."""
        self.cap[:] = self.base
        self.banned.clear()

    def ban_arc(self, a: int) -> None:
        """Disable arc ``a`` for the current query (until :meth:`reset`)."""
        self.cap[a] = 0
        self.banned.append(a)

    def flow_on(self, a: int) -> int:
        """Net flow currently carried by arc ``a`` (negative = reverse)."""
        if a in self.banned:
            return -self.cap[a]
        return self.base[a] - self.cap[a]

    def tail(self, a: int) -> int:
        """The node arc ``a`` leaves (the head of its partner)."""
        return self.head[a ^ 1]


def _bfs_phase(net: FlowNetwork, s: int, t: int, ws: FlowWorkspace) -> bool:
    """Assign residual-graph levels from ``s``; True when ``t`` is reached.

    Stamping a node also resets its current-arc pointer -- BFS touches
    each reachable node exactly once per phase, so this is where the
    blocking-flow DFS's iterators are (lazily) initialized.
    """
    gen = ws.next_generation()
    stamp, level, arc_it, queue = ws.stamp, ws.level, ws.arc_it, ws.queue
    head, cap, adj = net.head, net.cap, net.adj
    stamp[s] = gen
    level[s] = 0
    arc_it[s] = 0
    queue[0] = s
    qhead, qtail = 0, 1
    reached_t = False
    while qhead < qtail:
        x = queue[qhead]
        qhead += 1
        d = level[x] + 1
        for a in adj[x]:
            if cap[a] <= 0:
                continue
            y = head[a]
            if stamp[y] == gen:
                continue
            stamp[y] = gen
            level[y] = d
            arc_it[y] = 0
            if y == t:
                reached_t = True
            queue[qtail] = y
            qtail += 1
    return reached_t


def _augment(
    net: FlowNetwork,
    s: int,
    t: int,
    ws: FlowWorkspace,
    limit: float,
    unit: bool,
) -> int:
    """Push one augmenting path through the current level graph.

    Returns the units pushed (0 when the phase's level graph is
    exhausted).  The traversal is identical for both specializations --
    advance via the current-arc pointer into the next level, retreat and
    dead-mark on failure -- they differ only in the push: the unit path
    pushes exactly 1 and knows every path arc saturates, the general
    path computes the bottleneck (capped at ``limit``).
    """
    head, cap, adj = net.head, net.cap, net.adj
    level, arc_it, stamp, gen = ws.level, ws.arc_it, ws.stamp, ws.gen
    stack = ws.stack
    stack.clear()
    x = s
    while True:
        if x == t:
            if unit:
                push = 1
            else:
                push = limit
                for a in stack:
                    ca = cap[a]
                    if ca < push:
                        push = ca
                push = int(push)
            for a in stack:
                cap[a] -= push
                cap[a ^ 1] += push
            return push
        row = adj[x]
        i = arc_it[x]
        lx = level[x]
        chosen = -1
        n_row = len(row)
        while i < n_row:
            a = row[i]
            if cap[a] > 0:
                y = head[a]
                if stamp[y] == gen and level[y] == lx + 1:
                    chosen = a
                    break
            i += 1
        arc_it[x] = i
        if chosen >= 0:
            stack.append(chosen)
            x = head[chosen]
        else:
            # Dead end: nothing level-increasing leaves x this phase.
            level[x] = -1
            if not stack:
                return 0
            a = stack.pop()
            x = head[a ^ 1]
            arc_it[x] += 1  # skip the arc that led into the dead end


def dinitz_max_flow(
    net: FlowNetwork,
    s: int,
    t: int,
    workspace: Optional[FlowWorkspace] = None,
    limit: Optional[int] = None,
    unit: Optional[bool] = None,
) -> int:
    """Max s-t flow of ``net``'s *current* residual state.

    Mutates ``net.cap`` in place (call :meth:`FlowNetwork.reset` to
    reuse the network).  ``limit`` stops early once that much flow is
    routed -- for disjoint-path queries that only need to reach f+1,
    the remaining phases are pure waste.  ``unit`` forces the
    unit-capacity or general blocking-flow specialization; ``None``
    auto-detects from the as-built capacities.  Both specializations
    produce bit-identical residual arrays on unit-capacity networks.
    """
    if not (0 <= s < net.num_nodes and 0 <= t < net.num_nodes):
        raise ValueError(f"terminals ({s}, {t}) outside the network")
    if s == t:
        raise ValueError("source equals sink")
    ws = workspace if workspace is not None else FlowWorkspace()
    ws.ensure(net.num_nodes)
    if unit is None:
        unit = all(c <= 1 for c in net.base)
    remaining = INFINITY if limit is None else limit
    flow = 0
    while remaining > 0 and _bfs_phase(net, s, t, ws):
        while remaining > 0:
            pushed = _augment(net, s, t, ws, remaining, unit)
            if pushed == 0:
                break
            flow += pushed
            remaining -= pushed
    return flow


def decompose_paths(net: FlowNetwork, s: int, t: int) -> List[List[int]]:
    """Extract the s-t paths carried by ``net``'s current flow.

    Walks positive-flow arcs from ``s``, consuming one unit per step;
    flow conservation guarantees every walk reaches ``t``.  Returns one
    node sequence per flow unit (so ``len(result)`` equals the flow
    value).  Flow cycles not on any s-t path are simply left
    unconsumed; loops a walk does pick up are spliced out, so every
    returned path is simple.
    """
    head, cap, base, adj = net.head, net.cap, net.base, net.adj
    flow = [base[a] - cap[a] for a in range(len(base))]
    for a in net.banned:
        # A banned arc's effective capacity is 0: it carries no flow, it
        # is not a saturated unit.
        flow[a] = -cap[a]
    value = sum(flow[a] for a in adj[s])
    it = [0] * net.num_nodes
    paths: List[List[int]] = []
    for _ in range(value):
        walk = [s]
        x = s
        while x != t:
            row = adj[x]
            i = it[x]
            while flow[row[i]] <= 0:
                i += 1
            it[x] = i
            a = row[i]
            flow[a] -= 1
            flow[a ^ 1] += 1
            x = head[a]
            walk.append(x)
        paths.append(_splice_loops(walk))
    return paths


def _splice_loops(walk: List[int]) -> List[int]:
    """Cut any loops out of a walk, leaving a simple path."""
    simple: List[int] = []
    pos = {}
    for node in walk:
        if node in pos:
            k = pos[node]
            for dropped in simple[k + 1:]:
                del pos[dropped]
            del simple[k + 1:]
        else:
            pos[node] = len(simple)
            simple.append(node)
    return simple


class DisjointPathNetwork:
    """Disjoint-path counting over a frozen CSR graph, via max-flow.

    Built once per (graph, fault model) and reused across queries: each
    call to :meth:`disjoint_paths` resets the residual capacities
    (O(arcs) slice copy), re-applies the banned elements, and runs
    Dinic's from one terminal to the other.

    ``fault_model="edge"`` -- flow nodes are the graph's node indices;
    each undirected edge {a, b} becomes ONE arc pair with capacity 1 in
    both directions (each arc is the other's residual), so the max flow
    is the number of pairwise edge-disjoint a-b paths.

    ``fault_model="vertex"`` -- the vertex-splitting transform: node
    ``x`` becomes ``x_in = 2x`` and ``x_out = 2x + 1`` joined by a
    unit-capacity internal arc, and edge {a, b} becomes the two
    unit-capacity arcs ``a_out -> b_in`` and ``b_out -> a_in``.  Flow
    through any non-terminal vertex is then capped at 1, so the max
    ``u_out -> v_in`` flow is the number of *internally* vertex-disjoint
    u-v paths; the terminals' own internal arcs sit outside the s-t
    flow and never constrain it.
    """

    __slots__ = ("csr", "fault_model", "net", "edge_arcs", "node_arcs")

    def __init__(self, csr: CSRLike, fault_model: str = "vertex") -> None:
        if fault_model not in FLOW_FAULT_MODELS:
            raise ValueError(f"unknown fault model {fault_model!r}")
        self.csr = csr
        self.fault_model = fault_model
        n = csr.num_nodes
        m = csr.num_edges
        edge_u, edge_v = csr.edge_u, csr.edge_v
        # Delta overlays retire edge ids on delete without renumbering,
        # so their flat endpoint arrays carry stale slots; skip those
        # (an empty arc tuple keeps ``edge_arcs`` aligned with eids so
        # banning a retired id is a harmless no-op).  Frozen CSR graphs
        # have no retired ids and take the unconditional path.
        owns = getattr(csr, "owns_edge_id", None)
        self.edge_arcs: List[Tuple[int, ...]] = []
        self.node_arcs: List[int] = []
        if fault_model == "edge":
            net = FlowNetwork(n)
            for eid in range(m):
                if owns is not None and not owns(eid):
                    self.edge_arcs.append(())
                    continue
                a = net.add_arc(edge_u[eid], edge_v[eid], 1, rev_cap=1)
                self.edge_arcs.append((a,))
        else:
            net = FlowNetwork(2 * n)
            for x in range(n):
                self.node_arcs.append(net.add_arc(2 * x, 2 * x + 1, 1))
            for eid in range(m):
                if owns is not None and not owns(eid):
                    self.edge_arcs.append(())
                    continue
                a, b = edge_u[eid], edge_v[eid]
                p = net.add_arc(2 * a + 1, 2 * b, 1)
                q = net.add_arc(2 * b + 1, 2 * a, 1)
                self.edge_arcs.append((p, q))
        self.net = net

    # ------------------------------------------------------------- #

    def source_of(self, i: int) -> int:
        """The flow node queries leave from, for graph index ``i``."""
        return 2 * i + 1 if self.fault_model == "vertex" else i

    def sink_of(self, i: int) -> int:
        """The flow node queries arrive at, for graph index ``i``."""
        return 2 * i if self.fault_model == "vertex" else i

    def _ban_edge_id(self, eid: int) -> None:
        for a in self.edge_arcs[eid]:
            self.net.ban_arc(a)
            self.net.ban_arc(a ^ 1)

    def _ban_vertex(self, i: int) -> None:
        if self.fault_model == "vertex":
            a = self.node_arcs[i]
            self.net.ban_arc(a)
            self.net.ban_arc(a ^ 1)
        else:
            # No internal arc to cut; removing the vertex means removing
            # its incident edges.
            for eid in self.csr.edge_id_rows[i]:
                self._ban_edge_id(eid)

    def _to_graph_path(self, flow_path: List[int]) -> List[int]:
        if self.fault_model == "edge":
            return flow_path
        path = []
        for fn in flow_path:
            g = fn >> 1
            if not path or path[-1] != g:
                path.append(g)
        return path

    # ------------------------------------------------------------- #

    def max_flow(
        self,
        u: int,
        v: int,
        workspace: Optional[FlowWorkspace] = None,
        limit: Optional[int] = None,
        unit: Optional[bool] = True,
        banned_vertices: Iterable[int] = (),
        banned_edges: Iterable[int] = (),
    ) -> int:
        """The disjoint-path count from graph index ``u`` to ``v``.

        Resets the network, bans the given vertices / edge ids, and
        runs Dinic's.  The residual state is left in place afterwards so
        :meth:`disjoint_paths` (which calls this) can decompose it.
        """
        if u == v:
            raise ValueError("disjoint paths need distinct endpoints")
        self.net.reset()
        for x in banned_vertices:
            self._ban_vertex(x)
        for eid in banned_edges:
            self._ban_edge_id(eid)
        return dinitz_max_flow(
            self.net, self.source_of(u), self.sink_of(v),
            workspace=workspace, limit=limit, unit=unit,
        )

    def disjoint_paths(
        self,
        u: int,
        v: int,
        workspace: Optional[FlowWorkspace] = None,
        limit: Optional[int] = None,
        unit: Optional[bool] = True,
        banned_vertices: Iterable[int] = (),
        banned_edges: Iterable[int] = (),
    ) -> List[List[int]]:
        """Pairwise disjoint u-v paths, as graph-index node sequences.

        Edge model: pairwise edge-disjoint.  Vertex model: pairwise
        internally vertex-disjoint (only ``u`` and ``v`` shared).  The
        returned list realizes the max flow (all of it, or ``limit``
        paths when given) and is deterministic: arcs are scanned in CSR
        construction order.
        """
        value = self.max_flow(
            u, v, workspace=workspace, limit=limit, unit=unit,
            banned_vertices=banned_vertices, banned_edges=banned_edges,
        )
        if value == 0:
            return []
        flow_paths = decompose_paths(
            self.net, self.source_of(u), self.sink_of(v)
        )
        return [self._to_graph_path(p) for p in flow_paths]
