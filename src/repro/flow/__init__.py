"""Max-flow: the paper's namesake algorithm, as a certificate engine.

Dinic's algorithm (level-graph BFS + blocking-flow DFS) runs on the
same flat-array substrate as the rest of the library and exists here
for one purpose: Menger's theorem turns disjoint-path counts into
*polynomial* fault-tolerance witnesses -- f+1 pairwise disjoint short
paths between a pair certify that no fault set of size f can stretch
it, with no ``C(n, f)`` enumeration anywhere.

:mod:`repro.flow.dinitz` holds the engine; the consumers are
``verify_ft_spanner(mode="witness")``, the ``disjoint_paths``
certificate API in :mod:`repro.verification.certificates`, and
``SpannerRouter.disjoint_routes``.
"""

from repro.flow.dinitz import (
    DisjointPathNetwork,
    FlowNetwork,
    FlowWorkspace,
    decompose_paths,
    dinitz_max_flow,
)

__all__ = [
    "DisjointPathNetwork",
    "FlowNetwork",
    "FlowWorkspace",
    "decompose_paths",
    "dinitz_max_flow",
]
