"""Command-line interface: ``ftspanner``.

Subcommands
-----------
``build``    Build a fault-tolerant spanner of a graph file (or a
             generated random graph) and write/print the result.
``verify``   Check that one graph file is an f-FT t-spanner of another.
``oracle``   Build a spanner-backed distance oracle and answer batched
             post-fault queries across sampled failure scenarios.
``info``     Print structural statistics of a graph file.
``demo``     Run a small end-to-end demonstration (no files needed).

Graph files use the library's text edge-list format
(:mod:`repro.graph.io`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.baselines import (
    baswana_sen_spanner,
    classic_greedy_spanner,
    clpr_fault_tolerant_spanner,
    dk_fault_tolerant_spanner,
    thorup_zwick_spanner,
)
from repro.core import (
    exponential_greedy_spanner,
    fault_tolerant_spanner,
    resolve_backend,
)
from repro.distributed import congest_ft_spanner, local_ft_spanner
from repro.graph import generators
from repro.graph import io as graph_io
from repro.graph.traversal import connected_components, hop_diameter
from repro.verification import max_stretch, verify_ft_spanner

# Each entry takes (g, k, f, seed, model, backend); constructions without
# a notion of seed or execution backend simply ignore those arguments.
_ALGORITHMS = {
    "greedy": lambda g, k, f, seed, model, backend: fault_tolerant_spanner(
        g, k, f, fault_model=model, seed=seed, backend=backend
    ),
    "exact-greedy": lambda g, k, f, seed, model, backend: (
        exponential_greedy_spanner(g, k, f, fault_model=model, backend=backend)
    ),
    "dk": lambda g, k, f, seed, model, backend: dk_fault_tolerant_spanner(
        g, k, max(f, 1), seed=seed
    ),
    "clpr": lambda g, k, f, seed, model, backend: clpr_fault_tolerant_spanner(
        g, k, f, seed=seed
    ),
    "local": lambda g, k, f, seed, model, backend: local_ft_spanner(
        g, k, f, fault_model=model, seed=seed
    ),
    "congest": lambda g, k, f, seed, model, backend: congest_ft_spanner(
        g, k, max(f, 1), seed=seed
    ),
    "classic": lambda g, k, f, seed, model, backend: classic_greedy_spanner(
        g, k, backend=backend
    ),
    "baswana-sen": lambda g, k, f, seed, model, backend: baswana_sen_spanner(
        g, k, seed=seed
    ),
    "thorup-zwick": lambda g, k, f, seed, model, backend: (
        thorup_zwick_spanner(g, k, seed=seed)
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ftspanner",
        description="Fault-tolerant spanner constructions (Dinitz-Robelle PODC 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a fault-tolerant spanner")
    build.add_argument("--input", help="graph file (edge-list format)")
    build.add_argument("--random", type=int, metavar="N",
                       help="generate a G(n, p) input instead of reading a file")
    build.add_argument("--p", type=float, default=0.1,
                       help="edge probability for --random (default 0.1)")
    build.add_argument("-k", type=int, default=2,
                       help="stretch parameter: stretch = 2k-1 (default 2)")
    build.add_argument("-f", type=int, default=1,
                       help="number of faults tolerated (default 1)")
    build.add_argument("--fault-model", choices=["vertex", "edge"],
                       default="vertex")
    build.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                       default="greedy")
    build.add_argument("--backend", choices=["dict", "csr"], default=None,
                       help="execution backend for the greedy family: 'csr' "
                            "(flat-array hot path) or 'dict' (reference "
                            "dict-of-dict path); both produce identical "
                            "spanners (default: csr, or the REPRO_BACKEND "
                            "environment variable when set)")
    build.add_argument("--seed", type=int, default=0,
                       help="random seed for --random generation and for "
                            "seeded constructions (default 0)")
    build.add_argument("--output", help="write the spanner here (edge-list)")
    build.add_argument("--verify", action="store_true",
                       help="verify the output before reporting")

    verify = sub.add_parser("verify", help="verify a spanner file")
    verify.add_argument("graph", help="original graph file")
    verify.add_argument("spanner", help="candidate spanner file")
    verify.add_argument("-t", type=float, required=True, help="stretch bound")
    verify.add_argument("-f", type=int, default=0, help="fault budget")
    verify.add_argument("--fault-model", choices=["vertex", "edge"],
                        default="vertex")
    verify.add_argument("--samples", type=int, default=300)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--backend", choices=["dict", "csr"], default=None,
                        help="execution backend for the verification sweep "
                             "(default: csr, or REPRO_BACKEND when set); "
                             "the report is identical either way")

    oracle = sub.add_parser(
        "oracle",
        help="answer batched post-fault distance queries from a spanner",
    )
    oracle.add_argument("--input", help="graph file (edge-list format)")
    oracle.add_argument("--random", type=int, metavar="N",
                        help="generate a G(n, p) input instead of a file")
    oracle.add_argument("--p", type=float, default=0.1,
                        help="edge probability for --random (default 0.1)")
    oracle.add_argument("-k", type=int, default=2,
                        help="stretch parameter: stretch = 2k-1 (default 2)")
    oracle.add_argument("-f", type=int, default=1,
                        help="fault budget per query (default 1)")
    oracle.add_argument("--fault-model", choices=["vertex", "edge"],
                        default="vertex")
    oracle.add_argument("--pairs", type=int, default=200,
                        help="query pairs per scenario (default 200)")
    oracle.add_argument("--scenarios", type=int, default=3,
                        help="random fault scenarios to sweep (default 3)")
    oracle.add_argument("--cache-size", type=int, default=256,
                        help="single-source runs kept in the oracle LRU "
                             "(default 256)")
    oracle.add_argument("--backend", choices=["dict", "csr"], default=None,
                        help="query engine: 'csr' (one shared snapshot, "
                             "O(|F|) scenario re-stamp) or 'dict' (lazy "
                             "views); answers are identical (default: csr, "
                             "or REPRO_BACKEND when set)")
    oracle.add_argument("--seed", type=int, default=0,
                        help="seed for --random generation and for "
                             "scenario/pair sampling (default 0)")

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("graph", help="graph file")

    sub.add_parser("demo", help="run a small end-to-end demo")
    return parser


def _load_or_generate(args) -> "Graph":
    from repro.graph.graph import Graph

    if args.input and args.random:
        raise SystemExit("give --input or --random, not both")
    if args.input:
        return graph_io.load(args.input)
    if args.random:
        return generators.gnp_random_graph(args.random, args.p, seed=args.seed)
    raise SystemExit("need --input FILE or --random N")


def _cmd_build(args) -> int:
    g = _load_or_generate(args)
    build = _ALGORITHMS[args.algorithm]
    try:
        # Resolve here so a bad REPRO_BACKEND value fails like a bad
        # --backend flag (clean usage error), not a traceback mid-build.
        backend = resolve_backend(args.backend)
    except ValueError as exc:
        raise SystemExit(f"ftspanner build: error: {exc}")
    start = time.perf_counter()
    result = build(g, args.k, args.f, args.seed, args.fault_model, backend)
    elapsed = time.perf_counter() - start
    print(result.describe())
    print(f"input edges: {g.num_edges}   kept: "
          f"{result.spanner.num_edges} "
          f"({100.0 * result.compression_ratio(g):.1f}%)   "
          f"time: {elapsed:.3f}s")
    if args.verify:
        report = verify_ft_spanner(
            g, result.spanner, t=2 * args.k - 1, f=args.f,
            fault_model=args.fault_model, seed=args.seed, backend=backend,
        )
        kind = "exhaustive" if report.exhaustive else "sampled"
        print(f"verification ({kind}, {report.fault_sets_checked} fault sets): "
              f"{'OK' if report.ok else 'FAILED'}")
        if not report.ok:
            print(f"  counterexample: {report.counterexample}")
            return 1
    if args.output:
        graph_io.save(result.spanner, args.output)
        print(f"spanner written to {args.output}")
    return 0


def _cmd_verify(args) -> int:
    g = graph_io.load(args.graph)
    h = graph_io.load(args.spanner)
    try:
        backend = resolve_backend(args.backend)
    except ValueError as exc:
        raise SystemExit(f"ftspanner verify: error: {exc}")
    report = verify_ft_spanner(
        g, h, t=args.t, f=args.f, fault_model=args.fault_model,
        samples=args.samples, seed=args.seed, backend=backend,
    )
    kind = "exhaustive" if report.exhaustive else "sampled"
    print(f"checked {report.fault_sets_checked} fault sets ({kind})")
    if report.ok:
        print("OK: spanner property holds on everything checked")
        return 0
    print(f"FAILED: {report.counterexample}")
    return 1


def _cmd_oracle(args) -> int:
    import math
    import random

    from repro.applications import FaultTolerantDistanceOracle

    g = _load_or_generate(args)
    try:
        backend = resolve_backend(args.backend)
    except ValueError as exc:
        raise SystemExit(f"ftspanner oracle: error: {exc}")
    start = time.perf_counter()
    oracle = FaultTolerantDistanceOracle(
        g, k=args.k, f=args.f, fault_model=args.fault_model,
        cache_size=args.cache_size, backend=backend,
    )
    build = time.perf_counter() - start
    print(f"oracle over {oracle.size} spanner edges "
          f"(stretch guarantee {oracle.stretch}, f={args.f}, "
          f"backend {backend}): built in {build:.3f}s")
    rng = random.Random(args.seed)
    nodes = sorted(g.nodes(), key=repr)
    # Vertex faults remove nodes from the survivor pool; edge faults
    # don't, so there only the two pair endpoints are needed.
    needed = max(args.f, 0) + 2 if args.fault_model == "vertex" else 2
    if len(nodes) < needed:
        raise SystemExit("ftspanner oracle: error: graph too small "
                         "for that fault budget")
    edges = list(g.edges())
    total = 0
    answered_finite = 0
    query_time = 0.0
    for s in range(args.scenarios):
        if args.f <= 0:
            faults = []
        elif args.fault_model == "vertex":
            faults = rng.sample(nodes, min(args.f, len(nodes) - 2))
        else:
            faults = rng.sample(edges, min(args.f, len(edges)))
        fault_set = set(faults)
        survivors = (
            [x for x in nodes if x not in fault_set]
            if args.fault_model == "vertex" else nodes
        )
        pairs = [tuple(rng.sample(survivors, 2)) for _ in range(args.pairs)]
        start = time.perf_counter()
        answers = oracle.distances(pairs, faults=faults)
        query_time += time.perf_counter() - start
        total += len(answers)
        answered_finite += sum(1 for d in answers if not math.isinf(d))
    rate = f" ({total / query_time:.0f} queries/s)" if query_time > 0 else ""
    print(f"answered {total} queries across {args.scenarios} scenarios "
          f"in {query_time:.3f}s{rate}")
    print(f"reachable under faults: {answered_finite}/{total}")
    return 0


def _cmd_info(args) -> int:
    from repro.graph.metrics import DegreeStats, average_clustering, weight_stats

    g = graph_io.load(args.graph)
    components = connected_components(g)
    degrees = DegreeStats.of(g)
    print(f"nodes:      {g.num_nodes}")
    print(f"edges:      {g.num_edges}")
    print(f"components: {len(components)}")
    print(f"degrees:    min {degrees.minimum}  median {degrees.median}  "
          f"mean {degrees.mean:.2f}  max {degrees.maximum}")
    print(f"density:    {g.density():.4f}")
    if g.num_nodes <= 500:
        print(f"clustering: {average_clustering(g):.3f}")
    if len(components) == 1 and g.num_nodes <= 2000:
        print(f"hop diameter: {hop_diameter(g)}")
    unit = g.is_unit_weighted()
    print(f"weighted:   {'no' if unit else 'yes'}")
    if not unit:
        lo, mean, hi = weight_stats(g)
        print(f"weights:    min {lo:.3g}  mean {mean:.3g}  max {hi:.3g}")
    return 0


def _cmd_demo(args) -> int:
    print("Building a 2-fault-tolerant 3-spanner of G(80, 0.15)...")
    g = generators.gnp_random_graph(80, 0.15, seed=42)
    result = fault_tolerant_spanner(g, k=2, f=2)
    print(f"  {result.describe()}")
    print(f"  kept {result.spanner.num_edges} of {g.num_edges} edges "
          f"({100.0 * result.compression_ratio(g):.1f}%)")
    stretch = max_stretch(g, result.spanner)
    print(f"  fault-free stretch: {stretch:.3f} (guarantee: 3)")
    report = verify_ft_spanner(g, result.spanner, t=3, f=2,
                               samples=200, seed=0)
    kind = "exhaustive" if report.exhaustive else "sampled"
    print(f"  fault-tolerance verification ({kind}): "
          f"{'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also installed as the ``ftspanner`` script)."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "verify": _cmd_verify,
        "oracle": _cmd_oracle,
        "info": _cmd_info,
        "demo": _cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
