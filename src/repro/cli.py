"""Command-line interface: ``ftspanner``.

Subcommands
-----------
``build``       Build a fault-tolerant spanner of a graph file (or a
                generated random graph) and write/print the result.
``verify``      Check that one graph file is an f-FT t-spanner of another.
``oracle``      Build a spanner-backed distance oracle and answer batched
                post-fault queries across sampled failure scenarios.
``serve``       Stand up the resilient multi-process serving core over a
                built spanner and drive it with an open-loop load
                generator (optionally under seeded chaos injection),
                reporting throughput, latency quantiles, and parity.
``churn``       Stream seeded edge insert/delete updates through a built
                spanner session (delta overlays + compaction policy),
                probing distances during churn and checking them against
                the reference engine.
``distributed`` Run one of the LOCAL/CONGEST constructions end to end on
                the message-passing simulator, optionally across
                ``--workers`` partition processes (bit-identical to
                sequential execution) and, for the LOCAL spanner, with
                the ``--deterministic`` ruling-set decomposition.
``algorithms``  List every registered construction with its guarantee
                and capabilities (the algorithm registry).
``info``        Print structural statistics of a graph file.
``demo``        Run a small end-to-end demonstration (no files needed).

The CLI is a thin shell over the library's unified public API: the
``--algorithm`` catalog comes from the :mod:`algorithm registry
<repro.registry>`, and each command drives one
:class:`~repro.session.SpannerSession`, so e.g. ``build --verify``
freezes the graphs into the CSR substrate once and shares the snapshot
between construction check and verification sweep.

Capability validation replaces the old silent-drop behavior: requesting
``--backend`` for a single-engine construction or ``-f`` below an
algorithm's minimum is a clean usage error, and options that merely do
nothing for the chosen algorithm (``-f`` on a non-fault-tolerant
baseline, ``--seed`` with a deterministic construction and a file
input) produce an explicit note instead of silence.

Graph files use the library's text edge-list format
(:mod:`repro.graph.io`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core import resolve_backend
from repro.graph import generators
from repro.graph import io as graph_io
from repro.graph.snapshot import (
    SEARCH_CAPABILITIES,
    SEARCH_MODES,
    UnsupportedSearch,
)
from repro.graph.traversal import (
    HAVE_NUMPY,
    connected_components,
    hop_diameter,
)
from repro.registry import (
    UnsupportedOption,
    algorithm_names,
    get_algorithm,
    iter_algorithms,
)
from repro.session import SpannerSession
from repro.verification import VERIFY_MODES, max_stretch


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ftspanner",
        description="Fault-tolerant spanner constructions (Dinitz-Robelle PODC 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a fault-tolerant spanner")
    build.add_argument("--input", help="graph file (edge-list format)")
    build.add_argument("--random", type=int, metavar="N",
                       help="generate a G(n, p) input instead of reading a file")
    build.add_argument("--p", type=float, default=0.1,
                       help="edge probability for --random (default 0.1)")
    build.add_argument("-k", type=int, default=2,
                       help="stretch parameter: stretch = 2k-1 (default 2)")
    build.add_argument("-f", type=int, default=1,
                       help="number of faults tolerated (default 1); "
                            "constructions without fault tolerance build "
                            "with f=0 (a note is printed)")
    build.add_argument("--fault-model", choices=["vertex", "edge"],
                       default=None,
                       help="which objects fail (default vertex); noted "
                            "and ignored for non-fault-tolerant "
                            "constructions")
    build.add_argument("--algorithm", choices=algorithm_names(),
                       default="greedy",
                       help="a registered construction (see: ftspanner "
                            "algorithms)")
    build.add_argument("--backend", choices=["dict", "csr"], default=None,
                       help="execution backend for backend-aware "
                            "constructions: 'csr' (flat-array hot path) or "
                            "'dict' (reference dict-of-dict path); both "
                            "produce identical spanners (default: csr, or "
                            "the REPRO_BACKEND environment variable when "
                            "set).  Rejected for single-engine algorithms.")
    build.add_argument("--search", choices=SEARCH_MODES, default=None,
                       help="weighted search engine for the CSR sweeps "
                            "(--verify): 'auto' picks per weight profile "
                            "(BFS / bucket queue / bidirectional "
                            "Dijkstra / heap); identical reports on "
                            "every legal engine.  'bucket', 'bidir' and "
                            "'batch' require integral edge weights; "
                            "'batch' sweeps many roots per frontier pass "
                            "(numpy-accelerated when available, stdlib "
                            "otherwise).  Default: REPRO_SEARCH when "
                            "set, else 'auto'.")
    build.add_argument("--seed", type=int, default=None,
                       help="random seed for --random generation and for "
                            "seeded constructions (default 0)")
    build.add_argument("--output", help="write the spanner here (edge-list)")
    build.add_argument("--verify", action="store_true",
                       help="verify the output before reporting (shares "
                            "the build's CSR snapshot)")

    verify = sub.add_parser("verify", help="verify a spanner file")
    verify.add_argument("graph", help="original graph file")
    verify.add_argument("spanner", help="candidate spanner file")
    verify.add_argument("-t", type=float, required=True, help="stretch bound")
    verify.add_argument("-f", type=int, default=0, help="fault budget")
    verify.add_argument("--fault-model", choices=["vertex", "edge"],
                        default="vertex")
    verify.add_argument("--mode", choices=sorted(VERIFY_MODES),
                        default="sweep",
                        help="verification strategy: 'sweep' enumerates "
                             "fault sets (exhaustive within budget, else "
                             "sampled); 'witness' certifies pairs with "
                             "(f+1)-disjoint-path max-flow certificates "
                             "and only sweeps the pairs left over -- same "
                             "verdict, polynomial cost (see: ftspanner "
                             "algorithms)")
    verify.add_argument("--samples", type=int, default=300)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--backend", choices=["dict", "csr"], default=None,
                        help="execution backend for the verification sweep "
                             "(default: csr, or REPRO_BACKEND when set); "
                             "the report is identical either way")
    verify.add_argument("--search", choices=SEARCH_MODES, default=None,
                        help="weighted search engine for the CSR sweep "
                             "('bucket'/'bidir'/'batch' need integral "
                             "weights); the report is identical on every "
                             "legal engine")

    oracle = sub.add_parser(
        "oracle",
        help="answer batched post-fault distance queries from a spanner",
    )
    oracle.add_argument("--input", help="graph file (edge-list format)")
    oracle.add_argument("--random", type=int, metavar="N",
                        help="generate a G(n, p) input instead of a file")
    oracle.add_argument("--p", type=float, default=0.1,
                        help="edge probability for --random (default 0.1)")
    oracle.add_argument("-k", type=int, default=2,
                        help="stretch parameter: stretch = 2k-1 (default 2)")
    oracle.add_argument("-f", type=int, default=1,
                        help="fault budget per query (default 1)")
    oracle.add_argument("--fault-model", choices=["vertex", "edge"],
                        default="vertex")
    oracle.add_argument("--pairs", type=int, default=200,
                        help="query pairs per scenario (default 200)")
    oracle.add_argument("--scenarios", type=int, default=3,
                        help="random fault scenarios to sweep (default 3)")
    oracle.add_argument("--cache-size", type=int, default=256,
                        help="single-source runs kept in the oracle LRU "
                             "(default 256)")
    oracle.add_argument("--backend", choices=["dict", "csr"], default=None,
                        help="query engine: 'csr' (one shared snapshot, "
                             "O(|F|) scenario re-stamp) or 'dict' (lazy "
                             "views); answers are identical (default: csr, "
                             "or REPRO_BACKEND when set)")
    oracle.add_argument("--search", choices=SEARCH_MODES, default=None,
                        help="weighted search engine for the CSR query "
                             "sweep: 'auto' resolves from the spanner's "
                             "weight profile (bucket queue on integral "
                             "weights); 'batch' answers each scenario's "
                             "query batch with one multi-source sweep "
                             "(integral weights only; numpy-accelerated "
                             "BFS planes when numpy is importable, pure "
                             "stdlib otherwise); answers are identical "
                             "on every legal engine")
    oracle.add_argument("--seed", type=int, default=0,
                        help="seed for --random generation and for "
                             "scenario/pair sampling (default 0)")

    serve = sub.add_parser(
        "serve",
        help="run the resilient serving core under an open-loop load "
             "generator (optionally with chaos injection)",
    )
    serve.add_argument("--input", help="graph file (edge-list format)")
    serve.add_argument("--random", type=int, metavar="N",
                       help="generate a G(n, p) input instead of a file")
    serve.add_argument("--p", type=float, default=0.1,
                       help="edge probability for --random (default 0.1)")
    serve.add_argument("-k", type=int, default=2,
                       help="stretch parameter: stretch = 2k-1 (default 2)")
    serve.add_argument("-f", type=int, default=1,
                       help="fault budget per request scenario (default 1)")
    serve.add_argument("--fault-model", choices=["vertex", "edge"],
                       default="vertex")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes in the pool (default 2)")
    serve.add_argument("--deadline-ms", type=float, default=2000.0,
                       help="per-request latency budget in milliseconds "
                            "(default 2000); expiry raises a typed "
                            "DeadlineExceeded carrying partial results")
    serve.add_argument("--requests", type=int, default=50,
                       help="requests the load generator issues "
                            "(default 50)")
    serve.add_argument("--rate", type=float, default=None,
                       help="open-loop arrival rate in requests/second "
                            "(default: back-to-back closed loop)")
    serve.add_argument("--pairs", type=int, default=8,
                       help="distance pairs per request (default 8)")
    serve.add_argument("--fault-process",
                       choices=["independent", "clustered", "cascade"],
                       default="independent",
                       help="per-request fault-scenario generator: "
                            "'independent' uniform draws, 'clustered' "
                            "neighbor-contagion sampling, or 'cascade' "
                            "load-redistribution chain failures (default "
                            "independent)")
    serve.add_argument("--chaos-rate", type=float, default=0.0,
                       help="probability a dispatched shard's worker is "
                            "SIGKILLed mid-request (default 0: healthy)")
    serve.add_argument("--stall-rate", type=float, default=0.0,
                       help="probability a dispatched shard's worker "
                            "stalls before answering (default 0)")
    serve.add_argument("--stall-ms", type=float, default=50.0,
                       help="stall duration in milliseconds (default 50)")
    serve.add_argument("--spawn-fail-rate", type=float, default=0.0,
                       help="probability an injected spawn failure "
                            "rejects a worker (re)spawn (default 0)")
    serve.add_argument("--no-degrade", action="store_true",
                       help="raise ServingUnavailable instead of "
                            "degrading to in-process execution when the "
                            "pool is unusable")
    serve.add_argument("--backend", choices=["dict", "csr"], default=None,
                       help="session backend for the build (serving "
                            "always executes on the CSR substrate; "
                            "answers are identical)")
    serve.add_argument("--search", choices=SEARCH_MODES, default=None,
                       help="weighted search engine for the workers' "
                            "sweeps (identical answers on every legal "
                            "engine)")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for --random generation, the workload, "
                            "and the chaos schedule (default 0)")

    churn = sub.add_parser(
        "churn",
        help="stream edge updates through a spanner session (delta "
             "overlays + compaction) and probe distances during churn",
    )
    churn.add_argument("--input", help="graph file (edge-list format)")
    churn.add_argument("--random", type=int, metavar="N",
                       help="generate a G(n, p) input instead of a file")
    churn.add_argument("--p", type=float, default=0.1,
                       help="edge probability for --random (default 0.1)")
    churn.add_argument("-k", type=int, default=2,
                       help="stretch parameter: stretch = 2k-1 (default 2)")
    churn.add_argument("-f", type=int, default=1,
                       help="fault budget for the build (default 1)")
    churn.add_argument("--steps", type=int, default=200,
                       help="insert steps of the sliding-window churn "
                            "stream (default 200); deletes ride along "
                            "once the window is full")
    churn.add_argument("--window", type=int, default=25,
                       help="max live churn edges at any time (default 25)")
    churn.add_argument("--weights", choices=["unit", "int", "float"],
                       default="unit",
                       help="weight profile of inserted edges (default "
                            "unit)")
    churn.add_argument("--batch", type=int, default=20,
                       help="ops applied per update batch (default 20)")
    churn.add_argument("--compact-every", type=int, default=None,
                       help="compact the overlay after this many "
                            "effective updates (default: density-driven "
                            "auto mode only)")
    churn.add_argument("--max-density", type=float, default=0.25,
                       help="auto-compact once overlay churn exceeds "
                            "this fraction of the base epoch's edges "
                            "(default 0.25; 0 disables)")
    churn.add_argument("--probes", type=int, default=5,
                       help="distance probes checked per batch "
                            "(default 5)")
    churn.add_argument("--backend", choices=["dict", "csr"], default=None,
                       help="session backend (the overlay engine serves "
                            "the csr backend; dict mutates in place; "
                            "answers are identical)")
    churn.add_argument("--search", choices=SEARCH_MODES, default=None,
                       help="weighted search engine for the probes")
    churn.add_argument("--seed", type=int, default=0,
                       help="seed for --random generation, the churn "
                            "stream, and probe sampling (default 0)")

    distributed_names = tuple(
        spec.name for spec in iter_algorithms() if spec.distributed
    )
    distributed = sub.add_parser(
        "distributed",
        help="run a LOCAL/CONGEST construction on the round simulator",
    )
    distributed.add_argument("--input", help="graph file (edge-list format)")
    distributed.add_argument("--random", type=int, metavar="N",
                             help="generate a G(n, p) input instead of a "
                                  "file")
    distributed.add_argument("--p", type=float, default=0.1,
                             help="edge probability for --random "
                                  "(default 0.1)")
    distributed.add_argument("-k", type=int, default=2,
                             help="stretch parameter: stretch = 2k-1 "
                                  "(default 2)")
    distributed.add_argument("-f", type=int, default=1,
                             help="fault budget (default 1); non-fault-"
                                  "tolerant protocols run with f=0 (a "
                                  "note is printed)")
    distributed.add_argument("--fault-model", choices=["vertex", "edge"],
                             default=None,
                             help="which objects fail (default vertex); "
                                  "noted and ignored for non-fault-"
                                  "tolerant protocols")
    distributed.add_argument("--algorithm", choices=distributed_names,
                             default="local",
                             help="a distributed construction from the "
                                  "registry (default local)")
    distributed.add_argument("--workers", type=int, default=None,
                             help="partition worker processes for the "
                                  "round engine (default: in-process "
                                  "sequential execution; any value is "
                                  "bit-identical)")
    distributed.add_argument("--seed", type=int, default=None,
                             help="random seed for --random generation "
                                  "and the protocol's randomness "
                                  "(default 0)")
    distributed.add_argument("--deterministic", action="store_true",
                             help="use the deterministic ruling-set "
                                  "decomposition instead of random "
                                  "shifts (derandomizable protocols "
                                  "only; see: ftspanner algorithms)")

    algorithms = sub.add_parser(
        "algorithms",
        help="list the registered constructions and their capabilities",
    )
    algorithms.add_argument("--verbose", action="store_true",
                            help="also print each algorithm's summary line")

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("graph", help="graph file")

    sub.add_parser("demo", help="run a small end-to-end demo")
    return parser


def _load_or_generate(args, seed: int = 0) -> "Graph":
    if args.input and args.random:
        raise SystemExit("give --input or --random, not both")
    if args.input:
        return graph_io.load(args.input)
    if args.random:
        return generators.gnp_random_graph(args.random, args.p, seed=seed)
    raise SystemExit("need --input FILE or --random N")


def _resolve_backend_or_exit(args, command: str) -> str:
    # Resolve here so a bad REPRO_BACKEND value fails like a bad
    # --backend flag (clean usage error), not a traceback mid-build.
    try:
        return resolve_backend(args.backend)
    except ValueError as exc:
        raise SystemExit(f"ftspanner {command}: error: {exc}")


def _cmd_build(args) -> int:
    spec = get_algorithm(args.algorithm)
    backend = _resolve_backend_or_exit(args, "build")
    f = args.f
    if f and not spec.fault_tolerant:
        print(f"note: '{spec.name}' is not fault-tolerant; building with "
              f"f=0 instead of f={f}")
        f = 0
    fault_model = args.fault_model or "vertex"
    if args.fault_model is not None and not spec.fault_tolerant:
        print(f"note: '{spec.name}' is not fault-tolerant; ignoring "
              f"--fault-model {args.fault_model}")
    # Pre-flight the request against the algorithm's spec -- the same
    # validation (and messages) build_spanner applies, run here so a
    # capability error fails before the graph is loaded or generated.
    # Mirrors session.build's routing: the fault model travels only to
    # fault-tolerant constructions (with the note above when an
    # explicit choice is dropped); an explicit --backend flag must
    # error on single-engine ones (an omitted flag validates nothing).
    try:
        spec.validate_request(
            f=f,
            fault_model=fault_model if spec.fault_tolerant else None,
            backend=args.backend,
        )
    except UnsupportedOption as exc:
        raise SystemExit(f"ftspanner build: error: {exc}")
    seed = 0 if args.seed is None else args.seed
    # With a file input and a deterministic construction the seed's only
    # remaining consumer is the --verify sampled sweep; without that it
    # does nothing at all, which deserves a note.
    if (args.seed is not None and args.input and not spec.seedable
            and not args.verify):
        print(f"note: '{spec.name}' is deterministic; --seed {args.seed} "
              f"has no effect on a file input without --verify")
    g = _load_or_generate(args, seed=seed)
    session = SpannerSession(
        g, k=args.k, f=f, fault_model=fault_model,
        backend=backend, seed=seed, search=args.search,
    )
    start = time.perf_counter()
    try:
        result = session.build(args.algorithm)
    except UnsupportedOption as exc:
        # Graph-dependent capability errors (e.g. a weighted file fed
        # to a unit-only construction) surface only once the input is
        # loaded; keep them clean usage errors, not tracebacks.
        raise SystemExit(f"ftspanner build: error: {exc}")
    elapsed = time.perf_counter() - start
    print(result.describe())
    print(f"input edges: {g.num_edges}   kept: "
          f"{result.spanner.num_edges} "
          f"({100.0 * result.compression_ratio(g):.1f}%)   "
          f"time: {elapsed:.3f}s")
    if args.verify:
        try:
            # samples=300: keep the historical sampled fallback on
            # builds too big for the exhaustive sweep.
            report = session.verify(t=2 * args.k - 1, samples=300)
        except UnsupportedSearch as exc:
            raise SystemExit(f"ftspanner build: error: {exc}")
        kind = "exhaustive" if report.exhaustive else "sampled"
        print(f"verification ({kind}, {report.fault_sets_checked} fault sets): "
              f"{'OK' if report.ok else 'FAILED'}")
        if not report.ok:
            print(f"  counterexample: {report.counterexample}")
            return 1
    if args.output:
        graph_io.save(result.spanner, args.output)
        print(f"spanner written to {args.output}")
    return 0


def _cmd_verify(args) -> int:
    g = graph_io.load(args.graph)
    h = graph_io.load(args.spanner)
    backend = _resolve_backend_or_exit(args, "verify")
    session = SpannerSession(
        g, f=args.f, fault_model=args.fault_model,
        backend=backend, seed=args.seed, search=args.search,
    )
    session.adopt(h)
    try:
        report = session.verify(
            t=args.t, samples=args.samples, mode=args.mode
        )
    except UnsupportedSearch as exc:
        raise SystemExit(f"ftspanner verify: error: {exc}")
    kind = "exhaustive" if report.exhaustive else "sampled"
    if report.mode == "witness":
        print(f"witnessed {report.pairs_witnessed}/{report.pairs_checked} "
              f"pairs; {report.fault_sets_checked} fallback fault sets "
              f"({kind})")
    else:
        print(f"checked {report.fault_sets_checked} fault sets ({kind})")
    if report.ok:
        print("OK: spanner property holds on everything checked")
        return 0
    print(f"FAILED: {report.counterexample}")
    return 1


def _cmd_oracle(args) -> int:
    import math
    import random

    backend = _resolve_backend_or_exit(args, "oracle")
    g = _load_or_generate(args, seed=args.seed)
    session = SpannerSession(
        g, k=args.k, f=args.f, fault_model=args.fault_model,
        backend=backend, seed=args.seed, search=args.search,
    )
    start = time.perf_counter()
    session.build("greedy")
    try:
        oracle = session.oracle(cache_size=args.cache_size)
    except UnsupportedSearch as exc:
        raise SystemExit(f"ftspanner oracle: error: {exc}")
    build = time.perf_counter() - start
    print(f"oracle over {oracle.size} spanner edges "
          f"(stretch guarantee {oracle.stretch}, f={args.f}, "
          f"backend {backend}): built in {build:.3f}s")
    rng = random.Random(args.seed)
    nodes = sorted(g.nodes(), key=repr)
    # Vertex faults remove nodes from the survivor pool; edge faults
    # don't, so there only the two pair endpoints are needed.
    needed = max(args.f, 0) + 2 if args.fault_model == "vertex" else 2
    if len(nodes) < needed:
        raise SystemExit("ftspanner oracle: error: graph too small "
                         "for that fault budget")
    edges = list(g.edges())
    total = 0
    answered_finite = 0
    query_time = 0.0
    for s in range(args.scenarios):
        if args.f <= 0:
            faults = []
        elif args.fault_model == "vertex":
            faults = rng.sample(nodes, min(args.f, len(nodes) - 2))
        else:
            faults = rng.sample(edges, min(args.f, len(edges)))
        fault_set = set(faults)
        survivors = (
            [x for x in nodes if x not in fault_set]
            if args.fault_model == "vertex" else nodes
        )
        pairs = [tuple(rng.sample(survivors, 2)) for _ in range(args.pairs)]
        start = time.perf_counter()
        answers = oracle.distances(pairs, faults=faults)
        query_time += time.perf_counter() - start
        total += len(answers)
        answered_finite += sum(1 for d in answers if not math.isinf(d))
    rate = f" ({total / query_time:.0f} queries/s)" if query_time > 0 else ""
    print(f"answered {total} queries across {args.scenarios} scenarios "
          f"in {query_time:.3f}s{rate}")
    print(f"reachable under faults: {answered_finite}/{total}")
    return 0


def _cmd_serve(args) -> int:
    from repro.serving import ChaosPolicy, ServingConfig, run_load

    backend = _resolve_backend_or_exit(args, "serve")
    g = _load_or_generate(args, seed=args.seed)
    session = SpannerSession(
        g, k=args.k, f=args.f, fault_model=args.fault_model,
        backend=backend, seed=args.seed, search=args.search,
    )
    start = time.perf_counter()
    session.build("greedy")
    build = time.perf_counter() - start
    chaos = None
    if args.chaos_rate or args.stall_rate or args.spawn_fail_rate:
        try:
            chaos = ChaosPolicy(
                args.seed,
                kill_rate=args.chaos_rate,
                stall_rate=args.stall_rate,
                stall_seconds=args.stall_ms / 1e3,
                spawn_fail_rate=args.spawn_fail_rate,
            )
        except ValueError as exc:
            raise SystemExit(f"ftspanner serve: error: {exc}")
    try:
        config = ServingConfig(
            workers=args.workers,
            deadline=args.deadline_ms / 1e3,
            degrade=not args.no_degrade,
        )
    except ValueError as exc:
        raise SystemExit(f"ftspanner serve: error: {exc}")
    try:
        server = session.serve(config=config, chaos=chaos)
    except UnsupportedSearch as exc:
        raise SystemExit(f"ftspanner serve: error: {exc}")
    with server:
        print(f"serving {session.result.spanner.num_edges} spanner edges "
              f"over {server.live_workers} worker(s) "
              f"(built in {build:.3f}s; deadline "
              f"{args.deadline_ms:.0f}ms"
              + (f"; chaos seed {args.seed}" if chaos else "")
              + ")")
        try:
            report = run_load(
                server,
                requests=args.requests,
                rate=args.rate,
                pairs_per_request=args.pairs,
                failures=args.f,
                fault_model=args.fault_model,
                fault_process=args.fault_process,
                seed=args.seed,
            )
        except ValueError as exc:
            raise SystemExit(f"ftspanner serve: error: {exc}")
    print(f"requests: {report.completed}/{report.requests} completed, "
          f"{report.deadline_errors} deadline-exceeded, "
          f"{report.unavailable} unavailable")
    print(f"throughput: {report.throughput_rps:.1f} req/s   "
          f"latency p50 {report.p50_ms:.2f}ms  p99 {report.p99_ms:.2f}ms")
    s = report.stats
    print(f"resilience: {s['retries']} retries, {s['worker_deaths']} "
          f"worker deaths, {s['respawns']} respawns, "
          f"{s['spawn_rejections']} spawn rejections, "
          f"{s['degraded_shards']} degraded shards")
    print(f"parity vs in-process sweep: "
          f"{'OK (bit-identical)' if report.parity_ok else 'FAILED'}")
    return 0 if report.parity_ok else 1


def _cmd_churn(args) -> int:
    import random as _random

    from repro.graph.traversal import dijkstra

    backend = _resolve_backend_or_exit(args, "churn")
    g = _load_or_generate(args, seed=args.seed)
    session = SpannerSession(
        g, k=args.k, f=args.f, backend=backend, seed=args.seed,
        search=args.search,
    )
    start = time.perf_counter()
    session.build("greedy")
    build = time.perf_counter() - start
    ops = generators.sliding_window_churn(
        g, steps=args.steps, window=args.window, seed=args.seed,
        weights=args.weights,
    )
    print(f"built {session.result.spanner.num_edges}-edge spanner in "
          f"{build:.3f}s; streaming {len(ops)} ops "
          f"({args.steps} inserts, window {args.window}, "
          f"{args.weights} weights) in batches of {args.batch}")
    rng = _random.Random(args.seed)
    h = session.result.spanner
    oracle = session.oracle()
    checked = 0
    mismatches = 0
    start = time.perf_counter()
    for lo in range(0, len(ops), max(1, args.batch)):
        batch = ops[lo:lo + max(1, args.batch)]
        try:
            session.apply_updates(
                batch,
                compact_every=args.compact_every,
                max_density=args.max_density or None,
            )
        except UnsupportedSearch as exc:
            raise SystemExit(f"ftspanner churn: error: {exc}")
        nodes = sorted(h.nodes(), key=repr)
        for _ in range(args.probes):
            u, v = rng.sample(nodes, 2)
            got = oracle.distance(u, v)
            want = dijkstra(h, u, target=v).get(v, float("inf"))
            checked += 1
            if got != want:
                mismatches += 1
    elapsed = time.perf_counter() - start
    print(f"applied {len(ops)} ops in {elapsed:.3f}s "
          f"({len(ops) / elapsed:.0f} ops/s including probes)")
    stats = session.churn_stats()
    if stats is not None:
        for side in ("g", "h"):
            s = stats[side]
            print(f"  {side.upper()}: {s['effective']:.0f} effective "
                  f"updates, {s['compactions']:.0f} compactions, "
                  f"overlay depth {s['overlay_depth']:.0f}, "
                  f"density {s['density']:.3f}, "
                  f"{s['live_edges']:.0f} live edges")
    else:
        print(f"  dict backend: graphs mutated in place "
              f"({g.num_edges} graph edges, {h.num_edges} spanner edges)")
    print(f"probe parity vs reference engine: "
          f"{checked - mismatches}/{checked} identical "
          f"({'OK' if mismatches == 0 else 'FAILED'})")
    return 0 if mismatches == 0 else 1


def _cmd_distributed(args) -> int:
    from repro.registry import build_spanner

    spec = get_algorithm(args.algorithm)
    f = args.f
    if f and not spec.fault_tolerant:
        print(f"note: '{spec.name}' is not fault-tolerant; running with "
              f"f=0 instead of f={f}")
        f = 0
    fault_model = args.fault_model or "vertex"
    if args.fault_model is not None and not spec.fault_tolerant:
        print(f"note: '{spec.name}' is not fault-tolerant; ignoring "
              f"--fault-model {args.fault_model}")
    options = {}
    if args.workers is not None:
        if args.workers < 1:
            raise SystemExit(
                "ftspanner distributed: error: --workers must be >= 1"
            )
        options["workers"] = args.workers
    if args.deterministic:
        if "deterministic" not in spec.extra_options:
            raise SystemExit(
                f"ftspanner distributed: error: '{spec.name}' has no "
                f"deterministic mode (derandomizable protocols are "
                f"tagged in: ftspanner algorithms)"
            )
        options["deterministic"] = True
    seed = 0 if args.seed is None else args.seed
    try:
        spec.validate_request(
            f=f,
            fault_model=fault_model if spec.fault_tolerant else None,
            seed=seed if spec.seedable else None,
            options=options,
        )
    except UnsupportedOption as exc:
        raise SystemExit(f"ftspanner distributed: error: {exc}")
    g = _load_or_generate(args, seed=seed)
    start = time.perf_counter()
    try:
        result = build_spanner(
            g,
            args.algorithm,
            k=args.k,
            f=f,
            fault_model=fault_model if spec.fault_tolerant else None,
            seed=seed if spec.seedable else None,
            **options,
        )
    except UnsupportedOption as exc:
        raise SystemExit(f"ftspanner distributed: error: {exc}")
    elapsed = time.perf_counter() - start
    print(result.describe())
    mode = (
        f"{args.workers} partition workers"
        if args.workers is not None else "sequential in-process"
    )
    print(f"simulator: {result.rounds} rounds ({mode})   "
          f"time: {elapsed:.3f}s")
    print(f"input edges: {g.num_edges}   kept: {result.spanner.num_edges} "
          f"({100.0 * result.compression_ratio(g):.1f}%)")
    extra = result.extra or {}
    interesting = (
        "messages", "max_message_words", "num_partitions",
        "instances_run", "edge_congestion", "deterministic",
        "uncovered_direct",
    )
    shown = [
        f"{key}={extra[key]:g}" for key in interesting if key in extra
    ]
    if shown:
        print("measured: " + "  ".join(shown))
    return 0


def _cmd_algorithms(args) -> int:
    width = max(len(name) for name in algorithm_names())
    for spec in iter_algorithms():
        print(f"{spec.name:<{width}}  {spec.guarantee}")
        if args.verbose:
            print(f"{'':<{width}}  {spec.summary}")
        print(f"{'':<{width}}  {spec.capabilities()}")
    print()
    print("search engines (--search; CSR backend execution policy):")
    sw = max(len(name) for name in SEARCH_CAPABILITIES)
    for name, constraint in SEARCH_CAPABILITIES.items():
        print(f"  {name:<{sw}}  {constraint}")
    print(f"  {'':<{sw}}  numpy batch acceleration: "
          f"{'available' if HAVE_NUMPY else 'NOT importable'} on this "
          f"interpreter (REPRO_BATCH_ACCEL=numpy "
          f"{'honored' if HAVE_NUMPY else 'would be a typed error'}; "
          f"'auto' always falls back to stdlib)")
    print()
    print("verification modes (verify --mode):")
    vw = max(len(name) for name in VERIFY_MODES)
    for name, description in VERIFY_MODES.items():
        print(f"  {name:<{vw}}  {description}")
    return 0


def _cmd_info(args) -> int:
    from repro.graph.metrics import DegreeStats, average_clustering, weight_stats

    g = graph_io.load(args.graph)
    components = connected_components(g)
    degrees = DegreeStats.of(g)
    print(f"nodes:      {g.num_nodes}")
    print(f"edges:      {g.num_edges}")
    print(f"components: {len(components)}")
    print(f"degrees:    min {degrees.minimum}  median {degrees.median}  "
          f"mean {degrees.mean:.2f}  max {degrees.maximum}")
    print(f"density:    {g.density():.4f}")
    if g.num_nodes <= 500:
        print(f"clustering: {average_clustering(g):.3f}")
    if len(components) == 1 and g.num_nodes <= 2000:
        print(f"hop diameter: {hop_diameter(g)}")
    unit = g.is_unit_weighted()
    print(f"weighted:   {'no' if unit else 'yes'}")
    if not unit:
        lo, mean, hi = weight_stats(g)
        print(f"weights:    min {lo:.3g}  mean {mean:.3g}  max {hi:.3g}")
    return 0


def _cmd_demo(args) -> int:
    print("Building a 2-fault-tolerant 3-spanner of G(80, 0.15)...")
    g = generators.gnp_random_graph(80, 0.15, seed=42)
    session = SpannerSession(g, k=2, f=2, seed=0)
    result = session.build("greedy")
    print(f"  {result.describe()}")
    print(f"  kept {result.spanner.num_edges} of {g.num_edges} edges "
          f"({100.0 * result.compression_ratio(g):.1f}%)")
    stretch = max_stretch(g, result.spanner)
    print(f"  fault-free stretch: {stretch:.3f} (guarantee: 3)")
    report = session.verify(samples=200)
    kind = "exhaustive" if report.exhaustive else "sampled"
    print(f"  fault-tolerance verification ({kind}): "
          f"{'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also installed as the ``ftspanner`` script)."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "verify": _cmd_verify,
        "oracle": _cmd_oracle,
        "serve": _cmd_serve,
        "churn": _cmd_churn,
        "distributed": _cmd_distributed,
        "algorithms": _cmd_algorithms,
        "info": _cmd_info,
        "demo": _cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
