"""Streaming-update subsystem over the frozen CSR substrate.

See docs/architecture.md ("Dynamic snapshots & compaction"): typed
update ops and the append-only log (:mod:`repro.dynamic.log`), the
copy-on-write delta overlay (:mod:`repro.dynamic.overlay`), and the
compacting :class:`DynamicSnapshot` the session/applications layer
serves churn through (:mod:`repro.dynamic.snapshot`).
"""

from repro.dynamic.log import (
    EdgeDelete,
    EdgeInsert,
    UpdateConflict,
    UpdateLog,
    UpdateOp,
    classify_op,
    coerce_op,
)
from repro.dynamic.overlay import DeltaOverlay
from repro.dynamic.snapshot import CompactionPolicy, DynamicSnapshot

__all__ = [
    "CompactionPolicy",
    "DeltaOverlay",
    "DynamicSnapshot",
    "EdgeDelete",
    "EdgeInsert",
    "UpdateConflict",
    "UpdateLog",
    "UpdateOp",
    "classify_op",
    "coerce_op",
]
