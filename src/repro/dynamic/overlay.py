"""Delta overlay: a mutable, copy-on-write view over a frozen CSR base.

The CSR substrate's traversal kernels read exactly one attribute surface
(``num_nodes`` / ``num_edges`` / ``neighbors`` / ``edge_id_rows`` /
``weight_rows`` / ``weights`` / ``edge_u`` / ``edge_v`` -- the
``CSRLike`` protocol that already admits :class:`~repro.graph.csr.
CSRBuilder`).  :class:`DeltaOverlay` implements that surface over a
frozen :class:`~repro.graph.csr.CSRGraph` with *copy-on-write rows*:

* construction copies only the per-node row **pointer lists** (O(n))
  plus the flat edge arrays (O(m)); the row contents themselves stay
  shared with the base;
* the first mutation touching a node privatizes that node's three rows
  (one ``list()`` copy each); every later mutation on the node is O(1)
  amortized (insert) or O(deg) (delete);
* deleted edge ids are *retired*, never renumbered: ``num_edges`` is
  the edge-id-space size and only shrinks at :meth:`rebase` (compaction)
  -- exactly the grow-only contract the generation-stamped
  :class:`~repro.graph.csr.FaultMask` buffers and the traversal
  workspaces already rely on.

Mutations mirror the dict backend's :class:`~repro.graph.graph.Graph`
semantics positionally, not just set-wise: an insert appends to both
endpoint rows (u's row first), a delete removes in place preserving the
order of the remaining entries, and a delete-then-reinsert lands at the
row end -- so the overlay's row orders equal those of a from-scratch
freeze of the mutated graph at every instant.  That is the property
that makes every query on an overlay **bit-identical** to the same
query on a fresh freeze (`tests/test_dynamic.py` asserts it across
engines, fault models, and weight profiles).

A monotonic :attr:`version` counter stamps every effective mutation;
downstream caches (``ScenarioSweep`` masks, the numpy adjacency cache,
the oracle/router result caches) key on it to detect staleness in O(1).
The engine-selection weight profile is maintained *incrementally* (live
/ unit / integral counters plus a 256-slot integral-weight histogram),
so reading :attr:`profile` after churn is O(1)-ish (a 255-entry scan at
worst) instead of an O(m) re-scan -- and provably equals
:func:`~repro.graph.traversal.weight_profile` over the live weights,
because that function depends only on the weight multiset.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.csr import CSRGraph
from repro.graph.index import NodeIndexer
from repro.graph.traversal import BUCKET_MAX_WEIGHT

__all__ = ["DeltaOverlay"]


class DeltaOverlay:
    """Copy-on-write mutable view of a frozen CSR graph (``CSRLike``).

    Index-level: callers translate node objects through the shared
    :class:`~repro.graph.index.NodeIndexer` (see
    :class:`~repro.dynamic.snapshot.DynamicSnapshot` for the
    object-level wrapper).  Not thread-safe.
    """

    __slots__ = (
        "base", "indexer", "neighbors", "edge_id_rows", "weight_rows",
        "weights", "edge_u", "edge_v", "_eid_of", "_touched", "version",
        "_live", "_unit", "_int", "_int_counts", "inserted", "deleted",
        "_profile_version", "_profile", "_max_weight",
    )

    def __init__(self, base: CSRGraph, version: int = 1) -> None:
        if base.indexer is None:
            raise ValueError(
                "DeltaOverlay requires a CSRGraph with a NodeIndexer "
                "(updates arrive as node objects)"
            )
        self.version = version - 1  # rebase bumps it to ``version``
        self.rebase(base)

    # ------------------------------------------------------------- #
    # Epoch control
    # ------------------------------------------------------------- #

    def rebase(self, base: CSRGraph) -> None:
        """Adopt ``base`` as the new frozen epoch (compaction target).

        Re-points every row at the fresh base (sharing row objects until
        they are next touched), resets the retirement set, and bumps
        :attr:`version` -- in place, so every holder of this overlay
        (sweeps, dual snapshots, flow networks) observes the compaction
        through the version stamp instead of a dangling object.
        """
        self.base = base
        self.indexer: NodeIndexer = base.indexer
        # Outer lists are copied (rows get appended / replaced on
        # privatization); inner row objects stay shared with the base.
        self.neighbors: List[List[int]] = list(base.neighbors)
        self.edge_id_rows: List[List[int]] = list(base.edge_id_rows)
        self.weight_rows: List[List[float]] = list(base.weight_rows)
        self.weights = array("d", base.weights)
        self.edge_u = array("q", base.edge_u)
        self.edge_v = array("q", base.edge_v)
        self._eid_of: Dict[Tuple[int, int], int] = dict(base._eid_of)
        self._touched: Set[int] = set()
        self.inserted = 0
        self.deleted = 0
        self._recount()
        self.version += 1

    # ------------------------------------------------------------- #
    # CSRLike surface
    # ------------------------------------------------------------- #

    @property
    def num_nodes(self) -> int:
        return len(self.neighbors)

    @property
    def num_edges(self) -> int:
        """Edge-id-space size (retired ids included; shrinks only at rebase)."""
        return len(self.weights)

    @property
    def live_edges(self) -> int:
        """Edges actually present (excludes retired ids)."""
        return self._live

    def degree(self, i: int) -> int:
        return len(self.neighbors[i])

    def has_edge(self, i: int, j: int) -> bool:
        key = (i, j) if i < j else (j, i)
        return key in self._eid_of

    def edge_id(self, i: int, j: int) -> int:
        key = (i, j) if i < j else (j, i)
        return self._eid_of[key]

    def owns_edge_id(self, eid: int) -> bool:
        """Whether dense id ``eid`` is live (not retired by a delete).

        Retired ids keep their slots in the flat arrays (masks stamped
        against the old id space must stay in bounds), so consumers
        that enumerate ``range(num_edges)`` -- e.g. the flow layer's
        :class:`~repro.flow.dinitz.DisjointPathNetwork` -- use this to
        skip ids the edge map no longer points at.  A deleted-then-
        re-inserted edge gets a *new* id, so the old one stays retired.
        """
        a, b = self.edge_u[eid], self.edge_v[eid]
        return self._eid_of.get((a, b)) == eid

    # ------------------------------------------------------------- #
    # Engine-selection profile (incremental weight_profile twin)
    # ------------------------------------------------------------- #

    @property
    def profile(self) -> str:
        """``"unit"`` / ``"int"`` / ``"float"`` over the *live* weights."""
        return self._profile_pair()[0]

    @property
    def max_weight(self) -> int:
        """Largest live weight as an int for unit/int profiles, else 0."""
        return self._profile_pair()[1]

    def _profile_pair(self) -> Tuple[str, int]:
        if self._profile_version != self.version:
            if self._unit == self._live:
                pair = ("unit", 1)
            elif self._int == self._live:
                counts = self._int_counts
                max_w = 1
                for w in range(BUCKET_MAX_WEIGHT, 1, -1):
                    if counts[w]:
                        max_w = w
                        break
                pair = ("int", max_w)
            else:
                pair = ("float", 0)
            self._profile, self._max_weight = pair
            self._profile_version = self.version
        return self._profile, self._max_weight

    def _recount(self) -> None:
        self._live = 0
        self._unit = 0
        self._int = 0
        self._int_counts = [0] * (BUCKET_MAX_WEIGHT + 1)
        for w in self.weights:
            self._count(w, 1)
        self._profile_version = -1
        self._profile = "unit"
        self._max_weight = 1

    def _count(self, w: float, delta: int) -> None:
        self._live += delta
        if w == 1.0:
            self._unit += delta
            self._int += delta
            self._int_counts[1] += delta
        elif 1.0 <= w <= BUCKET_MAX_WEIGHT and w == int(w):
            self._int += delta
            self._int_counts[int(w)] += delta

    # ------------------------------------------------------------- #
    # Mutations (index-level; callers validate against the dict graph)
    # ------------------------------------------------------------- #

    def ensure_nodes(self, n: int) -> None:
        """Grow to at least ``n`` nodes (fresh isolated rows)."""
        while len(self.neighbors) < n:
            i = len(self.neighbors)
            self._touched.add(i)
            self.neighbors.append([])
            self.edge_id_rows.append([])
            self.weight_rows.append([])

    def insert(self, i: int, j: int, weight: float = 1.0) -> int:
        """Append the (absent) edge ``{i, j}``; returns its fresh edge id.

        Mirrors ``Graph.add_edge`` row order: appended to ``i``'s row
        first, then ``j``'s.  The caller guarantees the edge is absent
        (re-inserts route through :meth:`update_weight`).
        """
        key = (i, j) if i < j else (j, i)
        eid = len(self.weights)
        self._eid_of[key] = eid
        self.weights.append(weight)
        self.edge_u.append(key[0])
        self.edge_v.append(key[1])
        self._privatize(i)
        self._privatize(j)
        self.neighbors[i].append(j)
        self.edge_id_rows[i].append(eid)
        self.weight_rows[i].append(weight)
        self.neighbors[j].append(i)
        self.edge_id_rows[j].append(eid)
        self.weight_rows[j].append(weight)
        self._count(weight, 1)
        self.inserted += 1
        self.version += 1
        return eid

    def delete(self, i: int, j: int) -> int:
        """Remove the live edge ``{i, j}`` in place; returns the retired id.

        The remaining row entries keep their relative order (dict
        ``del`` semantics); the edge id is retired -- popped from the
        lookup map but never reused, so masks stamped against the old
        id space stay within bounds.
        """
        key = (i, j) if i < j else (j, i)
        eid = self._eid_of.pop(key)
        for x in (i, j):
            self._privatize(x)
            pos = self.edge_id_rows[x].index(eid)
            del self.neighbors[x][pos]
            del self.edge_id_rows[x][pos]
            del self.weight_rows[x][pos]
        self._count(self.weights[eid], -1)
        self.deleted += 1
        self.version += 1
        return eid

    def update_weight(self, i: int, j: int, weight: float) -> int:
        """Overwrite the live edge ``{i, j}``'s weight in place."""
        key = (i, j) if i < j else (j, i)
        eid = self._eid_of[key]
        old = self.weights[eid]
        self.weights[eid] = weight
        for x in (i, j):
            self._privatize(x)
            pos = self.edge_id_rows[x].index(eid)
            self.weight_rows[x][pos] = weight
        self._count(old, -1)
        self._count(weight, 1)
        self.version += 1
        return eid

    # ------------------------------------------------------------- #

    def _privatize(self, i: int) -> None:
        """Give node ``i`` private row copies before its first mutation."""
        touched = self._touched
        if i not in touched:
            touched.add(i)
            self.neighbors[i] = list(self.neighbors[i])
            self.edge_id_rows[i] = list(self.edge_id_rows[i])
            self.weight_rows[i] = list(self.weight_rows[i])

    def density(self) -> float:
        """Overlay churn relative to the base epoch's size.

        ``(inserted + deleted) / max(1, base edges)`` -- the auto
        compaction trigger's measure of how far the overlay has drifted
        from its frozen base.
        """
        return (self.inserted + self.deleted) / max(1, self.base.num_edges)

    def __repr__(self) -> str:
        return (
            f"DeltaOverlay(n={self.num_nodes}, live={self._live}, "
            f"+{self.inserted}/-{self.deleted}, v{self.version})"
        )
