"""Dynamic snapshots: frozen-CSR query performance under streaming churn.

:class:`DynamicSnapshot` is the object-level subsystem tying the pieces
together: the source dict :class:`~repro.graph.graph.Graph` (which
stays the semantic source of truth and is mutated op by op), the
copy-on-write :class:`~repro.dynamic.overlay.DeltaOverlay` mirroring
those mutations over the frozen CSR base, the append-only
:class:`~repro.dynamic.log.UpdateLog`, and a :class:`CompactionPolicy`
deciding when the overlay folds into a fresh freeze.

Queries run through the standard engine stack unchanged: the snapshot
exposes a :class:`~repro.graph.snapshot.CSRSnapshot`-compatible *view*
(:attr:`DynamicSnapshot.view`) whose ``csr`` is the overlay and whose
weight profile re-resolves per query from the overlay's live weights,
so :class:`~repro.graph.snapshot.ScenarioSweep`, the oracle, the
router, and the availability sampler all accept it where they accept a
frozen snapshot -- and their generation-stamped masks / workspaces
follow churn through the overlay's monotonic ``version`` counter.

The correctness bar (enforced by ``tests/test_dynamic.py`` and per run
by ``benchmarks/bench_dynamic.py``): every query against a
:class:`DynamicSnapshot` is **bit-identical** to the same query against
a from-scratch freeze of the current graph state, across engines
(heap/bucket/bidir/batch), fault models, and weight profiles.

Compaction (:meth:`DynamicSnapshot.compact`) refreezes the mutated
graph into a new CSR base and rebases the overlay *in place*, so every
long-lived holder of the overlay object stays valid; the policy fires
automatically after ``compact_every`` effective updates and/or when the
overlay's churn density crosses ``max_density`` (the auto mode).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.dynamic.log import UpdateLog, UpdateOp, classify_op, coerce_op
from repro.dynamic.overlay import DeltaOverlay
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.graph.index import NodeIndexer
from repro.graph.snapshot import CSRSnapshot, ScenarioSweep, resolve_search

__all__ = ["CompactionPolicy", "DynamicSnapshot"]


class _OverlayView(CSRSnapshot):
    """A :class:`CSRSnapshot`-shaped window onto a live overlay.

    Subclasses the frozen snapshot so every ``isinstance`` gate and
    identity check in the sweep/oracle/router layers passes, but
    deliberately skips the parent constructor (nothing is frozen here
    and :func:`~repro.graph.snapshot.csr_freeze_count` must not move):
    ``csr`` is the overlay itself, and the engine-selection attributes
    (``profile`` / ``max_weight`` / ``unit``) re-resolve from the
    overlay's live weight counters instead of being stamped once.
    """

    __slots__ = ()

    def __init__(self, g: Graph, overlay: DeltaOverlay) -> None:
        self.g = g
        self.csr = overlay
        self.indexer = overlay.indexer

    @property
    def profile(self) -> str:
        return self.csr.profile

    @property
    def max_weight(self) -> int:
        return self.csr.max_weight

    @property
    def unit(self) -> bool:
        return self.csr.profile == "unit"


class CompactionPolicy:
    """When should a delta overlay fold into a full refreeze?

    Two triggers, either of which fires (checked after every effective
    update):

    * ``compact_every=K`` -- a fixed update budget: compact once K
      effective updates have accumulated since the last refreeze.
      ``None`` (the default) disables the count trigger.
    * ``max_density=r`` -- the auto mode: compact when overlay churn
      (inserts + deletes since the last refreeze) exceeds fraction ``r``
      of the base epoch's edge count, so refreeze cost is amortized
      against a proportional amount of drift.  Defaults to
      :data:`DEFAULT_MAX_DENSITY`; ``None`` disables it.

    With both triggers ``None`` the overlay never auto-compacts
    (callers may still :meth:`DynamicSnapshot.compact` manually).
    """

    #: Auto-mode churn fraction: refreeze once the overlay has drifted
    #: by a quarter of the base epoch's edges.  Refreeze is O(n + m) and
    #: overlay queries pay a per-touched-row cost, so a constant
    #: fraction keeps the amortized update cost O(1) freezes per
    #: O(m) updates while bounding how far row storage can drift.
    DEFAULT_MAX_DENSITY = 0.25

    __slots__ = ("compact_every", "max_density")

    def __init__(
        self,
        compact_every: Optional[int] = None,
        max_density: Optional[float] = DEFAULT_MAX_DENSITY,
    ) -> None:
        if compact_every is not None and compact_every < 1:
            raise ValueError(
                f"compact_every must be >= 1, got {compact_every}"
            )
        if max_density is not None and max_density <= 0:
            raise ValueError(
                f"max_density must be > 0, got {max_density}"
            )
        self.compact_every = compact_every
        self.max_density = max_density

    def due(self, depth: int, overlay: DeltaOverlay) -> bool:
        """Whether the overlay should compact now.

        ``depth`` is the count of effective updates since the last
        refreeze (tracked by the owning :class:`DynamicSnapshot`).
        """
        if self.compact_every is not None and depth >= self.compact_every:
            return True
        if (
            self.max_density is not None
            and overlay.density() > self.max_density
        ):
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"CompactionPolicy(compact_every={self.compact_every}, "
            f"max_density={self.max_density})"
        )


class DynamicSnapshot:
    """Streaming updates over a frozen CSR base, served without refreezes.

    Parameters
    ----------
    g:
        The live dict graph.  It is mutated by :meth:`apply` (dict
        semantics are the reference; the overlay mirrors them), so pass
        the graph the rest of the workflow holds, not a copy.
    base:
        An existing freeze of ``g`` to adopt as the first epoch -- a
        :class:`~repro.graph.snapshot.CSRSnapshot` or a raw
        :class:`~repro.graph.csr.CSRGraph` -- so a session that already
        froze its graph pays no second freeze.  ``None`` freezes one.
    indexer:
        Node numbering to share when ``base`` is ``None`` (e.g. a
        session's G/H shared index space).
    compact_every / max_density:
        Shorthand for ``policy=CompactionPolicy(...)``.

    Examples
    --------
    >>> from repro.graph import generators
    >>> g = generators.gnp_random_graph(30, 0.2, seed=7)
    >>> dyn = DynamicSnapshot(g, compact_every=50)
    >>> dyn.apply([("insert", 0, 9, 1.0), ("delete", 0, 9)])
    2
    >>> sweep = dyn.sweep()
    >>> d = sweep.distances_from(0)  # identical to a fresh freeze of g
    """

    def __init__(
        self,
        g: Graph,
        *,
        base: Optional[Union[CSRSnapshot, CSRGraph]] = None,
        indexer: Optional[NodeIndexer] = None,
        compact_every: Optional[int] = None,
        max_density: Optional[float] = CompactionPolicy.DEFAULT_MAX_DENSITY,
        policy: Optional[CompactionPolicy] = None,
    ) -> None:
        self.g = g
        if policy is None:
            policy = CompactionPolicy(compact_every, max_density)
        self.policy = policy
        if isinstance(base, CSRSnapshot):
            if base.g is not g:
                raise ValueError("base snapshot does not freeze g")
            base = base.csr
        if base is None:
            base = CSRGraph.from_graph(g, indexer=indexer)
        elif base.indexer is None:
            raise ValueError("base CSRGraph carries no NodeIndexer")
        elif base.num_edges != g.num_edges or base.num_nodes < g.num_nodes:
            raise ValueError(
                "base freeze is stale: it does not match g's current "
                "node/edge counts"
            )
        self.indexer = base.indexer
        self.overlay = DeltaOverlay(base)
        self.view: CSRSnapshot = _OverlayView(g, self.overlay)
        self.log = UpdateLog()
        self.compactions = 0
        self._depth = 0
        self._sweeps: Dict[str, ScenarioSweep] = {}

    # ------------------------------------------------------------- #
    # Updates
    # ------------------------------------------------------------- #

    def apply(self, ops: Iterable) -> int:
        """Apply a batch of update ops; returns the effective count.

        Each op (an :class:`~repro.dynamic.log.EdgeInsert` /
        :class:`~repro.dynamic.log.EdgeDelete` or its tuple form) is
        classified against the *current* state, applied to the dict
        graph and the overlay in lockstep, and logged; idempotent
        re-inserts are recorded as no-ops.  A conflicting op raises
        :class:`~repro.dynamic.log.UpdateConflict` before mutating, so
        the prefix up to the bad op is applied and the graph is never
        half-mutated within one op.  Compaction triggers are checked
        after every effective update (so ``compact_every=K`` fires
        exactly at the K-th, even mid-batch).
        """
        applied = 0
        for raw in ops:
            op = coerce_op(raw)
            fate = classify_op(self.g, op)
            self._mutate(op, fate)
            self.log.append(op, fate)
            if fate != "noop":
                applied += 1
                self._depth += 1
                if self.policy.due(self._depth, self.overlay):
                    self.compact()
        return applied

    def _mutate(self, op: UpdateOp, fate: str) -> None:
        if fate == "noop":
            return
        g, indexer, overlay = self.g, self.indexer, self.overlay
        if fate == "insert":
            # Mirror Graph.add_edge's node-creation order (u then v) so
            # the shared indexer keeps assigning indices in the exact
            # order a from-scratch freeze of the mutated graph would.
            g.add_edge(op.u, op.v, op.weight)
            indexer.add(op.u)
            indexer.add(op.v)
            overlay.ensure_nodes(len(indexer))
            overlay.insert(indexer.index(op.u), indexer.index(op.v), op.weight)
        elif fate == "update":
            g.add_edge(op.u, op.v, op.weight)
            overlay.update_weight(
                indexer.index(op.u), indexer.index(op.v), op.weight
            )
        else:  # delete
            g.remove_edge(op.u, op.v)
            overlay.delete(indexer.index(op.u), indexer.index(op.v))

    def compact(self) -> None:
        """Fold the overlay into a fresh freeze of the current graph.

        O(n + m): one :meth:`CSRGraph.from_graph` pass over the mutated
        graph becomes the new base epoch, and the overlay rebases onto
        it in place (holders keep their references; the version stamp
        tells their caches to refresh).
        """
        base = CSRGraph.from_graph(self.g, indexer=self.indexer)
        self.overlay.rebase(base)
        self.compactions += 1
        self._depth = 0

    def refreeze(self) -> CSRSnapshot:
        """Compact if needed and return a *flat* snapshot of the base.

        The overlay view serves every in-process query path, but
        consumers that need the contiguous CSR arrays -- e.g. the
        serving layer's ``pack_snapshot_into``, which copies ``indptr``
        / ``indices`` / ``nbr_edge_ids`` into shared memory -- cannot
        read an overlay.  This folds any pending churn into the base
        epoch (a real compaction, counted as such) and wraps the base
        without a second freeze.
        """
        if self._depth:
            self.compact()
        return CSRSnapshot.from_csr(self.overlay.base)

    # ------------------------------------------------------------- #
    # Queries
    # ------------------------------------------------------------- #

    def snapshot(self) -> CSRSnapshot:
        """The live snapshot view (stable object across updates)."""
        return self.view

    def sweep(self, search: Optional[str] = None) -> ScenarioSweep:
        """A churn-following :class:`ScenarioSweep` over the view.

        One sweep is cached per resolved ``search`` mode; its masks,
        workspaces, and engine validation refresh automatically when
        the overlay's version moves.
        """
        s = resolve_search(search)
        sw = self._sweeps.get(s)
        if sw is None:
            sw = self._sweeps[s] = ScenarioSweep(self.view, search=s)
        return sw

    # ------------------------------------------------------------- #
    # Introspection
    # ------------------------------------------------------------- #

    @property
    def version(self) -> int:
        """Monotonic mutation stamp (bumps per effective op and rebase)."""
        return self.overlay.version

    @property
    def overlay_depth(self) -> int:
        """Effective updates accumulated since the last compaction."""
        return self._depth

    def stats(self) -> Dict[str, float]:
        """Counters for benchmarks and the churn CLI."""
        return {
            "ops": len(self.log),
            "effective": self.log.effective,
            "overlay_depth": self._depth,
            "compactions": self.compactions,
            "version": self.overlay.version,
            "density": self.overlay.density(),
            "live_edges": self.overlay.live_edges,
        }

    def __repr__(self) -> str:
        return (
            f"DynamicSnapshot(n={self.overlay.num_nodes}, "
            f"live={self.overlay.live_edges}, depth={self._depth}, "
            f"compactions={self.compactions})"
        )
