"""Typed streaming-update operations and the append-only update log.

A dynamic snapshot consumes a stream of *ops* -- :class:`EdgeInsert` and
:class:`EdgeDelete` records -- and must give every op exactly one of
three fates before the graph mutates:

* **apply** -- the op changes graph state (a new edge, a weight change,
  a removal of a live edge);
* **no-op** -- the op is idempotent against the current state (an insert
  of an edge that already exists with the same weight) and is recorded
  but changes nothing;
* **conflict** -- the op can never be valid (self-loop, negative
  weight) or contradicts the current state (deleting an absent edge),
  raised as a typed :class:`UpdateConflict` *before* any mutation, so a
  failed batch never leaves the graph half-applied op.

:func:`classify_op` is that decision procedure, shared by
:class:`~repro.dynamic.snapshot.DynamicSnapshot` and the property tests;
:class:`UpdateLog` is the append-only record of every accepted op (both
applied and no-op), which makes the overlay's state reproducible:
replaying the log over the base graph reconstructs the current graph.

Ops may also be written as plain tuples -- ``("insert", u, v[, w])`` /
``("delete", u, v)`` -- which :func:`coerce_op` normalizes; the workload
generators in :mod:`repro.graph.generators` emit that tuple form so they
stay import-independent of this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

from repro.graph.graph import Graph, Node

__all__ = [
    "EdgeInsert",
    "EdgeDelete",
    "UpdateConflict",
    "UpdateLog",
    "UpdateOp",
    "classify_op",
    "coerce_op",
]


class UpdateConflict(ValueError):
    """A streaming update contradicts the current graph state.

    Raised by :func:`classify_op` (and therefore by
    :meth:`~repro.dynamic.snapshot.DynamicSnapshot.apply` and
    :meth:`~repro.session.SpannerSession.apply_updates`) for self-loop
    inserts, negative weights, and deletions of absent edges -- always
    *before* the offending op mutates anything.
    """


@dataclass(frozen=True)
class EdgeInsert:
    """Insert the undirected edge ``{u, v}`` with ``weight``.

    Inserting an edge that already exists with the *same* weight is an
    idempotent no-op; with a different weight it is an in-place weight
    update (mirroring ``Graph.add_edge`` overwrite semantics).
    """

    u: Node
    v: Node
    weight: float = 1.0


@dataclass(frozen=True)
class EdgeDelete:
    """Delete the undirected edge ``{u, v}``.

    Deleting an edge that does not exist is a conflict, not a no-op:
    a deletion stream that drifts from the graph state is a caller bug
    the log should surface, not absorb.
    """

    u: Node
    v: Node


UpdateOp = Union[EdgeInsert, EdgeDelete]

#: Verbs accepted by the tuple op form.
_TUPLE_VERBS = ("insert", "delete")


def coerce_op(op: Union[UpdateOp, Sequence]) -> UpdateOp:
    """Normalize an op or a ``("insert"/"delete", u, v[, w])`` tuple."""
    if isinstance(op, (EdgeInsert, EdgeDelete)):
        return op
    if isinstance(op, (tuple, list)) and op and op[0] in _TUPLE_VERBS:
        verb = op[0]
        if verb == "insert" and len(op) in (3, 4):
            weight = float(op[3]) if len(op) == 4 else 1.0
            return EdgeInsert(op[1], op[2], weight)
        if verb == "delete" and len(op) == 3:
            return EdgeDelete(op[1], op[2])
    raise TypeError(
        f"not an update op: {op!r} (expected EdgeInsert/EdgeDelete or "
        f"('insert', u, v[, w]) / ('delete', u, v))"
    )


def classify_op(g: Graph, op: UpdateOp) -> str:
    """Decide an op's fate against the current state of ``g``.

    Returns ``"insert"`` (new edge), ``"update"`` (weight change on a
    live edge), ``"delete"``, or ``"noop"`` (idempotent re-insert);
    raises :class:`UpdateConflict` for invalid ops.  Never mutates.
    """
    if isinstance(op, EdgeInsert):
        if op.u == op.v:
            raise UpdateConflict(
                f"insert of self-loop on {op.u!r} is not allowed"
            )
        if op.weight < 0:
            raise UpdateConflict(
                f"insert of {op.u!r}-{op.v!r} carries negative weight "
                f"{op.weight!r}"
            )
        if g.has_edge(op.u, op.v):
            if g.weight(op.u, op.v) == op.weight:
                return "noop"
            return "update"
        return "insert"
    if isinstance(op, EdgeDelete):
        if not g.has_edge(op.u, op.v):
            raise UpdateConflict(
                f"delete of absent edge {op.u!r}-{op.v!r}"
            )
        return "delete"
    raise TypeError(f"not an update op: {op!r}")


class UpdateLog:
    """Append-only record of accepted streaming updates.

    Every op that passed :func:`classify_op` is appended exactly once,
    tagged with its fate, so ``len(log)`` counts accepted ops and
    :attr:`effective` counts the subset that changed state.  Replaying
    ``ops()`` over the pre-churn graph reproduces the current one, which
    is what makes a delta overlay auditable.
    """

    __slots__ = ("_ops", "_fates", "effective")

    def __init__(self) -> None:
        self._ops: List[UpdateOp] = []
        self._fates: List[str] = []
        self.effective = 0

    def append(self, op: UpdateOp, fate: str) -> None:
        """Record one accepted op and its fate."""
        self._ops.append(op)
        self._fates.append(fate)
        if fate != "noop":
            self.effective += 1

    def ops(self) -> Tuple[UpdateOp, ...]:
        """Every accepted op, in application order."""
        return tuple(self._ops)

    def fates(self) -> Tuple[str, ...]:
        """The recorded fate of each op, aligned with :meth:`ops`."""
        return tuple(self._fates)

    def replay(self, g: Graph) -> Graph:
        """Apply the logged ops to ``g`` in order (dict semantics).

        Mutates and returns ``g``; no-ops re-classify as no-ops against
        the replayed state, so replay is exact, not merely equivalent.
        """
        for op in self._ops:
            if isinstance(op, EdgeInsert):
                g.add_edge(op.u, op.v, op.weight)
            else:
                g.remove_edge(op.u, op.v)
        return g

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterable[UpdateOp]:
        return iter(self._ops)

    def __repr__(self) -> str:
        return (
            f"UpdateLog(ops={len(self._ops)}, effective={self.effective})"
        )
