"""Workload generators for every experiment in EXPERIMENTS.md.

All generators are deterministic given an explicit ``seed`` (or
``random.Random`` instance), so every number in EXPERIMENTS.md can be
regenerated bit-for-bit.

The sweeps in the paper's theorems are over Erdos-Renyi graphs (the default
"hard" workload for spanner size experiments -- dense random graphs have no
exploitable structure), plus structured families (grids, hypercubes,
geometric graphs) that exercise qualitatively different fault behavior:
grids have small separators so few faults disconnect them, hypercubes are
highly fault-tolerant, geometric graphs model wireless deployments (the
original motivation for fault-tolerant spanners in [LNS98]).
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.graph.graph import Graph, Node

RngLike = Union[int, random.Random, None]


def _rng(seed: RngLike) -> random.Random:
    """Coerce an int seed / Random / None into a Random instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# --------------------------------------------------------------------- #
# Deterministic families
# --------------------------------------------------------------------- #


def complete_graph(n: int) -> Graph:
    """K_n: the densest workload; spanner compression is most visible here."""
    g = Graph()
    g.add_nodes(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            g.add_edge(u, v)
    return g


def path_graph(n: int) -> Graph:
    """P_n: a path 0-1-...-(n-1).  The spanner must keep every edge."""
    g = Graph()
    g.add_nodes(range(n))
    for u in range(n - 1):
        g.add_edge(u, u + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """C_n: a single cycle.  Useful for exact girth / blocking-set checks."""
    if n < 3:
        raise ValueError(f"cycle needs at least 3 nodes, got {n}")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n: int) -> Graph:
    """K_{1,n-1}: node 0 is the hub.  One vertex fault shatters it."""
    g = Graph()
    g.add_nodes(range(n))
    for leaf in range(1, n):
        g.add_edge(0, leaf)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """A rows x cols grid with 4-neighbor connectivity.

    Nodes are ``(r, c)`` tuples.  Grids have small vertex cuts, so even
    modest fault sets change distances dramatically -- a stress test for
    the fault-tolerance guarantee.
    """
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            g.add_node((r, c))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
    return g


def hypercube_graph(dim: int) -> Graph:
    """The dim-dimensional hypercube Q_dim on 2^dim nodes.

    Hypercubes are the classical highly-fault-tolerant topology
    (cf. [PU89], the paper that introduced spanners for synchronizers).
    """
    g = Graph()
    n = 1 << dim
    g.add_nodes(range(n))
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if u < v:
                g.add_edge(u, v)
    return g


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """K_{a,b} with left nodes ``('L', i)`` and right nodes ``('R', j)``."""
    g = Graph()
    for i in range(a):
        g.add_node(("L", i))
    for j in range(b):
        g.add_node(("R", j))
    for i in range(a):
        for j in range(b):
            g.add_edge(("L", i), ("R", j))
    return g


def layered_path_gadget(layers: int, width: int) -> Graph:
    """A series of complete bipartite layers: s - W - W - ... - W - t.

    Nodes ``'s'`` and ``'t'`` are joined through ``layers`` layers of
    ``width`` parallel vertices each; consecutive layers are completely
    connected.  Every s-t path has exactly ``layers + 1`` hops and every
    length-(layers+1) cut must take a full layer (``width`` vertices), so
    the instance has a known exact Length-Bounded Cut value -- ground truth
    for experiment E1.
    """
    g = Graph()
    g.add_node("s")
    g.add_node("t")
    prev: List[Node] = ["s"]
    for layer in range(layers):
        cur: List[Node] = [("mid", layer, i) for i in range(width)]
        for node in cur:
            g.add_node(node)
        for p in prev:
            for c in cur:
                g.add_edge(p, c)
        prev = cur
    for p in prev:
        g.add_edge(p, "t")
    return g


# --------------------------------------------------------------------- #
# Random families
# --------------------------------------------------------------------- #


def gnp_random_graph(n: int, p: float, seed: RngLike = None) -> Graph:
    """Erdos-Renyi G(n, p).

    Uses the skip-ahead geometric sampling trick so generation costs
    O(n + m) rather than O(n^2) for sparse p.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = _rng(seed)
    g = Graph()
    g.add_nodes(range(n))
    if p == 0.0:
        return g
    if p == 1.0:
        return complete_graph(n)
    # Iterate over the C(n,2) potential edges with geometric skips.
    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        r = rng.random()
        w += 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            g.add_edge(v, w)
    return g


def gnm_random_graph(n: int, m: int, seed: RngLike = None) -> Graph:
    """Uniform random graph with exactly ``n`` nodes and ``m`` edges."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"cannot place {m} edges on {n} nodes (max {max_edges})")
    rng = _rng(seed)
    g = Graph()
    g.add_nodes(range(n))
    while g.num_edges < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def random_geometric_graph(
    n: int, radius: float, seed: RngLike = None, weighted: bool = True
) -> Graph:
    """Random geometric graph on the unit square.

    Points are uniform in [0,1]^2; nodes within ``radius`` are joined, with
    edge weight equal to Euclidean distance when ``weighted``.  This is the
    model of the geometric fault-tolerant spanner literature ([LNS98],
    [NS07]) that motivated the problem.
    """
    rng = _rng(seed)
    points = [(rng.random(), rng.random()) for _ in range(n)]
    g = Graph()
    g.add_nodes(range(n))
    r2 = radius * radius
    for u in range(n):
        xu, yu = points[u]
        for v in range(u + 1, n):
            xv, yv = points[v]
            d2 = (xu - xv) ** 2 + (yu - yv) ** 2
            if d2 <= r2:
                g.add_edge(u, v, weight=math.sqrt(d2) if weighted else 1.0)
    return g


def barabasi_albert_graph(n: int, attach: int, seed: RngLike = None) -> Graph:
    """Preferential-attachment (power-law) graph.

    Starts from a clique on ``attach + 1`` nodes; each new node attaches to
    ``attach`` existing nodes chosen proportionally to degree.  Models
    internet-like topologies where hub faults are the dominant risk.
    """
    if attach < 1 or attach >= n:
        raise ValueError(f"need 1 <= attach < n, got attach={attach}, n={n}")
    rng = _rng(seed)
    g = complete_graph(attach + 1)
    # Repeated-endpoint list: sampling uniformly from it is sampling
    # proportionally to degree.
    endpoints: List[int] = []
    for u, v in g.edges():
        endpoints.extend((u, v))
    for new in range(attach + 1, n):
        targets: set = set()
        while len(targets) < attach:
            targets.add(rng.choice(endpoints))
        for t in targets:
            g.add_edge(new, t)
            endpoints.extend((new, t))
    return g


def random_regular_graphish(n: int, degree: int, seed: RngLike = None) -> Graph:
    """An (approximately) regular random graph via the pairing model.

    Exact uniform regular graph generation needs rejection; for workload
    purposes we pair half-edges and silently drop self-loops/multi-edges,
    yielding degrees within O(1) of ``degree`` -- adequate for benchmarks.
    """
    if n * degree % 2 != 0:
        raise ValueError("n * degree must be even")
    rng = _rng(seed)
    stubs = [u for u in range(n) for _ in range(degree)]
    rng.shuffle(stubs)
    g = Graph()
    g.add_nodes(range(n))
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def clustered_graph(
    clusters: int,
    cluster_size: int,
    p_intra: float,
    p_inter: float,
    seed: RngLike = None,
) -> Graph:
    """A planted-partition graph: dense clusters, sparse cross edges.

    This is the workload where the LOCAL decomposition-based algorithm
    shines (clusters align with the partition), and where fault tolerance
    matters most on the sparse inter-cluster bridges.
    """
    rng = _rng(seed)
    n = clusters * cluster_size
    g = Graph()
    g.add_nodes(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            same = (u // cluster_size) == (v // cluster_size)
            p = p_intra if same else p_inter
            if rng.random() < p:
                g.add_edge(u, v)
    return g


# --------------------------------------------------------------------- #
# Weight assignment
# --------------------------------------------------------------------- #


def with_random_weights(
    g: Graph,
    low: float = 1.0,
    high: float = 10.0,
    seed: RngLike = None,
    integral: bool = False,
) -> Graph:
    """A copy of ``g`` with i.i.d. uniform edge weights in [low, high]."""
    if low < 0 or high < low:
        raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
    rng = _rng(seed)
    out = Graph()
    out.add_nodes(g.nodes())
    for u, v in g.edges():
        w = rng.uniform(low, high)
        if integral:
            w = float(round(w))
        out.add_edge(u, v, weight=w)
    return out


def weighted_gnp(
    n: int,
    p: float,
    low: float = 1.0,
    high: float = 10.0,
    seed: RngLike = None,
) -> Graph:
    """G(n, p) with uniform random weights -- the standard weighted workload."""
    rng = _rng(seed)
    return with_random_weights(
        gnp_random_graph(n, p, seed=rng), low=low, high=high, seed=rng
    )


def ensure_connected(g: Graph, seed: RngLike = None) -> Graph:
    """A copy of ``g`` with random edges added until connected.

    Experiments that measure stretch need connected inputs; this patches
    random graphs whose G(n,p) draw came out disconnected without changing
    their character (it adds at most #components - 1 edges).
    """
    from repro.graph.traversal import connected_components

    rng = _rng(seed)
    out = g.copy()
    components = connected_components(out)
    while len(components) > 1:
        a = rng.choice(sorted(components[0]))
        b = rng.choice(sorted(components[1]))
        out.add_edge(a, b)
        components = connected_components(out)
    return out


# --------------------------------------------------------------------- #
# Temporal workloads (streaming-update experiments)
# --------------------------------------------------------------------- #


def degree_constrained_process(
    n: int,
    d: int = 2,
    steps: Optional[int] = None,
    seed: RngLike = None,
) -> Graph:
    """The degree-constrained random graph process, run to saturation.

    Edges arrive one at a time: each step joins a uniformly random pair
    of distinct, non-adjacent vertices that *both* still have degree
    below ``d`` (the random d-process studied in the dynamic
    random-graph literature, e.g. arXiv:2601.10249's analysis of the
    critical window for ``d >= 3``).  The process stops when no legal
    pair remains -- the terminal graphs are near-d-regular -- or after
    ``steps`` edges if given, which exposes the pre-critical prefix.

    Legal pairs are drawn by rejection sampling (two uniform vertex
    picks per attempt); once the eligible set gets too thin to hit, the
    remaining legal pairs are enumerated in sorted order and drawn
    uniformly, so termination is exact and the stream is a pure
    function of ``(n, d, steps, seed)``.
    """
    if n < 0:
        raise ValueError(f"need n >= 0, got {n}")
    if d < 1:
        raise ValueError(f"need d >= 1, got {d}")
    rng = _rng(seed)
    g = Graph()
    g.add_nodes(range(n))
    budget = math.inf if steps is None else steps
    added = 0
    while added < budget:
        placed = False
        for _ in range(50):  # rejection phase
            u = rng.randrange(n)
            v = rng.randrange(n)
            if (
                u != v
                and g.degree(u) < d
                and g.degree(v) < d
                and not g.has_edge(u, v)
            ):
                g.add_edge(u, v)
                placed = True
                break
        if not placed:
            # Thin regime: enumerate what is left (eligible vertices
            # only, so this is cheap exactly when rejection is slow).
            eligible = [x for x in range(n) if g.degree(x) < d]
            legal = [
                (u, v)
                for i, u in enumerate(eligible)
                for v in eligible[i + 1:]
                if not g.has_edge(u, v)
            ]
            if not legal:
                break
            u, v = legal[rng.randrange(len(legal))]
            g.add_edge(u, v)
        added += 1
    return g


def sliding_window_churn(
    g: Graph,
    steps: int,
    window: int,
    seed: RngLike = None,
    weights: str = "unit",
) -> List[Tuple]:
    """A reproducible edge-churn op stream with a sliding lifetime window.

    Each of the ``steps`` ticks inserts one uniformly random absent
    pair of ``g``'s nodes; once more than ``window`` of the stream's
    own inserts are alive, the oldest is deleted first (FIFO), so at
    most ``window`` churn edges exist at any time.  Only edges this
    stream inserted are ever deleted -- the base graph always survives
    -- and ``g`` itself is **not** mutated: the returned list holds the
    tuple ops (``("insert", u, v, w)`` / ``("delete", u, v)``) consumed
    by :meth:`repro.dynamic.snapshot.DynamicSnapshot.apply` and
    :meth:`repro.session.SpannerSession.apply_updates`.

    ``weights`` sets the inserted profile: ``"unit"`` (1.0),
    ``"int"`` (uniform integral 1..10), or ``"float"`` (uniform in
    [1, 10]) -- letting churn tests drive every engine family.
    """
    if steps < 0:
        raise ValueError(f"need steps >= 0, got {steps}")
    if window < 1:
        raise ValueError(f"need window >= 1, got {window}")
    if weights not in ("unit", "int", "float"):
        raise ValueError(f"unknown weights profile {weights!r}")
    rng = _rng(seed)
    nodes = sorted(g.nodes(), key=repr)
    if len(nodes) < 2:
        raise ValueError("need at least 2 nodes to churn")
    present = {
        (u, v) if repr(u) <= repr(v) else (v, u) for u, v in g.edges()
    }
    live: List[Tuple] = []  # FIFO of this stream's own inserts
    ops: List[Tuple] = []
    for _ in range(steps):
        pair = None
        for _ in range(200):
            u, v = rng.sample(nodes, 2)
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            if key not in present:
                pair = (u, v)
                present.add(key)
                break
        if pair is None:
            break  # graph (plus window) is essentially complete
        if weights == "unit":
            w = 1.0
        elif weights == "int":
            w = float(rng.randint(1, 10))
        else:
            w = rng.uniform(1.0, 10.0)
        ops.append(("insert", pair[0], pair[1], w))
        live.append(pair)
        if len(live) > window:
            ou, ov = live.pop(0)
            okey = (ou, ov) if repr(ou) <= repr(ov) else (ov, ou)
            present.discard(okey)
            ops.append(("delete", ou, ov))
    return ops
