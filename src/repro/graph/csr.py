"""Flat-array (CSR) graph backend for the BFS/LBC hot path.

The dict-of-dict :class:`~repro.graph.graph.Graph` is convenient and keeps
``G \\ F`` trivial, but the paper's Algorithm 2 spends its whole life in
hop-bounded BFS, where per-neighbor dict lookups and lazy-view generator
frames dominate.  This module provides the standard remedy: an
integer-indexed graph whose adjacency lives in contiguous ``array``
buffers (classic compressed-sparse-row layout), with O(1)-clear fault
*masks* instead of per-call frozenset views.  Everything is stdlib-only
(``array`` / ``bytearray``) so there is no numpy dependency.

Three pieces:

* :class:`CSRGraph` -- a frozen snapshot built once from a ``Graph``
  (``indptr`` / ``indices`` / per-edge ``weights``), with per-node list
  rows for fast neighbor iteration.
* :class:`CSRBuilder` -- an appendable variant for the greedy loop, where
  the spanner ``H`` grows one edge at a time: per-node adjacency rows
  with O(1) amortized appends, and :meth:`CSRBuilder.repack` to
  consolidate into a frozen :class:`CSRGraph` when mutation stops.
* :class:`FaultMask` -- a generation-stamped ``bytearray`` membership
  mask over integer ids (node indices or edge ids).  ``clear()`` is O(1)
  (bump the generation), so the LBC loop reuses one mask across all of a
  run's fault sets without allocating.

Edges carry dense integer ids assigned at insertion (or first-seen order
for ``from_graph``); ``edge_u[eid]`` / ``edge_v[eid]`` give the canonical
(low-index, high-index) endpoints and ``weights[eid]`` the weight.

Neighbor rows preserve the insertion order of the source ``Graph``, so a
BFS over these arrays visits nodes in exactly the order the dict backend
does -- the property that makes ``backend="csr"`` and ``backend="dict"``
produce identical spanners, not merely equally good ones.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.graph.graph import Edge, Graph, Node
from repro.graph.index import NodeIndexer

_ITEMSIZE = array("q").itemsize


def _zeros_q(count: int) -> array:
    """A zero-filled ``array('q')`` of the given length."""
    return array("q", bytes(_ITEMSIZE * count))


class FaultMask:
    """O(1)-clear membership mask over dense integer ids.

    A ``bytearray`` of stamps plus a generation counter: an id is a
    member iff its stamp equals the current generation.  ``clear()``
    bumps the generation; when the 1-byte stamp space wraps (every 255
    clears) the buffer is zero-filled once, keeping the amortized cost
    O(1) per clear.

    ``members`` lists the ids added since the last ``clear()`` (with
    duplicates if an id is added twice).  Fault sets are tiny (at most
    ``alpha * t`` in the LBC loop), so keeping the list costs nothing
    and lets the BFS pre-stamp the whole fault set into its visited
    array in O(|F|) -- removing the mask test from the per-neighbor
    inner loop entirely.
    """

    __slots__ = ("stamp", "gen", "members")

    def __init__(self, size: int = 0) -> None:
        self.stamp = bytearray(size)
        self.gen = 1
        self.members: List[int] = []

    def ensure(self, size: int) -> None:
        """Grow the mask to cover ids up to ``size - 1`` (never shrinks)."""
        if len(self.stamp) < size:
            self.stamp.extend(bytes(size - len(self.stamp)))

    def clear(self) -> None:
        """Empty the mask in O(1) (amortized)."""
        self.gen += 1
        if self.gen == 256:
            self.stamp[:] = bytes(len(self.stamp))
            self.gen = 1
        self.members.clear()

    def add(self, i: int) -> None:
        """Mark id ``i`` as a member."""
        self.stamp[i] = self.gen
        self.members.append(i)

    def add_all(self, ids: Iterable[int]) -> None:
        """Mark every id in ``ids``."""
        stamp, gen = self.stamp, self.gen
        members = self.members
        for i in ids:
            stamp[i] = gen
            members.append(i)

    def __contains__(self, i: int) -> bool:
        return self.stamp[i] == self.gen

    def __repr__(self) -> str:
        return f"FaultMask(size={len(self.stamp)})"


class CSRGraph:
    """A frozen integer-indexed graph in compressed-sparse-row layout.

    Attributes
    ----------
    indptr, indices:
        The classic CSR pair: node ``i``'s neighbors are
        ``indices[indptr[i]:indptr[i+1]]``.
    nbr_edge_ids:
        Parallel to ``indices``: the edge id of each incidence.
    weights, edge_u, edge_v:
        Per-edge-id weight and canonical endpoints (``edge_u < edge_v``).
    neighbors, edge_id_rows, weight_rows:
        Per-node list rows materialized from the flat arrays -- what the
        traversal inner loops iterate.  ``weight_rows`` repeats each
        edge weight per incidence so Dijkstra reads weights in row order
        instead of the indirect ``weights[erow[j]]``; it is built lazily
        on first access, so BFS-only consumers never pay for it.
    indexer:
        The :class:`NodeIndexer` mapping node objects to indices (may be
        ``None`` for purely index-level graphs).
    """

    __slots__ = (
        "num_nodes", "num_edges", "indptr", "indices", "nbr_edge_ids",
        "weights", "edge_u", "edge_v", "neighbors", "edge_id_rows",
        "_weight_rows", "indexer", "_eid_of",
    )

    def __init__(
        self,
        indptr: array,
        indices: array,
        nbr_edge_ids: array,
        weights: array,
        edge_u: array,
        edge_v: array,
        indexer: Optional[NodeIndexer] = None,
        eid_of: Optional[Dict[Tuple[int, int], int]] = None,
    ) -> None:
        self.num_nodes = len(indptr) - 1
        self.num_edges = len(weights)
        self.indptr = indptr
        self.indices = indices
        self.nbr_edge_ids = nbr_edge_ids
        self.weights = weights
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.indexer = indexer
        if eid_of is None:
            eid_of = {
                (edge_u[e], edge_v[e]): e for e in range(len(weights))
            }
        self._eid_of = eid_of
        # Rows are materialized as plain lists: iterating a list of
        # already-boxed ints/floats is measurably faster in CPython than
        # iterating an array/memoryview slice (which must box every
        # element on each pass), and these rows are scanned millions of
        # times per run.  The flat arrays above stay the storage of
        # record for edge-level data.
        self.neighbors: List[Sequence[int]] = [
            indices[indptr[i]:indptr[i + 1]].tolist()
            for i in range(self.num_nodes)
        ]
        self.edge_id_rows: List[Sequence[int]] = [
            nbr_edge_ids[indptr[i]:indptr[i + 1]].tolist()
            for i in range(self.num_nodes)
        ]
        self._weight_rows: Optional[List[Sequence[float]]] = None

    @property
    def weight_rows(self) -> List[Sequence[float]]:
        """Per-incidence weight rows, built on first (Dijkstra) access."""
        rows = self._weight_rows
        if rows is None:
            weights = self.weights
            rows = [[weights[e] for e in row] for row in self.edge_id_rows]
            self._weight_rows = rows
        return rows

    @classmethod
    def from_graph(
        cls, g: Graph, indexer: Optional[NodeIndexer] = None
    ) -> "CSRGraph":
        """Snapshot ``g`` into CSR form (one O(n + m) pass).

        ``indexer`` may be supplied to reuse an existing node numbering;
        any nodes of ``g`` it does not know yet are added to it.  Rows
        preserve ``g``'s neighbor iteration order.
        """
        if indexer is None:
            indexer = NodeIndexer.from_graph(g)
        else:
            for u in g.nodes():
                indexer.add(u)
        n = len(indexer)
        index = indexer.index
        indptr = _zeros_q(n + 1)
        for u in g.nodes():
            indptr[index(u) + 1] = g.degree(u)
        for i in range(n):
            indptr[i + 1] += indptr[i]
        indices = _zeros_q(indptr[n])
        nbr_edge_ids = _zeros_q(indptr[n])
        weights = array("d")
        edge_u = array("q")
        edge_v = array("q")
        eid_of: Dict[Tuple[int, int], int] = {}
        fill = list(indptr[:n])
        for u in g.nodes():
            ui = index(u)
            for v, w in g.neighbor_items(u):
                vi = index(v)
                key = (ui, vi) if ui < vi else (vi, ui)
                eid = eid_of.get(key)
                if eid is None:
                    eid = len(weights)
                    eid_of[key] = eid
                    weights.append(w)
                    edge_u.append(key[0])
                    edge_v.append(key[1])
                pos = fill[ui]
                indices[pos] = vi
                nbr_edge_ids[pos] = eid
                fill[ui] = pos + 1
        return cls(
            indptr, indices, nbr_edge_ids, weights, edge_u, edge_v,
            indexer=indexer, eid_of=eid_of,
        )

    # ------------------------------------------------------------------ #
    # Queries (index-level)
    # ------------------------------------------------------------------ #

    def degree(self, i: int) -> int:
        """Degree of node index ``i``."""
        return self.indptr[i + 1] - self.indptr[i]

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the edge ``{i, j}`` (node indices) exists."""
        key = (i, j) if i < j else (j, i)
        return key in self._eid_of

    def edge_id(self, i: int, j: int) -> int:
        """Dense edge id of ``{i, j}``; raises ``KeyError`` if absent."""
        key = (i, j) if i < j else (j, i)
        return self._eid_of[key]

    # ------------------------------------------------------------------ #
    # Fault-mask construction (object-level convenience)
    # ------------------------------------------------------------------ #

    def vertex_mask(
        self, faults: Iterable[Node] = (), mask: Optional[FaultMask] = None
    ) -> FaultMask:
        """A cleared :class:`FaultMask` stamped with the given fault nodes.

        Node objects are translated through :attr:`indexer`; pass ``mask``
        to reuse a buffer instead of allocating.
        """
        if self.indexer is None:
            raise ValueError("this CSRGraph carries no NodeIndexer")
        if mask is None:
            mask = FaultMask(self.num_nodes)
        mask.ensure(self.num_nodes)
        mask.clear()
        mask.add_all(self.indexer.index(u) for u in faults)
        return mask

    def edge_mask(
        self, faults: Iterable[Edge] = (), mask: Optional[FaultMask] = None
    ) -> FaultMask:
        """Edge-fault analogue of :meth:`vertex_mask` (edges as node pairs)."""
        if self.indexer is None:
            raise ValueError("this CSRGraph carries no NodeIndexer")
        if mask is None:
            mask = FaultMask(self.num_edges)
        mask.ensure(self.num_edges)
        mask.clear()
        index = self.indexer.index
        mask.add_all(self.edge_id(index(u), index(v)) for u, v in faults)
        return mask

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_nodes}, m={self.num_edges})"


class CSRBuilder:
    """An appendable CSR-style graph for the greedy's growing spanner.

    Adjacency is chunked per node (one list of neighbor indices, one of
    edge ids, and one of weights per node), so ``add_edge`` is O(1)
    amortized and neighbor iteration is a C-speed scan over
    already-boxed elements.  :meth:`repack` consolidates the chunks into
    a frozen :class:`CSRGraph` once mutation stops (or periodically, if
    a long-lived builder wants flat edge arrays back).

    The builder exposes the same attributes the traversal layer reads
    from :class:`CSRGraph` (``num_nodes``, ``num_edges``, ``neighbors``,
    ``edge_id_rows``, ``weight_rows``, ``weights``, ``edge_u``,
    ``edge_v``), so BFS and Dijkstra code is agnostic between the two.
    """

    __slots__ = (
        "neighbors", "edge_id_rows", "weight_rows", "weights", "edge_u",
        "edge_v", "_eid_of",
    )

    def __init__(self, num_nodes: int = 0) -> None:
        # Plain-list rows for the same reason as CSRGraph: the traversal
        # inner loops iterate them constantly, and list iteration skips
        # the per-element boxing an array would pay.
        self.neighbors: List[List[int]] = [[] for _ in range(num_nodes)]
        self.edge_id_rows: List[List[int]] = [[] for _ in range(num_nodes)]
        self.weight_rows: List[List[float]] = [[] for _ in range(num_nodes)]
        self.weights = array("d")
        self.edge_u = array("q")
        self.edge_v = array("q")
        self._eid_of: Dict[Tuple[int, int], int] = {}

    @property
    def num_nodes(self) -> int:
        return len(self.neighbors)

    @property
    def num_edges(self) -> int:
        return len(self.weights)

    def add_node(self) -> int:
        """Append a fresh isolated node; returns its index."""
        i = len(self.neighbors)
        self.neighbors.append([])
        self.edge_id_rows.append([])
        self.weight_rows.append([])
        return i

    def ensure_nodes(self, n: int) -> None:
        """Grow to at least ``n`` nodes (no-op when already that large)."""
        while len(self.neighbors) < n:
            self.add_node()

    def add_edge(self, i: int, j: int, weight: float = 1.0) -> int:
        """Append the undirected edge ``{i, j}``; returns its edge id.

        Re-adding an existing edge overwrites its weight and returns the
        original id, mirroring ``Graph.add_edge`` semantics.  Self-loops
        raise ``ValueError``.
        """
        if i == j:
            raise ValueError(f"self-loop on index {i} is not allowed")
        key = (i, j) if i < j else (j, i)
        eid = self._eid_of.get(key)
        if eid is not None:
            self.weights[eid] = weight
            # Keep the per-incidence weight copies in sync (O(deg) scan;
            # re-adding an edge is rare -- the greedy never does).
            for x in key:
                erow = self.edge_id_rows[x]
                for pos in range(len(erow)):
                    if erow[pos] == eid:
                        self.weight_rows[x][pos] = weight
                        break
            return eid
        eid = len(self.weights)
        self._eid_of[key] = eid
        self.weights.append(weight)
        self.edge_u.append(key[0])
        self.edge_v.append(key[1])
        self.neighbors[i].append(j)
        self.edge_id_rows[i].append(eid)
        self.weight_rows[i].append(weight)
        self.neighbors[j].append(i)
        self.edge_id_rows[j].append(eid)
        self.weight_rows[j].append(weight)
        return eid

    def degree(self, i: int) -> int:
        """Degree of node index ``i``."""
        return len(self.neighbors[i])

    def has_edge(self, i: int, j: int) -> bool:
        """Whether the edge ``{i, j}`` has been added."""
        key = (i, j) if i < j else (j, i)
        return key in self._eid_of

    def edge_id(self, i: int, j: int) -> int:
        """Dense edge id of ``{i, j}``; raises ``KeyError`` if absent."""
        key = (i, j) if i < j else (j, i)
        return self._eid_of[key]

    def compact(self) -> None:
        """Re-allocate every adjacency row at exact size (in-place repack).

        The mid-run twin of :meth:`repack` for long greedy runs: the
        frozen :class:`CSRGraph` that ``repack()`` returns cannot accept
        further edges, so periodic repacking inside a still-growing run
        compacts the builder's own rows instead -- fresh exact-length
        list copies drop the over-allocation slack accumulated by
        repeated appends and lay each row's pointer array out anew.
        Edge ids, weights, and per-row order are unchanged, so masks and
        workspaces built against this builder remain valid.

        Scheduled by the greedy loop's ``repack_every`` knob; the
        ``modified_greedy_repack`` scenario of
        ``benchmarks/bench_backend.py`` records the measured effect.
        """
        self.neighbors = [list(row) for row in self.neighbors]
        self.edge_id_rows = [list(row) for row in self.edge_id_rows]
        self.weight_rows = [list(row) for row in self.weight_rows]

    def repack(self, indexer: Optional[NodeIndexer] = None) -> CSRGraph:
        """Consolidate the chunked rows into a frozen :class:`CSRGraph`.

        Edge ids, weights, and per-row neighbor order are preserved, so
        masks and workspaces built against this builder remain valid
        against the repacked graph.
        """
        n = self.num_nodes
        indptr = _zeros_q(n + 1)
        for i in range(n):
            indptr[i + 1] = indptr[i] + len(self.neighbors[i])
        indices = _zeros_q(indptr[n])
        nbr_edge_ids = _zeros_q(indptr[n])
        for i in range(n):
            start = indptr[i]
            row = self.neighbors[i]
            erow = self.edge_id_rows[i]
            for j in range(len(row)):
                indices[start + j] = row[j]
                nbr_edge_ids[start + j] = erow[j]
        return CSRGraph(
            indptr, indices, nbr_edge_ids,
            array("d", self.weights), array("q", self.edge_u),
            array("q", self.edge_v),
            indexer=indexer, eid_of=dict(self._eid_of),
        )

    def __repr__(self) -> str:
        return f"CSRBuilder(n={self.num_nodes}, m={self.num_edges})"


CSRLike = Union[CSRGraph, CSRBuilder]
