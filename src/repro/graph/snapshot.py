"""Reusable CSR query-engine substrate: snapshot once, sweep many scenarios.

Every batched workload in the library follows the same shape on the CSR
backend: freeze a :class:`~repro.graph.graph.Graph` into flat arrays
*once*, then drive many fault scenarios through generation-stamped
:class:`~repro.graph.csr.FaultMask` buffers and one preallocated
workspace -- moving to the next scenario is an O(|F|) mask re-stamp
instead of materializing a ``G \\ F`` view.  The verification sweeps
pioneered the pattern; this module extracts it so the applications layer
(distance oracle, router, availability analysis) runs on the same
substrate:

* :class:`CSRSnapshot` -- one frozen CSR build of a single graph plus
  its :class:`~repro.graph.index.NodeIndexer` (node objects <-> dense
  indices) and a cached unit-weight flag.
* :class:`ScenarioSweep` -- a batched query engine over one snapshot:
  owns the vertex/edge fault masks and lazily-created
  :class:`~repro.graph.traversal.BFSWorkspace` /
  :class:`~repro.graph.traversal.DijkstraWorkspace`, exposes
  object-level queries (``distances_from`` / ``distance`` / ``path`` /
  ``parents_toward``) that match the dict backend's answers exactly.
  Unit-weighted snapshots answer distance queries with the (much
  faster) hop-bounded BFS primitives; weighted ones with the CSR
  Dijkstra engine the ``search=`` keyword resolves to -- binary heap,
  Dial bucket queue, or bidirectional Dijkstra, selected per snapshot
  from the weight profile detected at freeze time (see
  :data:`SEARCH_MODES` and docs/architecture.md, "Weighted search
  engines").
* :class:`DualCSRSnapshot` -- G and H snapshotted over one *shared*
  index space (so a vertex mask stamped with G-side indices is directly
  valid against H), the base of the verification sweeps and of the
  availability sampler.

Cost model: construction is one (or two) O(n + m) snapshots; a scenario
switch is an O(|F|) re-stamp; each query allocates nothing beyond its
returned value.

Parity: every query visits neighbors in the dict backend's insertion
order and breaks ties identically (see ``docs/architecture.md``), so
the answers are bit-identical to the lazy-view reference path -- the
applications parity suite (`tests/test_applications_parity.py`) and
`benchmarks/bench_applications.py` assert this on every run.
"""

from __future__ import annotations

import math
import os
import pickle
import struct
from itertools import islice
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.graph.csr import CSRGraph, FaultMask
from repro.graph.graph import Edge, Graph, Node
from repro.graph.index import NodeIndexer
from repro.graph.traversal import (
    BFSWorkspace,
    BUCKET_MAX_WEIGHT,
    DijkstraWorkspace,
    MultiSourceWorkspace,
    csr_bfs_distances,
    csr_bfs_multi,
    csr_bfs_multi_numpy,
    csr_bfs_parents,
    csr_bounded_bfs_path,
    csr_bounded_dijkstra_path,
    csr_bucket_multi,
    csr_dijkstra,
    csr_dijkstra_parents,
    csr_weighted_distance,
    resolve_batch_accel,
    split_parent_plane,
    weight_profile,
)

INFINITY = math.inf

#: The weighted search engines a snapshot query may request.  ``"auto"``
#: resolves per query from the snapshot's weight profile (detected once
#: at freeze time): unit snapshots answer distances with hop-BFS,
#: integral ones with the Dial bucket queue (single-source) and
#: bidirectional Dijkstra (point-to-point), float ones with the binary
#: heap.  ``"batch"`` routes multi-root queries through the multi-source
#: frontier kernels (integral weights only; single queries fall back to
#: the matching sequential engine).  Every engine is bit-identical to
#: the dict backend wherever it is legal, so the choice is pure
#: execution policy.
SEARCH_MODES = ("auto", "heap", "bucket", "bidir", "batch")

#: Environment variable overriding the default search mode (the explicit
#: ``search=`` keyword always wins over the environment), mirroring
#: ``REPRO_BACKEND`` for the backend choice.
SEARCH_ENV_VAR = "REPRO_SEARCH"

#: How many roots one multi-source batch advances per shared sweep.  The
#: label planes hold ``roots x num_nodes`` cells, so chunking bounds the
#: workspace at ``BATCH_ROOT_LIMIT * n`` cells no matter how large a
#: batch the caller submits (results are per-root, so chunking cannot
#: change them).
BATCH_ROOT_LIMIT = 128

#: Cell budget for the *numpy* batch kernel, which allocates fresh
#: per-call planes instead of reusing the grow-only workspace arenas.
#: Its per-level vectorized passes amortize better over wide batches,
#: so it chunks at ``max(BATCH_ROOT_LIMIT, NUMPY_BATCH_CELLS // n)``
#: roots -- wider than the stdlib chunking on small graphs.  The budget
#: is sized so the hot planes (int32 stamp/parent + bool seen, ~9 bytes
#: per cell) stay cache-resident: the kernel's scatter/gather passes hit
#: the planes at random, and keeping them ~1 MB is worth ~25% wall
#: clock over letting one huge batch spill to main memory.
NUMPY_BATCH_CELLS = 1 << 17


class UnsupportedSearch(ValueError):
    """Raised when a requested search engine cannot run on a snapshot.

    The bucket and bidirectional engines are exact only for positive
    integer weights (path sums are association-independent there);
    forcing them onto a float-weighted snapshot would break the
    dict/CSR parity guarantee, so it is a typed error instead.
    """


def resolve_search(search: Optional[str]) -> str:
    """Validate a ``search=`` argument.

    ``None`` means "use the default": ``"auto"`` unless the
    :data:`SEARCH_ENV_VAR` environment variable names another mode.
    """
    if search is None:
        search = os.environ.get(SEARCH_ENV_VAR)
        if search is None:
            return "auto"
    if search not in SEARCH_MODES:
        raise UnsupportedSearch(
            f"unknown search engine {search!r}; expected one of "
            f"{SEARCH_MODES}"
        )
    return search


def validate_search(search: Optional[str], *profiles: str) -> str:
    """Resolve ``search`` and check it against snapshot weight profiles.

    ``profiles`` are the ``CSRSnapshot.profile`` strings of every
    snapshot the caller will probe with this engine choice; the
    integral-only engines are rejected when any of them is ``"float"``.
    """
    s = resolve_search(search)
    if s in ("bucket", "bidir", "batch") and "float" in profiles:
        raise UnsupportedSearch(
            f"search={s!r} requires positive integer edge weights "
            f"(path sums must be exact to preserve dict/CSR parity); "
            f"this snapshot's weight profile is 'float'.  Use "
            f"search='heap' or 'auto'."
        )
    return s


def sssp_engine(search: str, profile: str) -> str:
    """The single-source engine for one resolved search mode.

    Returns ``"bfs"`` (unit fast path), ``"heap"`` or ``"bucket"``.
    ``"bidir"`` is a point-to-point engine, so single-source queries
    under it take the bucket engine (legal whenever bidir is).
    ``"batch"`` resolves like ``"auto"``: its multi-source kernels *are*
    the BFS and bucket disciplines, so a lone single-source query under
    it runs the matching sequential kernel.  This doubles as the batch
    kernel policy: ``"bfs"`` and ``"bucket"`` name multi-source kernels
    and ``"heap"`` means "no batch kernel applies -- loop per root".
    """
    if search == "heap":
        return "heap"
    if search in ("bucket", "bidir"):
        return "bucket"
    if profile == "unit":
        return "bfs"
    return "bucket" if profile == "int" else "heap"


def pair_engine(search: str, profile: str) -> str:
    """The point-to-point engine for one resolved search mode.

    Returns ``"bfs"``, ``"heap"``, ``"bucket"`` or ``"bidir"``.
    ``"batch"`` resolves like ``"auto"`` (there is no batched variant of
    a *single* point-to-point probe; many probes at once go through the
    multi-pair kernel instead).
    """
    if search not in ("auto", "batch"):
        return search
    if profile == "unit":
        return "bfs"
    return "bidir" if profile == "int" else "heap"


def weighted_pair_engine(search: str, profile: str) -> str:
    """:func:`pair_engine` for sweeps that always probe with weights.

    The verification / stretch / availability sweeps never take the
    hop-BFS fast path per side (e.g. a unit spanner of a weighted graph
    still needs a weighted probe), so a side that :func:`pair_engine`
    would answer with BFS probes with bidirectional Dijkstra instead --
    legal wherever BFS would have been, since unit weights are integral.
    """
    engine = pair_engine(search, profile)
    return "bidir" if engine == "bfs" else engine


def path_engine(search: str, profile: str) -> str:
    """The path-reconstruction engine (``"heap"`` or ``"bucket"``).

    Paths need the dict backend's tie-breaking, which the heap and
    bucket engines reproduce (bidir does not reconstruct paths; unit
    snapshots also use a weighted engine here, exactly like the dict
    backend's path queries).  ``"batch"`` resolves like ``"auto"``.
    """
    if search == "heap":
        return "heap"
    if search in ("bucket", "bidir"):
        return "bucket"
    return "heap" if profile == "float" else "bucket"


#: One-line capability constraint per search mode, surfaced by the CLI
#: (``ftspanner algorithms`` and the ``--search`` help text).
SEARCH_CAPABILITIES = {
    "auto": "per-snapshot policy: BFS on unit, bucket/bidir on int, "
            "heap on float weights",
    "heap": "binary-heap Dijkstra; any non-negative weights",
    "bucket": "Dial bucket queue; positive integer weights <= "
              f"{BUCKET_MAX_WEIGHT}",
    "bidir": "bidirectional Dijkstra for s-t probes; integral weights "
             "only",
    "batch": "multi-source frontier batching for multi-root queries; "
             "integral weights only (BFS plane kernel vectorizes with "
             "numpy when importable, stdlib fallback otherwise)",
}

#: Process-wide count of CSR freezes (one per :class:`CSRSnapshot`
#: construction; a :class:`DualCSRSnapshot` built from scratch counts
#: two).  Pure instrumentation: the snapshot-sharing layers
#: (:class:`repro.session.SpannerSession`, ``degradation_profile``)
#: promise "at most one freeze per graph per workflow", and their tests
#: assert it through :func:`csr_freeze_count` deltas.
_freezes = 0


def csr_freeze_count() -> int:
    """How many CSR freezes this process has performed so far."""
    return _freezes


def _stamp_vertex_mask(
    indexer: NodeIndexer, mask: FaultMask, faults: Iterable[Node]
) -> FaultMask:
    """Re-stamp ``mask`` with a vertex fault set in O(|F|).

    Unknown nodes are silently ignored, matching the lazy views
    (filtering something that is not there is a no-op).
    """
    get = indexer.get
    mask.clear()
    mask.add_all(i for i in (get(x) for x in faults) if i is not None)
    return mask


def _stamp_edge_mask(
    indexer: NodeIndexer,
    csr: CSRGraph,
    mask: FaultMask,
    faults: Iterable[Edge],
) -> FaultMask:
    """Re-stamp ``mask`` with an edge fault set in O(|F|).

    Edges absent from the graph are ignored, matching the lazy views.
    """
    get = indexer.get
    mask.clear()
    for u, v in faults:
        iu, iv = get(u), get(v)
        if iu is None or iv is None:
            continue
        if csr.has_edge(iu, iv):
            mask.add(csr.edge_id(iu, iv))
    return mask


class CSRSnapshot:
    """One frozen CSR build of a graph, ready for scenario sweeps.

    Attributes
    ----------
    g:
        The source :class:`~repro.graph.graph.Graph` (kept for
        object-level lookups; never mutated through the snapshot).
    csr:
        The frozen :class:`~repro.graph.csr.CSRGraph`.
    indexer:
        The node <-> index bijection (shared when ``indexer`` is passed,
        e.g. by :class:`DualCSRSnapshot`).
    unit:
        Whether every edge weight is exactly 1.0 -- enables the BFS fast
        path for distance queries (hop distance equals weighted
        distance, and small integer floats are exact).
    profile:
        The freeze-time weight profile driving ``search="auto"`` engine
        selection: ``"unit"``, ``"int"`` (positive integers within the
        bucket engine's range) or ``"float"`` (see
        :func:`repro.graph.traversal.weight_profile`).
    max_weight:
        The largest edge weight as an ``int`` for the first two
        profiles (the Dial bucket count); 0 for ``"float"``.
    """

    __slots__ = ("g", "csr", "indexer", "unit", "profile", "max_weight")

    def __init__(self, g: Graph, indexer: Optional[NodeIndexer] = None) -> None:
        global _freezes
        _freezes += 1
        self.g = g
        self.csr = CSRGraph.from_graph(g, indexer=indexer)
        self.indexer = self.csr.indexer
        self.profile, self.max_weight = weight_profile(self.csr.weights)
        self.unit = self.profile == "unit"

    @classmethod
    def from_csr(cls, csr: CSRGraph) -> "CSRSnapshot":
        """Adopt an already-built :class:`~repro.graph.csr.CSRGraph`.

        The adoption constructor behind :func:`adopt_snapshot`: wraps
        ``csr`` (whose flat buffers may live in an external shared
        segment) without re-freezing anything, so it does **not** bump
        :func:`csr_freeze_count` -- adopting is not a freeze.  ``g`` is
        ``None`` on adopted snapshots; every sweep-level consumer works
        purely off ``csr``/``indexer``, and only callers that need the
        source ``Graph`` object (none of the query layers do) may not
        use one.
        """
        if csr.indexer is None:
            raise ValueError(
                "adopting a CSRGraph requires its NodeIndexer (queries "
                "translate node objects through it)"
            )
        self = object.__new__(cls)
        self.g = None
        self.csr = csr
        self.indexer = csr.indexer
        self.profile, self.max_weight = weight_profile(csr.weights)
        self.unit = self.profile == "unit"
        return self

    def __repr__(self) -> str:
        return (
            f"CSRSnapshot(n={self.csr.num_nodes}, m={self.csr.num_edges}, "
            f"profile={self.profile!r})"
        )


# --------------------------------------------------------------------- #
# Shared-segment serialization (the serving layer's wire format)
# --------------------------------------------------------------------- #

#: Magic prefix + format version of a packed snapshot segment.  Bump the
#: version whenever the layout below changes; adoption refuses segments
#: it does not understand instead of misreading them.
SNAPSHOT_MAGIC = b"FTSS"
SNAPSHOT_FORMAT_VERSION = 1

#: Packed header: magic, version, then the region element counts --
#: ``n`` (nodes), ``m`` (edges), ``nnz`` (incidences, i.e.
#: ``len(indices)``) and the byte length of the pickled node-label
#: list.  40 bytes, so every 8-byte region that follows stays aligned.
_SNAPSHOT_HEADER = struct.Struct("<4sIQQQQ")

#: The flat regions following the header, in order.  Each is an array of
#: 8-byte elements (``'q'`` int64 / ``'d'`` float64) sized by the header
#: counts; the pickled label list comes last (labels are arbitrary
#: hashables, so they take the generic serializer -- everything numeric
#: stays raw and is adopted zero-copy).
_SNAPSHOT_REGIONS = (
    ("indptr", "q", lambda n, m, nnz: n + 1),
    ("indices", "q", lambda n, m, nnz: nnz),
    ("nbr_edge_ids", "q", lambda n, m, nnz: nnz),
    ("edge_u", "q", lambda n, m, nnz: m),
    ("edge_v", "q", lambda n, m, nnz: m),
    ("weights", "d", lambda n, m, nnz: m),
)


def _snapshot_counts(snap: CSRSnapshot) -> Tuple[int, int, int]:
    csr = snap.csr
    return csr.num_nodes, csr.num_edges, len(csr.indices)


def _packed_labels(snap: CSRSnapshot) -> bytes:
    return pickle.dumps(list(snap.indexer), protocol=pickle.HIGHEST_PROTOCOL)


def snapshot_nbytes(snap: CSRSnapshot) -> int:
    """Bytes needed to pack ``snap`` with :func:`pack_snapshot_into`.

    Deterministic for a given snapshot, so a caller can size a
    ``multiprocessing.shared_memory`` segment before packing.
    """
    n, m, nnz = _snapshot_counts(snap)
    total = _SNAPSHOT_HEADER.size
    for _, _, count in _SNAPSHOT_REGIONS:
        total += 8 * count(n, m, nnz)
    return total + len(_packed_labels(snap))


def pack_snapshot_into(snap: CSRSnapshot, buf) -> int:
    """Serialize ``snap`` into a writable buffer; returns bytes written.

    ``buf`` is anything exposing a writable buffer -- a ``bytearray``,
    an ``mmap``, or a ``multiprocessing.shared_memory`` segment's
    ``.buf``.  The numeric regions are written as raw little-endian
    64-bit elements in the layout :func:`adopt_snapshot` reads, so a
    process attaching the same segment reconstructs the snapshot with
    zero copies of the flat arrays.
    """
    labels = _packed_labels(snap)
    n, m, nnz = _snapshot_counts(snap)
    needed = _SNAPSHOT_HEADER.size + len(labels) + sum(
        8 * count(n, m, nnz) for _, _, count in _SNAPSHOT_REGIONS
    )
    mv = memoryview(buf)
    try:
        if len(mv) < needed:
            raise ValueError(
                f"buffer of {len(mv)} bytes cannot hold a "
                f"{needed}-byte packed snapshot (size with "
                f"snapshot_nbytes())"
            )
        _SNAPSHOT_HEADER.pack_into(
            mv, 0, SNAPSHOT_MAGIC, SNAPSHOT_FORMAT_VERSION, n, m, nnz,
            len(labels),
        )
        off = _SNAPSHOT_HEADER.size
        csr = snap.csr
        for name, _, count in _SNAPSHOT_REGIONS:
            nbytes = 8 * count(n, m, nnz)
            src = memoryview(getattr(csr, name)).cast("B")
            try:
                mv[off:off + nbytes] = src
            finally:
                src.release()
            off += nbytes
        mv[off:off + len(labels)] = labels
        off += len(labels)
    finally:
        mv.release()
    return off


def adopt_snapshot(buf) -> CSRSnapshot:
    """Reconstruct a :class:`CSRSnapshot` over a packed buffer, zero-copy.

    The inverse of :func:`pack_snapshot_into`: the returned snapshot's
    flat arrays (``indptr``/``indices``/``nbr_edge_ids``/``edge_u``/
    ``edge_v``/``weights``) are typed :class:`memoryview` casts into
    ``buf`` -- no numeric data is copied, which is what lets a pool of
    worker processes share one ``multiprocessing.shared_memory``
    segment.  Derived per-node structures (neighbor list rows, the
    edge-id map, the label indexer) are rebuilt locally in O(n + m);
    they are small and mutable, so they stay private per process.

    The caller must keep ``buf`` (and any shared-memory handle backing
    it) alive for the snapshot's lifetime.  Adoption does not bump
    :func:`csr_freeze_count` -- it is not a freeze.
    """
    mv = memoryview(buf)
    if len(mv) < _SNAPSHOT_HEADER.size:
        raise ValueError(
            f"buffer too small for a packed snapshot header "
            f"({len(mv)} < {_SNAPSHOT_HEADER.size} bytes)"
        )
    magic, version, n, m, nnz, labels_nbytes = _SNAPSHOT_HEADER.unpack_from(
        mv, 0
    )
    if magic != SNAPSHOT_MAGIC:
        raise ValueError(
            f"buffer does not hold a packed snapshot (magic {magic!r})"
        )
    if version != SNAPSHOT_FORMAT_VERSION:
        raise ValueError(
            f"packed snapshot format v{version} is not supported "
            f"(this build reads v{SNAPSHOT_FORMAT_VERSION})"
        )
    off = _SNAPSHOT_HEADER.size
    regions = {}
    for name, fmt, count in _SNAPSHOT_REGIONS:
        nbytes = 8 * count(n, m, nnz)
        if off + nbytes > len(mv):
            raise ValueError(
                f"packed snapshot truncated in region {name!r}"
            )
        regions[name] = mv[off:off + nbytes].cast(fmt)
        off += nbytes
    if off + labels_nbytes > len(mv):
        raise ValueError("packed snapshot truncated in the label region")
    labels = pickle.loads(mv[off:off + labels_nbytes])
    if len(labels) != n:
        raise ValueError(
            f"packed snapshot carries {len(labels)} labels for {n} nodes"
        )
    csr = CSRGraph(
        regions["indptr"], regions["indices"], regions["nbr_edge_ids"],
        regions["weights"], regions["edge_u"], regions["edge_v"],
        indexer=NodeIndexer(labels),
    )
    return CSRSnapshot.from_csr(csr)


class ScenarioSweep:
    """Batched fault-scenario queries against one :class:`CSRSnapshot`.

    One sweep owns one vertex mask, one edge mask, and (lazily) one BFS
    and one Dijkstra workspace; switching scenarios with
    :meth:`set_vertex_faults` / :meth:`set_edge_faults` is an O(|F|)
    re-stamp, and every query thereafter runs against the stamped
    scenario with zero further allocation.

    Queries take and return *node objects* (translated through the
    snapshot's indexer) and replicate the dict backend's lazy-view
    semantics exactly: a source that is unknown or faulted raises
    ``KeyError`` (as ``dijkstra`` does on a view that lacks the node),
    while an unknown or faulted *target* is merely unreachable.

    ``search`` picks the weighted engine (one of :data:`SEARCH_MODES`);
    the default ``"auto"`` resolves per query from the snapshot's
    freeze-time weight profile.  Every legal engine answers
    bit-identically, so this is pure execution policy; the integral-only
    engines raise :class:`UnsupportedSearch` on float-weighted
    snapshots.

    Sweeps follow *dynamic* snapshots automatically: when the underlying
    graph carries a mutation ``version`` stamp (a
    :class:`~repro.dynamic.overlay.DeltaOverlay` behind a
    :class:`~repro.dynamic.snapshot.DynamicSnapshot` view), every
    stamping and query entry point first re-sizes the masks, extends the
    node table, re-validates the engine against the current weight
    profile, and drops the stamped scenario (stale fault indices must be
    re-stamped by the caller -- the oracle/router/availability layers
    already stamp per scenario).  Frozen snapshots carry no version and
    skip the check in O(1).

    Not thread-safe; use one sweep per thread.
    """

    __slots__ = (
        "snap", "vmask", "emask", "search", "_nodes", "_ident",
        "_bfs_ws", "_dij_ws", "_multi_ws", "_use_vmask", "_use_emask",
        "_version",
    )

    def __init__(
        self,
        snapshot: Union[CSRSnapshot, Graph],
        search: Optional[str] = None,
    ) -> None:
        if not isinstance(snapshot, CSRSnapshot):
            snapshot = CSRSnapshot(snapshot)
        self.snap = snapshot
        self.search = validate_search(search, snapshot.profile)
        self.vmask = FaultMask(snapshot.csr.num_nodes)
        self.emask = FaultMask(snapshot.csr.num_edges)
        self._nodes: List[Node] = list(snapshot.indexer)
        # Identity labelling (node i is the int i) lets the batch
        # planes emit kernel indices as labels directly, skipping the
        # per-cell label translation.
        self._ident = (
            all(type(v) is int for v in self._nodes)
            and self._nodes == list(range(len(self._nodes)))
        )
        self._bfs_ws: Optional[BFSWorkspace] = None
        self._dij_ws: Optional[DijkstraWorkspace] = None
        self._multi_ws: Optional[MultiSourceWorkspace] = None
        self._use_vmask = False
        self._use_emask = False
        self._version = getattr(snapshot.csr, "version", None)

    # ------------------------------------------------------------- #
    # Scenario control
    # ------------------------------------------------------------- #

    def _refresh_if_stale(self) -> None:
        """Track a dynamic snapshot across updates and compactions.

        O(1) when the graph is frozen (no ``version`` attribute) or
        unchanged.  On a version change: grow the fault masks to the
        current node/edge-id spaces, extend the node table with any
        newly-indexed nodes, re-validate the engine choice against the
        live weight profile (churn can move it -- a float insert makes
        ``search="bucket"`` illegal, surfaced as the usual typed
        :class:`UnsupportedSearch`), and drop the stamped scenario:
        fault indices stamped against the old state must be re-stamped
        by the caller.
        """
        v = getattr(self.snap.csr, "version", None)
        if v == self._version:
            return
        self._version = v
        csr = self.snap.csr
        validate_search(self.search, self.snap.profile)
        self.vmask.ensure(csr.num_nodes)
        self.emask.ensure(csr.num_edges)
        self.clear_faults()
        nodes = self._nodes
        indexer = self.snap.indexer
        if len(nodes) < len(indexer):
            start = len(nodes)
            node_of = indexer.node
            nodes.extend(node_of(i) for i in range(start, len(indexer)))
            if self._ident:
                self._ident = all(
                    type(x) is int and x == i
                    for i, x in enumerate(nodes[start:], start)
                )

    def set_vertex_faults(self, faults: Iterable[Node]) -> FaultMask:
        """Re-stamp the vertex mask with a new fault set in O(|F|).

        Unknown nodes are silently ignored, matching the lazy views
        (filtering something that is not there is a no-op).  Clears any
        previously-stamped edge faults.
        """
        self._refresh_if_stale()
        mask = _stamp_vertex_mask(self.snap.indexer, self.vmask, faults)
        self._use_vmask = True
        self._use_emask = False
        return mask

    def set_edge_faults(self, faults: Iterable[Edge]) -> FaultMask:
        """Re-stamp the edge mask with a new fault set in O(|F|).

        Edges absent from the graph are ignored, matching the lazy
        views.  Clears any previously-stamped vertex faults.
        """
        self._refresh_if_stale()
        mask = _stamp_edge_mask(
            self.snap.indexer, self.snap.csr, self.emask, faults
        )
        self._use_emask = True
        self._use_vmask = False
        return mask

    def clear_faults(self) -> None:
        """Return to the fault-free scenario (O(1))."""
        self._use_vmask = False
        self._use_emask = False

    def stamp(self, faults: Iterable, fault_model: str = "vertex") -> None:
        """Stamp one scenario by fault model; empty means fault-free.

        The one-call form of the ``set_*``/``clear_faults`` trio that
        per-scenario consumers (oracle, router) loop on:
        ``fault_model`` is ``'vertex'`` or ``'edge'``, and an empty (or
        ``None``) fault set clears the scenario entirely.
        """
        if not faults:
            self.clear_faults()
        elif fault_model == "vertex":
            self.set_vertex_faults(faults)
        elif fault_model == "edge":
            self.set_edge_faults(faults)
        else:
            raise ValueError(
                f"fault model must be 'vertex' or 'edge', got "
                f"{fault_model!r}"
            )

    # ------------------------------------------------------------- #
    # Queries
    # ------------------------------------------------------------- #

    def distances_from(self, source: Node) -> Dict[Node, float]:
        """All distances from ``source`` under the stamped scenario.

        The CSR twin of ``dijkstra(view, source)``: reachable surviving
        nodes map to their distance, everything else is absent.  Unit
        snapshots run hop-BFS under ``search="auto"`` (identical values
        -- unit distances are exact small-integer floats); otherwise the
        resolved weighted engine (heap or bucket) runs.
        """
        self._refresh_if_stale()
        iu = self._source_index(source)
        nodes = self._nodes
        engine = sssp_engine(self.search, self.snap.profile)
        if engine == "bfs":
            raw = csr_bfs_distances(
                self.snap.csr, iu, workspace=self._bfs(),
                vertex_mask=self._vmask(), edge_mask=self._emask(),
            )
            return {nodes[i]: float(d) for i, d in raw.items()}
        raw = csr_dijkstra(
            self.snap.csr, iu, workspace=self._dij(),
            vertex_mask=self._vmask(), edge_mask=self._emask(),
            search=engine, max_weight=self.snap.max_weight,
        )
        return {nodes[i]: d for i, d in raw.items()}

    def distance(self, u: Node, v: Node) -> float:
        """The u-v distance under the stamped scenario, or ``inf``.

        Early-exits on the target; mirrors
        ``dijkstra(view, u, target=v).get(v, INFINITY)``.
        """
        self._refresh_if_stale()
        iu = self._source_index(u)
        iv = self.snap.indexer.get(v)
        if iv is None or (self._use_vmask and iv in self.vmask):
            return INFINITY  # target not in the surviving view
        if iu == iv:
            return 0.0
        engine = pair_engine(self.search, self.snap.profile)
        if engine == "bfs":
            path = csr_bounded_bfs_path(
                self.snap.csr, iu, iv, self.snap.csr.num_nodes,
                workspace=self._bfs(),
                vertex_mask=self._vmask(), edge_mask=self._emask(),
            )
            return INFINITY if path is None else float(len(path) - 1)
        return csr_weighted_distance(
            self.snap.csr, iu, iv, workspace=self._dij(),
            vertex_mask=self._vmask(), edge_mask=self._emask(),
            search=engine, max_weight=self.snap.max_weight,
        )

    def path(self, u: Node, v: Node) -> Optional[List[Node]]:
        """A minimum-weight surviving u-v path, or ``None``.

        Node-for-node identical to ``shortest_path(view, u, v)`` (the
        Dijkstra path variants reproduce the dict backend's
        tie-breaking), so it is used for paths even on unit snapshots.
        """
        self._refresh_if_stale()
        indexer = self.snap.indexer
        iu, iv = indexer.get(u), indexer.get(v)
        if iu is None:
            raise KeyError(f"source {u!r} not in graph")
        if iv is None:
            raise KeyError(f"target {v!r} not in graph")
        path = csr_bounded_dijkstra_path(
            self.snap.csr, iu, iv, workspace=self._dij(),
            vertex_mask=self._vmask(), edge_mask=self._emask(),
            search=path_engine(self.search, self.snap.profile),
            max_weight=self.snap.max_weight,
        )
        if path is None:
            return None
        nodes = self._nodes
        return [nodes[i] for i in path]

    def parents_toward(self, root: Node) -> Dict[Node, Node]:
        """Shortest-path-tree parents rooted at ``root``.

        Maps each reachable surviving node to its predecessor on the
        tree -- i.e. its next hop *toward* ``root`` -- matching the dict
        backend's destination-rooted Dijkstra (strict-improvement
        predecessor updates, push-order tie-breaks).  Unit snapshots use
        BFS parents, which coincide exactly: with equal weights the
        first discoverer wins under both disciplines.
        """
        self._refresh_if_stale()
        iroot = self._source_index(root, role="root")
        nodes = self._nodes
        engine = sssp_engine(self.search, self.snap.profile)
        if engine == "bfs":
            raw = csr_bfs_parents(
                self.snap.csr, iroot, workspace=self._bfs(),
                vertex_mask=self._vmask(), edge_mask=self._emask(),
            )
        else:
            raw = csr_dijkstra_parents(
                self.snap.csr, iroot, workspace=self._dij(),
                vertex_mask=self._vmask(), edge_mask=self._emask(),
                search=engine, max_weight=self.snap.max_weight,
            )
        return {nodes[i]: nodes[p] for i, p in raw.items()}

    # ------------------------------------------------------------- #
    # Batch plane (multi-source kernels)
    # ------------------------------------------------------------- #

    def distances_multi(
        self, sources: Iterable[Node]
    ) -> List[Dict[Node, float]]:
        """One :meth:`distances_from` dict per source, batched.

        The batch plane of the sweep: sources are validated exactly like
        :meth:`distances_from` (an unknown or faulted source raises
        ``KeyError``), repeated sources get independent -- identical --
        results, and an empty batch returns ``[]``.  Whenever the
        resolved engine has a multi-source kernel (BFS on unit
        snapshots, the Dial bucket sweep on integral ones) all roots of
        a chunk advance through one shared frontier, chunked at
        :data:`BATCH_ROOT_LIMIT` roots to bound label-plane memory;
        forced ``search="heap"`` and float-weighted snapshots fall back
        to a per-root loop.  Answers are bit-identical either way.
        """
        self._refresh_if_stale()
        srcs = list(sources)
        idx = [self._source_index(s) for s in srcs]
        engine = sssp_engine(self.search, self.snap.profile)
        if engine == "heap":
            return [self.distances_from(s) for s in srcs]
        nodes = self._nodes
        csr = self.snap.csr
        n = csr.num_nodes
        out: List[Dict[Node, float]] = []
        if engine == "bfs" and resolve_batch_accel() == "numpy":
            limit = max(BATCH_ROOT_LIMIT, NUMPY_BATCH_CELLS // max(1, n))
            for start in range(0, len(idx), limit):
                chunk = idx[start:start + limit]
                for vs, ds, _ in csr_bfs_multi_numpy(
                    csr, chunk, workspace=self._multi(),
                    vertex_mask=self._vmask(), edge_mask=self._emask(),
                    need_parents=False,
                ):
                    if self._ident:
                        out.append(dict(zip(vs, ds)))
                    else:
                        out.append(dict(zip(map(nodes.__getitem__, vs), ds)))
            return out
        ws = self._multi()
        for start in range(0, len(idx), BATCH_ROOT_LIMIT):
            chunk = idx[start:start + BATCH_ROOT_LIMIT]
            if engine == "bfs":
                reached = csr_bfs_multi(
                    csr, chunk, workspace=ws,
                    vertex_mask=self._vmask(), edge_mask=self._emask(),
                )
                depth = ws.depth
                base = 0
                for lst in reached:
                    out.append(
                        {nodes[v]: float(depth[base + v]) for v in lst}
                    )
                    base += n
            else:
                reached = csr_bucket_multi(
                    csr, chunk, workspace=ws,
                    vertex_mask=self._vmask(), edge_mask=self._emask(),
                    max_weight=self.snap.max_weight,
                )
                dist = ws.dist
                base = 0
                for lst in reached:
                    out.append({nodes[v]: dist[base + v] for v in lst})
                    base += n
        return out

    def parents_multi(
        self, roots: Iterable[Node]
    ) -> List[Dict[Node, Node]]:
        """One :meth:`parents_toward` dict per root, batched.

        Builds every destination-rooted shortest-path tree of the batch
        through the shared multi-source kernels (same chunking, engine
        fallback, and validation as :meth:`distances_multi`).  Each tree
        is bit-identical to a sequential :meth:`parents_toward` call --
        the per-root projection of the shared frontier preserves the
        first-discoverer / strict-improvement predecessor rule.
        """
        self._refresh_if_stale()
        rts = list(roots)
        idx = [self._source_index(r, role="root") for r in rts]
        engine = sssp_engine(self.search, self.snap.profile)
        if engine == "heap":
            return [self.parents_toward(r) for r in rts]
        nodes = self._nodes
        csr = self.snap.csr
        n = csr.num_nodes
        out: List[Dict[Node, Node]] = []
        if engine == "bfs" and resolve_batch_accel() == "numpy":
            limit = max(BATCH_ROOT_LIMIT, NUMPY_BATCH_CELLS // max(1, n))
            get = nodes.__getitem__
            for start in range(0, len(idx), limit):
                chunk = idx[start:start + limit]
                # Raw parent plane: the trees are dicts, so discovery
                # order is irrelevant and the kernel can skip its sort;
                # reached non-root cells are exactly those with a
                # non-negative parent (roots, masked, and unreachable
                # cells all carry -1).
                plane = csr_bfs_multi_numpy(
                    csr, chunk, workspace=self._multi(),
                    vertex_mask=self._vmask(), edge_mask=self._emask(),
                    need_depths=False, grouped=False,
                )
                if self._ident:
                    neg = (plane < 0).nonzero()[0]
                    if neg.size <= plane.size >> 2:
                        # Dense plane (the common case: a connected
                        # spanner under few faults reaches almost every
                        # cell): build each tree as one dict(zip(...))
                        # over the full row, then delete the few
                        # non-reached cells (root, masked, unreachable).
                        # Cheaper than extracting the reached cells'
                        # indices and gathering their values.
                        flat = plane.tolist()
                        cuts = neg.searchsorted(
                            [(r + 1) * n for r in range(len(chunk))]
                        ).tolist()
                        negl = neg.tolist()
                        a = base = 0
                        for r in range(len(chunk)):
                            d = dict(zip(nodes, flat[base:base + n]))
                            for c in negl[a:cuts[r]]:
                                del d[c - base]
                            a = cuts[r]
                            base += n
                            out.append(d)
                        continue
                    # Sparse plane: one shared pair stream consumed per
                    # root skips the per-root list-slice copies.
                    vs, ps, bounds = split_parent_plane(
                        plane, len(chunk), n)
                    pairs = zip(vs, ps)
                    for r in range(len(chunk)):
                        out.append(
                            dict(islice(pairs, bounds[r + 1] - bounds[r]))
                        )
                else:
                    vs, ps, bounds = split_parent_plane(
                        plane, len(chunk), n)
                    for r in range(len(chunk)):
                        a, b = bounds[r], bounds[r + 1]
                        out.append(
                            dict(zip(map(get, vs[a:b]), map(get, ps[a:b])))
                        )
            return out
        ws = self._multi()
        for start in range(0, len(idx), BATCH_ROOT_LIMIT):
            chunk = idx[start:start + BATCH_ROOT_LIMIT]
            if engine == "bfs":
                reached = csr_bfs_multi(
                    csr, chunk, workspace=ws,
                    vertex_mask=self._vmask(), edge_mask=self._emask(),
                )
            else:
                reached = csr_bucket_multi(
                    csr, chunk, workspace=ws,
                    vertex_mask=self._vmask(), edge_mask=self._emask(),
                    max_weight=self.snap.max_weight,
                )
            parent = ws.parent
            base = 0
            for lst in reached:
                # lst[0] is the root itself (parent -1); skip it.
                out.append(
                    {nodes[v]: nodes[parent[base + v]] for v in lst[1:]}
                )
                base += n
        return out

    # ------------------------------------------------------------- #
    # Internals
    # ------------------------------------------------------------- #

    def _source_index(self, u: Node, role: str = "source") -> int:
        """Translate a query source, raising like the dict backend."""
        iu = self.snap.indexer.get(u)
        if iu is None or (self._use_vmask and iu in self.vmask):
            raise KeyError(f"{role} {u!r} not in graph")
        return iu

    def _vmask(self) -> Optional[FaultMask]:
        return self.vmask if self._use_vmask else None

    def _emask(self) -> Optional[FaultMask]:
        return self.emask if self._use_emask else None

    def _bfs(self) -> BFSWorkspace:
        ws = self._bfs_ws
        if ws is None:
            ws = self._bfs_ws = BFSWorkspace(self.snap.csr.num_nodes)
        return ws

    def _dij(self) -> DijkstraWorkspace:
        ws = self._dij_ws
        if ws is None:
            ws = self._dij_ws = DijkstraWorkspace(self.snap.csr.num_nodes)
        return ws

    def _multi(self) -> MultiSourceWorkspace:
        ws = self._multi_ws
        if ws is None:
            ws = self._multi_ws = MultiSourceWorkspace()
        return ws

    def __repr__(self) -> str:
        return f"ScenarioSweep({self.snap!r})"


class DualCSRSnapshot:
    """G and H in CSR form over one shared node-index space, plus masks.

    The base of the verification sweeps and the availability sampler:
    two :class:`CSRSnapshot` builds sharing one
    :class:`~repro.graph.index.NodeIndexer` (so a vertex mask stamped
    with G-side indices is directly valid against H), one vertex mask
    (valid against both graphs) and one edge mask per graph (edge-id
    spaces are per-graph).  The ``set_*`` methods re-stamp in O(|F|).

    ``snap_g`` / ``snap_h`` accept already-frozen snapshots so a caller
    that holds one (e.g. :class:`repro.session.SpannerSession`) can
    assemble the dual without re-freezing; they must freeze exactly
    ``g`` / ``h`` and share one indexer.
    """

    __slots__ = (
        "snap_g", "snap_h", "g", "h", "indexer", "csr_g", "csr_h",
        "vmask", "emask_g", "emask_h",
    )

    def __init__(
        self,
        g: Graph,
        h: Graph,
        *,
        snap_g: Optional[CSRSnapshot] = None,
        snap_h: Optional[CSRSnapshot] = None,
    ) -> None:
        if snap_g is None:
            # Share the other side's indexer when one was supplied, so
            # either snapshot may be passed alone.
            snap_g = CSRSnapshot(
                g, indexer=None if snap_h is None else snap_h.indexer
            )
        elif snap_g.g is not g:
            raise ValueError("snap_g does not freeze g")
        if snap_h is None:
            snap_h = CSRSnapshot(h, indexer=snap_g.indexer)
        elif snap_h.g is not h:
            raise ValueError("snap_h does not freeze h")
        elif snap_h.indexer is not snap_g.indexer:
            raise ValueError(
                "snap_g and snap_h must share one NodeIndexer (the shared "
                "index space is what makes one vertex mask valid against "
                "both graphs)"
            )
        self.snap_g = snap_g
        self.snap_h = snap_h
        self.g = g
        self.h = h
        self.indexer = self.snap_g.indexer
        self.csr_g = self.snap_g.csr
        self.csr_h = self.snap_h.csr
        self.vmask = FaultMask(len(self.indexer))
        self.emask_g = FaultMask(self.csr_g.num_edges)
        self.emask_h = FaultMask(self.csr_h.num_edges)

    def set_vertex_faults(self, faults: Iterable[Node]) -> FaultMask:
        """Re-stamp the shared vertex mask with a new fault set.

        Unknown nodes are silently ignored, matching the lazy views
        (filtering something that is not there is a no-op).
        """
        return _stamp_vertex_mask(self.indexer, self.vmask, faults)

    def set_edge_faults(
        self, faults: Iterable[Edge]
    ) -> Tuple[FaultMask, FaultMask]:
        """Re-stamp both per-graph edge-id masks with a new fault set.

        Edges absent from a graph are ignored for that graph's mask,
        matching the lazy views.  Returns ``(mask_g, mask_h)``.
        """
        faults = list(faults)
        return (
            _stamp_edge_mask(self.indexer, self.csr_g, self.emask_g, faults),
            _stamp_edge_mask(self.indexer, self.csr_h, self.emask_h, faults),
        )

    def __repr__(self) -> str:
        return f"DualCSRSnapshot(g={self.csr_g!r}, h={self.csr_h!r})"
