"""Core undirected graph data structure (the dict backend).

The algorithms in this library spend nearly all of their time running
hop-bounded BFS over subgraphs with a handful of vertices or edges removed
(the fault sets of the paper).  A plain dict-of-dict adjacency structure is
both faster than heavier graph libraries for that access pattern and keeps
the semantics of ``G \\ F`` trivial to reason about.

Nodes may be any hashable object.  Edges are undirected and carry a float
weight (1.0 for unweighted graphs).  Self-loops are rejected -- spanners are
defined on simple graphs -- and parallel edges are impossible by
construction (re-adding an edge overwrites its weight).

Two execution backends share this public API:

* **dict** (this module + :mod:`repro.graph.views`): ``Graph`` holds
  dict-of-dict adjacency over arbitrary hashable nodes, and ``G \\ F`` is
  a lazy :class:`~repro.graph.views.GraphView` that filters neighbors on
  the fly.  Flexible, easy to reason about, and the reference semantics
  for everything else.
* **csr** (:mod:`repro.graph.index` + :mod:`repro.graph.csr`): nodes are
  mapped to dense integers by a :class:`~repro.graph.index.NodeIndexer`
  and adjacency lives in contiguous stdlib ``array`` buffers
  (:class:`~repro.graph.csr.CSRGraph` for frozen snapshots,
  :class:`~repro.graph.csr.CSRBuilder` for the greedy's growing spanner).
  Fault sets become O(1)-clear :class:`~repro.graph.csr.FaultMask` stamps
  and BFS scratch is preallocated in a
  :class:`~repro.graph.traversal.BFSWorkspace`.  This is the hot path the
  spanner constructions run on by default (``backend="csr"``); results
  are translated back to node objects, so callers only ever see this
  module's types.

``Graph`` remains the canonical in-memory representation: CSR structures
are *derived* from it (``CSRGraph.from_graph``), and both backends order
each node's neighbors identically (insertion order), which is what lets
the two backends produce bit-identical spanners.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, Optional, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


def edge_key(u: Node, v: Node) -> Edge:
    """Return a canonical (order-independent) tuple for the edge ``{u, v}``.

    Node pairs are ordered by ``<=`` when that yields a definite order;
    everything else -- incomparable types raising ``TypeError`` (``1`` vs
    ``"1"``) *and* partially ordered types where neither ``u <= v`` nor
    ``v <= u`` holds (disjoint ``frozenset`` nodes) -- falls back to a
    deterministic ``(type qualname, repr)`` ordering.  Ordering by
    ``repr`` alone is not deterministic for mixed-type graphs: two
    distinct nodes of different types can share a repr (e.g. the int
    ``1`` and a custom object printing ``1``), in which case the same
    physical edge would map to two different keys depending on mention
    order.  When even type and repr tie, ``id()`` breaks the tie, which
    is stable for the objects' lifetime -- all a canonical key needs
    within one graph.
    """
    try:
        if u <= v:  # type: ignore[operator]
            return (u, v)
        if v <= u:  # type: ignore[operator]
            return (v, u)
    except TypeError:
        pass
    ku = (type(u).__qualname__, repr(u))
    kv = (type(v).__qualname__, repr(v))
    if ku == kv:
        return (u, v) if id(u) <= id(v) else (v, u)
    return (u, v) if ku <= kv else (v, u)


class Graph:
    """An undirected, optionally weighted, simple graph.

    Examples
    --------
    >>> g = Graph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 3, weight=5.0)
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.weight(2, 3)
    5.0
    """

    __slots__ = ("_adj", "_num_edges", "mutations")

    def __init__(self, edges: Optional[Iterable[Tuple]] = None) -> None:
        """Create a graph, optionally from an iterable of edges.

        ``edges`` items may be ``(u, v)`` pairs or ``(u, v, weight)`` triples.
        """
        self._adj: Dict[Node, Dict[Node, float]] = {}
        self._num_edges = 0
        # Monotonic edge-mutation stamp: bumps on every add_edge /
        # remove_edge (weight overwrites included).  Consumers that
        # cache derived answers (oracle LRU, routing tables) compare it
        # to detect streaming updates; never reset, never decremented.
        self.mutations = 0
        if edges is not None:
            for item in edges:
                if len(item) == 2:
                    self.add_edge(item[0], item[1])
                elif len(item) == 3:
                    self.add_edge(item[0], item[1], weight=float(item[2]))
                else:
                    raise ValueError(
                        f"edge items must be (u, v) or (u, v, w); got {item!r}"
                    )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add_node(self, u: Node) -> None:
        """Add an isolated node (no-op if already present)."""
        if u not in self._adj:
            self._adj[u] = {}

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for u in nodes:
            self.add_node(u)

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with the given weight.

        Adding an existing edge overwrites its weight.  Self-loops raise
        ``ValueError`` because spanners are defined on simple graphs.
        """
        if u == v:
            raise ValueError(f"self-loop on node {u!r} is not allowed")
        if weight < 0:
            raise ValueError(f"negative edge weight {weight!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self.mutations += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raises ``KeyError`` if absent."""
        if u not in self._adj or v not in self._adj[u]:
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self.mutations += 1

    def remove_node(self, u: Node) -> None:
        """Remove node ``u`` and all incident edges; KeyError if absent."""
        if u not in self._adj:
            raise KeyError(f"node {u!r} not in graph")
        for v in list(self._adj[u]):
            self.remove_edge(u, v)
        del self._adj[u]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def has_node(self, u: Node) -> bool:
        """Whether node ``u`` is present."""
        return u in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """Weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph") from None

    def neighbors(self, u: Node) -> Iterator[Node]:
        """Iterate over the neighbors of ``u``."""
        return iter(self._adj[u])

    def neighbor_items(self, u: Node) -> Iterator[Tuple[Node, float]]:
        """Iterate over ``(neighbor, weight)`` pairs of ``u``."""
        return iter(self._adj[u].items())

    def degree(self, u: Node) -> int:
        """Degree of node ``u``."""
        return len(self._adj[u])

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as canonical ``(u, v)`` tuples."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def weighted_edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate over all edges as ``(u, v, weight)`` triples."""
        for u, v in self.edges():
            yield u, v, self._adj[u][v]

    @property
    def num_nodes(self) -> int:
        """Number of nodes (the paper's ``n``)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges (the paper's ``m``)."""
        return self._num_edges

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.weighted_edges())

    def is_unit_weighted(self, tol: float = 0.0) -> bool:
        """Whether every edge has weight exactly (or within ``tol`` of) 1."""
        return all(abs(w - 1.0) <= tol for _, _, w in self.weighted_edges())

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for the empty graph)."""
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def density(self) -> float:
        """Edge density m / C(n, 2), or 0.0 when n < 2."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return 2.0 * self._num_edges / (n * (n - 1))

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #

    def copy(self) -> "Graph":
        """Deep copy of the structure (nodes are shared, not copied)."""
        g = Graph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """The subgraph induced by ``nodes`` (the paper's ``G[C]``)."""
        keep = set(nodes)
        g = Graph()
        for u in keep:
            if u in self._adj:
                g.add_node(u)
        for u in keep:
            if u not in self._adj:
                continue
            for v, w in self._adj[u].items():
                if v in keep:
                    g.add_edge(u, v, weight=w)
        return g

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """Spanning subgraph with all nodes of ``self`` but only ``edges``."""
        g = Graph()
        g.add_nodes(self.nodes())
        for u, v in edges:
            g.add_edge(u, v, weight=self.weight(u, v))
        return g

    def spanning_skeleton(self) -> "Graph":
        """An empty spanning subgraph: all nodes of ``self``, no edges.

        This is the ``H <- (V, emptyset, w)`` initialization used by every
        greedy algorithm in the paper.
        """
        g = Graph()
        g.add_nodes(self.nodes())
        return g

    def unit_weighted(self) -> "Graph":
        """A copy of this graph with every edge weight set to 1."""
        g = Graph()
        g.add_nodes(self.nodes())
        for u, v in self.edges():
            g.add_edge(u, v, weight=1.0)
        return g

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __contains__(self, u: Node) -> bool:
        return u in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #

    @classmethod
    def from_adjacency(cls, adj: Dict[Node, Dict[Node, float]]) -> "Graph":
        """Build a graph from a dict-of-dict adjacency mapping.

        The mapping must be symmetric; asymmetry raises ``ValueError``.
        """
        g = cls()
        for u, nbrs in adj.items():
            g.add_node(u)
            for v, w in nbrs.items():
                if v not in adj or u not in adj[v]:
                    raise ValueError(f"asymmetric adjacency at ({u!r}, {v!r})")
                if adj[v][u] != w:
                    raise ValueError(
                        f"conflicting weights for edge ({u!r}, {v!r})"
                    )
                g.add_edge(u, v, weight=w)
        return g

    def to_networkx(self):  # pragma: no cover - convenience shim
        """Convert to a ``networkx.Graph`` (requires networkx installed)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.nodes())
        g.add_weighted_edges_from(self.weighted_edges())
        return g

    @classmethod
    def from_networkx(cls, nxg) -> "Graph":
        """Build from a ``networkx.Graph`` (weights default to 1)."""
        g = cls()
        g.add_nodes(nxg.nodes())
        for u, v, data in nxg.edges(data=True):
            g.add_edge(u, v, weight=float(data.get("weight", 1.0)))
        return g
