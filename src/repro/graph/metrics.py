"""Structural graph statistics.

Used by the CLI's ``info`` command and by experiment logs to
characterize workloads (a spanner result is only interpretable next to
the density/degree profile of its input).  Pure functions over the
:class:`~repro.graph.graph.Graph` protocol; nothing here mutates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.graph import Graph, Node
from repro.graph.traversal import bfs_distances, connected_components


@dataclass(frozen=True)
class DegreeStats:
    """Degree distribution summary."""

    minimum: int
    maximum: int
    mean: float
    median: float

    @classmethod
    def of(cls, g: Graph) -> "DegreeStats":
        degrees = sorted(g.degree(v) for v in g.nodes())
        if not degrees:
            return cls(0, 0, 0.0, 0.0)
        n = len(degrees)
        median = (
            float(degrees[n // 2])
            if n % 2
            else (degrees[n // 2 - 1] + degrees[n // 2]) / 2.0
        )
        return cls(
            minimum=degrees[0],
            maximum=degrees[-1],
            mean=sum(degrees) / n,
            median=median,
        )


def degree_histogram(g: Graph) -> Dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    hist: Dict[int, int] = {}
    for v in g.nodes():
        d = g.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def clustering_coefficient(g: Graph, v: Node) -> float:
    """Local clustering coefficient of ``v`` (0 for degree < 2).

    Fraction of neighbor pairs that are themselves adjacent -- high
    clustering means many triangles, i.e. many redundant 2-hop detours
    for a spanner to exploit.
    """
    neighbors = list(g.neighbors(v))
    d = len(neighbors)
    if d < 2:
        return 0.0
    links = 0
    for i in range(d):
        for j in range(i + 1, d):
            if g.has_edge(neighbors[i], neighbors[j]):
                links += 1
    return 2.0 * links / (d * (d - 1))


def average_clustering(g: Graph) -> float:
    """Mean local clustering coefficient over all nodes."""
    nodes = list(g.nodes())
    if not nodes:
        return 0.0
    return sum(clustering_coefficient(g, v) for v in nodes) / len(nodes)


def triangle_count(g: Graph) -> int:
    """Number of triangles (each counted once)."""
    count = 0
    order = {v: i for i, v in enumerate(sorted(g.nodes(), key=repr))}
    for u in g.nodes():
        higher = [v for v in g.neighbors(u) if order[v] > order[u]]
        for i in range(len(higher)):
            for j in range(i + 1, len(higher)):
                if g.has_edge(higher[i], higher[j]):
                    count += 1
    return count


def weight_stats(g: Graph) -> Tuple[float, float, float]:
    """(min, mean, max) edge weight; (0, 0, 0) for the edgeless graph."""
    weights = [w for _, _, w in g.weighted_edges()]
    if not weights:
        return (0.0, 0.0, 0.0)
    return (min(weights), sum(weights) / len(weights), max(weights))


def effective_diameter(
    g: Graph, percentile: float = 0.9, sample: Optional[int] = None
) -> float:
    """Hop distance covering ``percentile`` of connected pairs.

    More robust than the exact diameter on noisy random graphs.  When
    ``sample`` is given, only that many BFS sources (in sorted order)
    are used -- an approximation adequate for workload description.
    """
    if not 0.0 < percentile <= 1.0:
        raise ValueError(f"percentile must be in (0, 1], got {percentile}")
    nodes = sorted(g.nodes(), key=repr)
    if len(nodes) < 2:
        return 0.0
    sources = nodes if sample is None else nodes[:sample]
    distances: List[int] = []
    for s in sources:
        dist = bfs_distances(g, s)
        distances.extend(d for v, d in dist.items() if v != s)
    if not distances:
        return math.inf
    distances.sort()
    index = min(len(distances) - 1, int(percentile * len(distances)))
    return float(distances[index])


def summarize(g: Graph) -> Dict[str, float]:
    """One-call workload characterization (used by the CLI and logs)."""
    degrees = DegreeStats.of(g)
    lo, mean_w, hi = weight_stats(g)
    return {
        "nodes": float(g.num_nodes),
        "edges": float(g.num_edges),
        "components": float(len(connected_components(g))),
        "density": g.density(),
        "min_degree": float(degrees.minimum),
        "max_degree": float(degrees.maximum),
        "mean_degree": degrees.mean,
        "avg_clustering": average_clustering(g),
        "triangles": float(triangle_count(g)),
        "min_weight": lo,
        "mean_weight": mean_w,
        "max_weight": hi,
    }
