"""Traversal primitives: BFS, hop-bounded BFS, and Dijkstra.

These are the time-critical inner loops of the library.  The paper's
Algorithm 2 runs a BFS per iteration to find a path of at most ``t`` hops
between two terminals, so :func:`bounded_bfs_path` is written to terminate
as early as possible (stop at the hop budget, stop when the target is
reached) and to work directly on the lazy fault views from
:mod:`repro.graph.views` without materializing subgraphs.

All functions accept either a :class:`~repro.graph.graph.Graph` or any
object satisfying the :class:`~repro.graph.views.GraphView` protocol.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Union

from repro.graph.graph import Graph, Node
from repro.graph.views import GraphView, IdentityView

GraphLike = Union[Graph, GraphView]

INFINITY = math.inf


def _as_view(g: GraphLike) -> GraphLike:
    """Graphs already satisfy the view protocol; pass through unchanged."""
    return g


def bfs_distances(
    g: GraphLike, source: Node, max_hops: Optional[int] = None
) -> Dict[Node, int]:
    """Hop distances from ``source`` to every reachable node.

    ``max_hops`` truncates the search: nodes further than that many hops are
    simply absent from the result.  Unreachable nodes are likewise absent
    (callers treat missing entries as distance infinity).
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        d = dist[u]
        if max_hops is not None and d >= max_hops:
            continue
        for v in g.neighbors(u):
            if v not in dist:
                dist[v] = d + 1
                frontier.append(v)
    return dist


def bfs_tree(
    g: GraphLike, source: Node, max_hops: Optional[int] = None
) -> Dict[Node, Optional[Node]]:
    """BFS parent pointers from ``source`` (source maps to ``None``)."""
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    parent: Dict[Node, Optional[Node]] = {source: None}
    depth = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        d = depth[u]
        if max_hops is not None and d >= max_hops:
            continue
        for v in g.neighbors(u):
            if v not in parent:
                parent[v] = u
                depth[v] = d + 1
                frontier.append(v)
    return parent


def bounded_bfs_path(
    g: GraphLike, source: Node, target: Node, max_hops: int
) -> Optional[List[Node]]:
    """A path from ``source`` to ``target`` with at most ``max_hops`` edges.

    Returns the node sequence (including both endpoints) of a *shortest-hop*
    path, or ``None`` if no path within the budget exists.  This is the exact
    primitive the paper's Algorithm 2 invokes: "Run BFS to find a path P of
    length at most t from u to v in G \\ F if one exists."

    The search stops expanding as soon as the target is dequeued or the hop
    budget is exhausted, so the cost is O(m + n) worst case but typically far
    less on sparse spanner subgraphs.
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    if not g.has_node(target):
        raise KeyError(f"target {target!r} not in graph")
    if source == target:
        return [source]
    if max_hops <= 0:
        return None
    parent: Dict[Node, Optional[Node]] = {source: None}
    depth = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        d = depth[u]
        if d >= max_hops:
            # Every later entry is at least this deep; nothing can reach
            # the target within budget anymore.
            break
        for v in g.neighbors(u):
            if v in parent:
                continue
            parent[v] = u
            depth[v] = d + 1
            if v == target:
                return _reconstruct(parent, target)
            frontier.append(v)
    return None


def _reconstruct(
    parent: Dict[Node, Optional[Node]], target: Node
) -> List[Node]:
    """Walk parent pointers back from ``target`` to the BFS root."""
    path = [target]
    u = parent[target]
    while u is not None:
        path.append(u)
        u = parent[u]
    path.reverse()
    return path


def hop_distance(g: GraphLike, source: Node, target: Node) -> float:
    """Number of edges on a shortest-hop path, or ``inf`` if disconnected."""
    if source == target:
        if not g.has_node(source):
            raise KeyError(f"node {source!r} not in graph")
        return 0
    path = bounded_bfs_path(g, source, target, max_hops=_node_count(g))
    return INFINITY if path is None else len(path) - 1


def _node_count(g: GraphLike) -> int:
    return g.num_nodes


def dijkstra(
    g: GraphLike,
    source: Node,
    target: Optional[Node] = None,
    max_dist: Optional[float] = None,
) -> Dict[Node, float]:
    """Weighted shortest-path distances from ``source``.

    Stops early if ``target`` is settled or if distances exceed
    ``max_dist``.  Unreachable (or pruned) nodes are absent from the result.
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist: Dict[Node, float] = {}
    heap: List = [(0.0, 0, source)]
    counter = 1  # tie-break so heterogeneous node types never compare
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        if u == target:
            break
        for v, w in g.neighbor_items(u):
            if v in dist:
                continue
            nd = d + w
            if max_dist is not None and nd > max_dist:
                continue
            heapq.heappush(heap, (nd, counter, v))
            counter += 1
    return dist


def weighted_distance(g: GraphLike, source: Node, target: Node) -> float:
    """Weighted shortest-path distance, or ``inf`` if disconnected."""
    dist = dijkstra(g, source, target=target)
    return dist.get(target, INFINITY)


def shortest_path(
    g: GraphLike, source: Node, target: Node
) -> Optional[List[Node]]:
    """A minimum-weight path from ``source`` to ``target`` as a node list.

    Returns ``None`` when the endpoints are disconnected.  Uses Dijkstra
    with parent pointers (weights are non-negative by construction).
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    if not g.has_node(target):
        raise KeyError(f"target {target!r} not in graph")
    if source == target:
        return [source]
    parent: Dict[Node, Node] = {}
    best: Dict[Node, float] = {source: 0.0}
    done: Set[Node] = set()
    heap: List = [(0.0, 0, source)]
    counter = 1
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        for v, w in g.neighbor_items(u):
            if v in done:
                continue
            nd = d + w
            # heapq keeps stale entries; the `done` check discards them.
            if v not in best or nd < best[v]:
                best[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return None


def connected_components(g: GraphLike) -> List[Set[Node]]:
    """All connected components as a list of node sets."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in g.nodes():
        if start in seen:
            continue
        component = set(bfs_distances(g, start))
        seen |= component
        components.append(component)
    return components


def is_connected(g: GraphLike) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    nodes = list(g.nodes())
    if not nodes:
        return True
    return len(bfs_distances(g, nodes[0])) == len(nodes)


def eccentricity(g: GraphLike, source: Node) -> float:
    """Max hop distance from ``source`` to any node, ``inf`` if disconnected."""
    dist = bfs_distances(g, source)
    if len(dist) != g.num_nodes:
        return INFINITY
    return max(dist.values(), default=0)


def hop_diameter(g: GraphLike) -> float:
    """Unweighted (hop) diameter; ``inf`` if the graph is disconnected."""
    best = 0.0
    for u in g.nodes():
        ecc = eccentricity(g, u)
        if ecc == INFINITY:
            return INFINITY
        best = max(best, ecc)
    return best
