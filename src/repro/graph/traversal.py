"""Traversal primitives: BFS, hop-bounded BFS, and Dijkstra.

These are the time-critical inner loops of the library.  The paper's
Algorithm 2 runs a BFS per iteration to find a path of at most ``t`` hops
between two terminals, so :func:`bounded_bfs_path` is written to terminate
as early as possible (stop at the hop budget, stop when the target is
reached) and to work directly on the lazy fault views from
:mod:`repro.graph.views` without materializing subgraphs.

Two execution backends live here:

* The dict backend: every function below the "Dict backend" marker accepts
  a :class:`~repro.graph.graph.Graph` or any object satisfying the
  :class:`~repro.graph.views.GraphView` protocol, and works node-object by
  node-object.  It handles arbitrary views and stays the reference
  implementation.
* The CSR backend: :func:`csr_bfs_distances` / :func:`csr_bounded_bfs_path`
  run the same searches over a :class:`~repro.graph.csr.CSRGraph` (or
  growing :class:`~repro.graph.csr.CSRBuilder`) using integer node ids,
  generation-stamped visited bytes, and preallocated parent/depth/queue
  buffers owned by a :class:`BFSWorkspace` -- so a full greedy run makes
  zero per-call allocations of visited structures.  Fault sets arrive as
  :class:`~repro.graph.csr.FaultMask` stamps rather than views.  The
  weighted twins -- :func:`csr_dijkstra`, :func:`csr_weighted_distance`,
  :func:`csr_bounded_dijkstra_path` and
  :func:`csr_bounded_dijkstra_path_edges` -- apply the same discipline to
  binary-heap Dijkstra through a :class:`DijkstraWorkspace` (preallocated
  distance/predecessor arrays, generation-stamped labels, fault-mask
  pre-stamping, early exit on the target, ``max_dist`` pruning).

Both backends visit neighbors in identical order (CSR rows preserve dict
insertion order) and break distance ties identically (heap entries carry
an insertion counter), so they return the *same* paths, not just paths of
the same length.
"""

from __future__ import annotations

import heapq
import math
from array import array
from collections import deque
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.graph.csr import CSRLike, FaultMask
from repro.graph.graph import Graph, Node
from repro.graph.views import GraphView

#: Anything the dict-backend traversals accept: a concrete ``Graph`` or a
#: read-only fault view.  CSR graphs do NOT satisfy this protocol -- they
#: use the dedicated ``csr_*`` entry points below.
GraphLike = Union[Graph, GraphView]

INFINITY = math.inf


def bfs_distances(
    g: GraphLike, source: Node, max_hops: Optional[int] = None
) -> Dict[Node, int]:
    """Hop distances from ``source`` to every reachable node.

    ``max_hops`` truncates the search: nodes further than that many hops are
    simply absent from the result.  Unreachable nodes are likewise absent
    (callers treat missing entries as distance infinity).
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        d = dist[u]
        if max_hops is not None and d >= max_hops:
            continue
        for v in g.neighbors(u):
            if v not in dist:
                dist[v] = d + 1
                frontier.append(v)
    return dist


def bfs_tree(
    g: GraphLike, source: Node, max_hops: Optional[int] = None
) -> Dict[Node, Optional[Node]]:
    """BFS parent pointers from ``source`` (source maps to ``None``)."""
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    parent: Dict[Node, Optional[Node]] = {source: None}
    depth = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        d = depth[u]
        if max_hops is not None and d >= max_hops:
            continue
        for v in g.neighbors(u):
            if v not in parent:
                parent[v] = u
                depth[v] = d + 1
                frontier.append(v)
    return parent


def bounded_bfs_path(
    g: GraphLike, source: Node, target: Node, max_hops: int
) -> Optional[List[Node]]:
    """A path from ``source`` to ``target`` with at most ``max_hops`` edges.

    Returns the node sequence (including both endpoints) of a *shortest-hop*
    path, or ``None`` if no path within the budget exists.  This is the exact
    primitive the paper's Algorithm 2 invokes: "Run BFS to find a path P of
    length at most t from u to v in G \\ F if one exists."

    The search stops expanding as soon as the target is dequeued or the hop
    budget is exhausted, so the cost is O(m + n) worst case but typically far
    less on sparse spanner subgraphs.
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    if not g.has_node(target):
        raise KeyError(f"target {target!r} not in graph")
    if source == target:
        return [source]
    if max_hops <= 0:
        return None
    parent: Dict[Node, Optional[Node]] = {source: None}
    depth = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        d = depth[u]
        if d >= max_hops:
            # Every later entry is at least this deep; nothing can reach
            # the target within budget anymore.
            break
        for v in g.neighbors(u):
            if v in parent:
                continue
            parent[v] = u
            depth[v] = d + 1
            if v == target:
                return _reconstruct(parent, target)
            frontier.append(v)
    return None


def _reconstruct(
    parent: Dict[Node, Optional[Node]], target: Node
) -> List[Node]:
    """Walk parent pointers back from ``target`` to the BFS root."""
    path = [target]
    u = parent[target]
    while u is not None:
        path.append(u)
        u = parent[u]
    path.reverse()
    return path


def hop_distance(g: GraphLike, source: Node, target: Node) -> float:
    """Number of edges on a shortest-hop path, or ``inf`` if disconnected."""
    if source == target:
        if not g.has_node(source):
            raise KeyError(f"node {source!r} not in graph")
        return 0
    path = bounded_bfs_path(g, source, target, max_hops=g.num_nodes)
    return INFINITY if path is None else len(path) - 1


# --------------------------------------------------------------------- #
# CSR backend: array-based BFS with a reusable workspace
# --------------------------------------------------------------------- #


class BFSWorkspace:
    """Preallocated scratch buffers for the CSR BFS primitives.

    One workspace serves an unbounded number of BFS calls over graphs of
    any (growing) size: ``ensure`` only ever extends the buffers, and a
    generation-stamped visited array makes per-call reset O(1).  The
    workspace also owns a vertex :class:`FaultMask` and an edge
    :class:`FaultMask` so callers running the LBC loop need no further
    allocations at all.

    Not thread-safe; use one workspace per thread.
    """

    __slots__ = (
        "seen", "seen_gen", "parent", "parent_eid", "depth", "queue",
        "frontier", "vertex_mask", "edge_mask",
    )

    def __init__(self, num_nodes: int = 0, num_edges: int = 0) -> None:
        self.seen = bytearray(num_nodes)
        self.seen_gen = 1
        self.parent = [0] * num_nodes
        self.parent_eid = [0] * num_nodes
        self.depth = [0] * num_nodes
        self.queue = [0] * num_nodes
        self.frontier = [0] * num_nodes
        self.vertex_mask = FaultMask(num_nodes)
        self.edge_mask = FaultMask(num_edges)

    def ensure(self, num_nodes: int, num_edges: int = 0) -> None:
        """Grow every buffer to cover the given node/edge counts."""
        short = num_nodes - len(self.seen)
        if short > 0:
            self.seen.extend(bytes(short))
            self.parent.extend([0] * short)
            self.parent_eid.extend([0] * short)
            self.depth.extend([0] * short)
            self.queue.extend([0] * short)
            self.frontier.extend([0] * short)
            self.vertex_mask.ensure(num_nodes)
        self.edge_mask.ensure(num_edges)

    def next_generation(self) -> int:
        """Advance and return the visited generation (O(1) amortized)."""
        self.seen_gen += 1
        if self.seen_gen == 256:
            self.seen[:] = bytes(len(self.seen))
            self.seen_gen = 1
        return self.seen_gen


def _csr_search(
    csr: CSRLike,
    source: int,
    target: int,
    max_hops: float,
    ws: BFSWorkspace,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
    need_edge_ids: bool,
) -> bool:
    """Core hop-bounded BFS to a target over CSR adjacency.

    Level-synchronized: the two preallocated buffers ``ws.queue`` /
    ``ws.frontier`` ping-pong as current/next frontier, which keeps the
    inner loop free of per-node depth bookkeeping.  Visit order is
    identical to FIFO BFS, so paths match the dict backend node for node.

    Two structural savings relative to a naive queue BFS:

    * Faulted *vertices* are pre-stamped into the visited array (O(|F|)
      per call, |F| <= alpha * t), so the per-neighbor inner loop
      carries no vertex-mask test at all; only edge masks are tested.
    * The final level is never expanded, so its nodes are not stamped or
      enqueued either -- they can only matter by *being* the target, and
      a bare equality scan detects that.  For the hop bounds the LBC
      loop uses, the final level dominates the edge traversals, so this
      removes most of the per-neighbor work of a typical call.

    Fills ``ws.parent`` (and ``ws.parent_eid`` when ``need_edge_ids``)
    for every node stamped with the current generation; returns whether
    ``target`` was reached within ``max_hops`` levels.
    """
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    seen = ws.seen
    parent = ws.parent
    cur = ws.queue
    nxt = ws.frontier
    rows = csr.neighbors
    if vertex_mask is not None:
        for b in vertex_mask.members:
            seen[b] = gen
    seen[source] = gen
    parent[source] = -1
    cur[0] = source
    cur_len = 1
    remaining = max_hops
    if edge_mask is not None:
        eid_rows = csr.edge_id_rows
        parent_eid = ws.parent_eid
        parent_eid[source] = -1
        estamp, egen = edge_mask.stamp, edge_mask.gen
        while cur_len and remaining > 1:
            remaining -= 1
            nxt_len = 0
            for qi in range(cur_len):
                u = cur[qi]
                row = rows[u]
                erow = eid_rows[u]
                for j in range(len(row)):
                    v = row[j]
                    if seen[v] == gen:
                        continue
                    e = erow[j]
                    if estamp[e] == egen:
                        continue
                    seen[v] = gen
                    parent[v] = u
                    parent_eid[v] = e
                    if v == target:
                        return True
                    nxt[nxt_len] = v
                    nxt_len += 1
            cur, nxt = nxt, cur
            cur_len = nxt_len
        if cur_len and remaining == 1:
            for qi in range(cur_len):
                u = cur[qi]
                row = rows[u]
                erow = eid_rows[u]
                for j in range(len(row)):
                    if row[j] == target and estamp[erow[j]] != egen:
                        parent[target] = u
                        parent_eid[target] = erow[j]
                        return True
    elif need_edge_ids:
        eid_rows = csr.edge_id_rows
        parent_eid = ws.parent_eid
        parent_eid[source] = -1
        while cur_len and remaining > 1:
            remaining -= 1
            nxt_len = 0
            for qi in range(cur_len):
                u = cur[qi]
                row = rows[u]
                erow = eid_rows[u]
                for j in range(len(row)):
                    v = row[j]
                    if seen[v] == gen:
                        continue
                    seen[v] = gen
                    parent[v] = u
                    parent_eid[v] = erow[j]
                    if v == target:
                        return True
                    nxt[nxt_len] = v
                    nxt_len += 1
            cur, nxt = nxt, cur
            cur_len = nxt_len
        if cur_len and remaining == 1:
            for qi in range(cur_len):
                u = cur[qi]
                row = rows[u]
                for j in range(len(row)):
                    if row[j] == target:
                        parent[target] = u
                        parent_eid[target] = eid_rows[u][j]
                        return True
    else:
        while cur_len and remaining > 1:
            remaining -= 1
            nxt_len = 0
            for qi in range(cur_len):
                u = cur[qi]
                for v in rows[u]:
                    if seen[v] == gen:
                        continue
                    seen[v] = gen
                    parent[v] = u
                    if v == target:
                        return True
                    nxt[nxt_len] = v
                    nxt_len += 1
            cur, nxt = nxt, cur
            cur_len = nxt_len
        if cur_len and remaining == 1:
            for qi in range(cur_len):
                u = cur[qi]
                if target in rows[u]:
                    parent[target] = u
                    return True
    return False


def _csr_check_terminal(
    csr: CSRLike, i: int, vertex_mask: Optional[FaultMask], role: str
) -> None:
    """Mirror the dict backend's KeyErrors for bad/faulted terminals."""
    if not 0 <= i < csr.num_nodes:
        raise KeyError(f"{role} index {i} not in graph")
    if vertex_mask is not None and i in vertex_mask:
        raise KeyError(f"{role} index {i} is faulted")


def csr_bfs_distances(
    csr: CSRLike,
    source: int,
    max_hops: Optional[int] = None,
    workspace: Optional[BFSWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Dict[int, int]:
    """Hop distances from node index ``source``: CSR twin of
    :func:`bfs_distances`.

    Returns ``{node_index: hops}`` for every reachable (unmasked) node
    within ``max_hops``; missing entries mean unreachable/pruned, exactly
    like the dict variant.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    ws = workspace if workspace is not None else BFSWorkspace()
    ws.ensure(csr.num_nodes, csr.num_edges)
    budget = INFINITY if max_hops is None else max_hops
    gen = ws.next_generation()
    seen = ws.seen
    depth = ws.depth
    cur = ws.queue
    nxt = ws.frontier
    rows = csr.neighbors
    eid_rows = csr.edge_id_rows
    vstamp = vgen = estamp = egen = None
    if vertex_mask is not None:
        vstamp, vgen = vertex_mask.stamp, vertex_mask.gen
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
    seen[source] = gen
    depth[source] = 0
    cur[0] = source
    cur_len = 1
    level = 0
    reached = [source]
    while cur_len and level < budget:
        level += 1
        nxt_len = 0
        for qi in range(cur_len):
            u = cur[qi]
            row = rows[u]
            erow = eid_rows[u]
            for j in range(len(row)):
                v = row[j]
                if seen[v] == gen:
                    continue
                if vstamp is not None and vstamp[v] == vgen:
                    continue
                if estamp is not None and estamp[erow[j]] == egen:
                    continue
                seen[v] = gen
                depth[v] = level
                reached.append(v)
                nxt[nxt_len] = v
                nxt_len += 1
        cur, nxt = nxt, cur
        cur_len = nxt_len
    # O(reached), not O(n): a bounded query on a huge graph pays only
    # for what it touched.
    return {i: depth[i] for i in reached}


def csr_bfs_parents(
    csr: CSRLike,
    source: int,
    workspace: Optional[BFSWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Dict[int, int]:
    """BFS parent pointers from ``source`` over CSR adjacency.

    Returns ``{node_index: parent_index}`` for every reachable
    (unmasked) node other than the source itself -- each node's parent
    is its *first discoverer* in FIFO order.  On unit-weighted graphs
    this is exactly the shortest-path tree the dict backend's
    destination-rooted Dijkstra produces (strict-improvement updates
    mean the first discoverer wins there too), which is what lets the
    routing layer build next-hop tables from BFS on unit spanners.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    ws = workspace if workspace is not None else BFSWorkspace()
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    seen = ws.seen
    parent = ws.parent
    cur = ws.queue
    nxt = ws.frontier
    rows = csr.neighbors
    eid_rows = csr.edge_id_rows
    vstamp = vgen = estamp = egen = None
    if vertex_mask is not None:
        vstamp, vgen = vertex_mask.stamp, vertex_mask.gen
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
    seen[source] = gen
    cur[0] = source
    cur_len = 1
    reached: List[int] = []
    while cur_len:
        nxt_len = 0
        for qi in range(cur_len):
            u = cur[qi]
            row = rows[u]
            erow = eid_rows[u]
            for j in range(len(row)):
                v = row[j]
                if seen[v] == gen:
                    continue
                if vstamp is not None and vstamp[v] == vgen:
                    continue
                if estamp is not None and estamp[erow[j]] == egen:
                    continue
                seen[v] = gen
                parent[v] = u
                reached.append(v)
                nxt[nxt_len] = v
                nxt_len += 1
        cur, nxt = nxt, cur
        cur_len = nxt_len
    return {i: parent[i] for i in reached}


def csr_bounded_bfs_path(
    csr: CSRLike,
    source: int,
    target: int,
    max_hops: int,
    workspace: Optional[BFSWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Optional[List[int]]:
    """CSR twin of :func:`bounded_bfs_path`, over node indices.

    Returns the node-index sequence of a shortest-hop ``source -> target``
    path avoiding masked vertices/edges, or ``None`` when no path of at
    most ``max_hops`` edges exists.  With a shared ``workspace`` this
    performs no per-call allocation beyond the returned path itself.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    _csr_check_terminal(csr, target, vertex_mask, "target")
    if source == target:
        return [source]
    if max_hops <= 0:
        return None
    ws = workspace if workspace is not None else BFSWorkspace()
    found = _csr_search(
        csr, source, target, max_hops, ws, vertex_mask, edge_mask, False
    )
    return _csr_path(ws, target) if found else None


def _csr_path(ws: BFSWorkspace, target: int) -> List[int]:
    """Walk ``ws.parent`` pointers back from a just-reached ``target``."""
    path = [target]
    parent = ws.parent
    u = parent[target]
    while u != -1:
        path.append(u)
        u = parent[u]
    path.reverse()
    return path


def csr_bounded_bfs_path_edges(
    csr: CSRLike,
    source: int,
    target: int,
    max_hops: int,
    workspace: Optional[BFSWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Optional[Tuple[List[int], List[int]]]:
    """Like :func:`csr_bounded_bfs_path` but also returns the edge ids.

    Returns ``(nodes, edge_ids)`` with ``len(edge_ids) == len(nodes) - 1``
    (the id of each traversed edge, in path order) -- what the edge-fault
    LBC loop needs to stamp a path into its fault mask without any
    endpoint->id lookups.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    _csr_check_terminal(csr, target, vertex_mask, "target")
    if source == target:
        return [source], []
    if max_hops <= 0:
        return None
    ws = workspace if workspace is not None else BFSWorkspace()
    found = _csr_search(
        csr, source, target, max_hops, ws, vertex_mask, edge_mask, True
    )
    return _csr_path_edges(ws, target) if found else None


def _csr_path_edges(
    ws: BFSWorkspace, target: int
) -> Tuple[List[int], List[int]]:
    """Like :func:`_csr_path` but also collects the traversed edge ids."""
    nodes = [target]
    eids: List[int] = []
    parent = ws.parent
    parent_eid = ws.parent_eid
    u = target
    while parent[u] != -1:
        eids.append(parent_eid[u])
        u = parent[u]
        nodes.append(u)
    nodes.reverse()
    eids.reverse()
    return nodes, eids


# --------------------------------------------------------------------- #
# CSR backend: binary-heap Dijkstra with a reusable workspace
# --------------------------------------------------------------------- #


class DijkstraWorkspace:
    """Preallocated scratch buffers for the CSR Dijkstra primitives.

    The weighted analogue of :class:`BFSWorkspace`: one workspace serves
    an unbounded number of Dijkstra calls over graphs of any (growing)
    size.  ``ensure`` only ever extends the buffers, and two
    generation-stamped byte arrays (``label``: the node has a valid
    tentative distance; ``settled``: the node's distance is final) make
    the per-call reset O(1).  Faulted vertices are pre-stamped as settled
    so the relaxation inner loop never tests a vertex mask.  The
    workspace also owns a vertex and an edge :class:`FaultMask`, so
    callers sweeping many fault sets need no further allocation beyond
    the heap itself (a plain list, rebuilt per call -- its size is
    bounded by the number of relaxations, and pushing to a fresh list is
    cheaper than zeroing a preallocated arena).

    Not thread-safe; use one workspace per thread.
    """

    __slots__ = (
        "dist", "pred", "pred_eid", "label", "settled", "gen",
        "vertex_mask", "edge_mask",
    )

    def __init__(self, num_nodes: int = 0, num_edges: int = 0) -> None:
        self.dist = array("d", bytes(8 * num_nodes))
        self.pred = [0] * num_nodes
        self.pred_eid = [0] * num_nodes
        self.label = bytearray(num_nodes)
        self.settled = bytearray(num_nodes)
        self.gen = 1
        self.vertex_mask = FaultMask(num_nodes)
        self.edge_mask = FaultMask(num_edges)

    def ensure(self, num_nodes: int, num_edges: int = 0) -> None:
        """Grow every buffer to cover the given node/edge counts."""
        short = num_nodes - len(self.label)
        if short > 0:
            self.dist.extend(array("d", bytes(8 * short)))
            self.pred.extend([0] * short)
            self.pred_eid.extend([0] * short)
            self.label.extend(bytes(short))
            self.settled.extend(bytes(short))
            self.vertex_mask.ensure(num_nodes)
        self.edge_mask.ensure(num_edges)

    def next_generation(self) -> int:
        """Advance and return the stamp generation (O(1) amortized)."""
        self.gen += 1
        if self.gen == 256:
            self.label[:] = bytes(len(self.label))
            self.settled[:] = bytes(len(self.settled))
            self.gen = 1
        return self.gen


def _csr_dijkstra(
    csr: CSRLike,
    source: int,
    target: Optional[int],
    max_dist: float,
    ws: DijkstraWorkspace,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
    need_edge_ids: bool = False,
) -> List[int]:
    """Core Dijkstra over CSR adjacency; returns settled nodes in order.

    The relaxation mirrors the dict backend's :func:`shortest_path`
    (update the predecessor only on a *strict* improvement, heap ties
    broken by push order), so reconstructed paths match the dict backend
    node for node.  Distances in ``ws.dist`` are valid exactly for the
    returned nodes; ``ws.pred`` (and, when ``need_edge_ids``,
    ``ws.pred_eid``) hold the shortest-path tree (``-1`` at the source).

    Structural savings mirror :func:`_csr_search`:

    * Faulted vertices are pre-stamped as settled (O(|F|) per call), so
      the relaxation loop carries no vertex-mask test; only edge masks
      are tested, and only when one is present.  Without an edge mask
      the loop never touches edge ids at all: weights are read from the
      per-incidence ``weight_rows``.
    * When ``target`` is given the search stops the moment it is settled
      (its distance is already final), and ``max_dist`` prunes every
      relaxation past the budget, keeping the heap small on the truncated
      queries the greedy and verification sweeps issue.

    Callers that need only the s-t distance should prefer
    :func:`_csr_probe`, which skips the settled-list and tree
    bookkeeping entirely.
    """
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    dist = ws.dist
    settled = ws.settled
    rows = csr.neighbors
    wrows = csr.weight_rows
    if vertex_mask is not None:
        for b in vertex_mask.members:
            settled[b] = gen
    label = ws.label
    dist[source] = 0.0
    label[source] = gen
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    counter = 1
    reached: List[int] = []
    push = heapq.heappush
    pop = heapq.heappop
    estamp = egen = None
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
    pred = ws.pred
    pred[source] = -1
    if edge_mask is not None or need_edge_ids:
        eid_rows = csr.edge_id_rows
        pred_eid = ws.pred_eid
        pred_eid[source] = -1
        while heap:
            d, _, u = pop(heap)
            if settled[u] == gen:
                continue  # stale heap entry (or pre-stamped fault)
            settled[u] = gen
            reached.append(u)
            if u == target:
                break
            for v, e, w in zip(rows[u], eid_rows[u], wrows[u]):
                if settled[v] == gen:
                    continue
                if estamp is not None and estamp[e] == egen:
                    continue
                nd = d + w
                if nd > max_dist:
                    continue
                if label[v] != gen or nd < dist[v]:
                    label[v] = gen
                    dist[v] = nd
                    pred[v] = u
                    pred_eid[v] = e
                    push(heap, (nd, counter, v))
                    counter += 1
    else:
        while heap:
            d, _, u = pop(heap)
            if settled[u] == gen:
                continue  # stale heap entry (or pre-stamped fault)
            settled[u] = gen
            reached.append(u)
            if u == target:
                break
            for v, w in zip(rows[u], wrows[u]):
                if settled[v] == gen:
                    continue
                nd = d + w
                if nd > max_dist:
                    continue
                if label[v] != gen or nd < dist[v]:
                    label[v] = gen
                    dist[v] = nd
                    pred[v] = u
                    push(heap, (nd, counter, v))
                    counter += 1
    return reached


def _csr_probe(
    csr: CSRLike,
    source: int,
    target: int,
    max_dist: float,
    ws: DijkstraWorkspace,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
) -> float:
    """Leanest Dijkstra variant: the s-t distance, or ``inf``.

    The per-probe workhorse of the verification sweeps and the classic
    greedy: no settled list, no predecessor stores -- just the
    generation-stamped label/settled discipline and the heap.  Returns
    the exact distance when ``target`` is reachable within ``max_dist``
    and ``INFINITY`` otherwise (distances are identical to
    :func:`_csr_dijkstra`; ties cannot change a minimum).
    """
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    dist = ws.dist
    label = ws.label
    settled = ws.settled
    rows = csr.neighbors
    wrows = csr.weight_rows
    if vertex_mask is not None:
        for b in vertex_mask.members:
            settled[b] = gen
    dist[source] = 0.0
    label[source] = gen
    # (dist, node) pairs suffice here: both elements are always
    # comparable, and tie order cannot change the minimum distance the
    # probe returns (unlike the path variants, which carry a push
    # counter to reproduce the dict backend's tie-breaking).
    heap: List[Tuple[float, int]] = [(0.0, source)]
    push = heapq.heappush
    pop = heapq.heappop
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
        eid_rows = csr.edge_id_rows
        while heap:
            d, u = pop(heap)
            if settled[u] == gen:
                continue  # stale heap entry (or pre-stamped fault)
            if u == target:
                return d  # settled distance is final; row scan unneeded
            settled[u] = gen
            for v, e, w in zip(rows[u], eid_rows[u], wrows[u]):
                if settled[v] == gen or estamp[e] == egen:
                    continue
                nd = d + w
                if nd > max_dist:
                    continue
                if label[v] != gen or nd < dist[v]:
                    label[v] = gen
                    dist[v] = nd
                    push(heap, (nd, v))
    else:
        while heap:
            d, u = pop(heap)
            if settled[u] == gen:
                continue
            if u == target:
                return d
            settled[u] = gen
            for v, w in zip(rows[u], wrows[u]):
                if settled[v] == gen:
                    continue
                nd = d + w
                if nd > max_dist:
                    continue
                if label[v] != gen or nd < dist[v]:
                    label[v] = gen
                    dist[v] = nd
                    push(heap, (nd, v))
    return INFINITY


def csr_dijkstra(
    csr: CSRLike,
    source: int,
    target: Optional[int] = None,
    max_dist: Optional[float] = None,
    workspace: Optional[DijkstraWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Dict[int, float]:
    """Weighted distances from node index ``source``: CSR twin of
    :func:`dijkstra`.

    Returns ``{node_index: distance}`` for every node settled before the
    search stopped (target reached, budget exceeded, or graph
    exhausted); missing entries mean unreachable/pruned, exactly like
    the dict variant.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    ws = workspace if workspace is not None else DijkstraWorkspace()
    budget = INFINITY if max_dist is None else max_dist
    reached = _csr_dijkstra(
        csr, source, target, budget, ws, vertex_mask, edge_mask
    )
    dist = ws.dist
    # O(settled), not O(n): a truncated query pays only for what it
    # touched.
    return {i: dist[i] for i in reached}


def csr_dijkstra_parents(
    csr: CSRLike,
    source: int,
    workspace: Optional[DijkstraWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Dict[int, int]:
    """Shortest-path-tree parent pointers from ``source``.

    Returns ``{node_index: parent_index}`` for every reachable
    (unmasked) node other than the source -- the weighted twin of
    :func:`csr_bfs_parents` and the CSR twin of the routing layer's
    destination-rooted dict Dijkstra: predecessors update only on a
    *strict* improvement and heap ties break by push order, so the tree
    matches the dict backend's node for node.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    ws = workspace if workspace is not None else DijkstraWorkspace()
    reached = _csr_dijkstra(
        csr, source, None, INFINITY, ws, vertex_mask, edge_mask
    )
    pred = ws.pred
    return {i: pred[i] for i in reached if i != source}


def csr_weighted_distance(
    csr: CSRLike,
    source: int,
    target: int,
    max_dist: Optional[float] = None,
    workspace: Optional[DijkstraWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> float:
    """Weighted s-t distance, or ``inf`` if unreachable within ``max_dist``.

    The allocation-free primitive the verification sweeps loop on: no
    result dict, no path list -- just the scalar distance (early exit on
    the target, pruning past the budget).
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    _csr_check_terminal(csr, target, vertex_mask, "target")
    if source == target:
        return 0.0
    ws = workspace if workspace is not None else DijkstraWorkspace()
    budget = INFINITY if max_dist is None else max_dist
    return _csr_probe(csr, source, target, budget, ws, vertex_mask, edge_mask)


def csr_bounded_dijkstra_path(
    csr: CSRLike,
    source: int,
    target: int,
    max_dist: Optional[float] = None,
    workspace: Optional[DijkstraWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Optional[List[int]]:
    """A minimum-weight path of total weight <= ``max_dist``, or ``None``.

    CSR twin of the dict backend's :func:`shortest_path` (with
    ``max_dist=None``) and of the truncated "path within budget" probe
    the weighted exact greedy branches on.  Returns the node-index
    sequence of a minimum-weight ``source -> target`` path avoiding
    masked vertices/edges, or ``None`` when every path exceeds the
    budget (pruning makes that equivalent to the unbudgeted shortest
    path being too heavy, since sub-paths of shortest paths are
    shortest).
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    _csr_check_terminal(csr, target, vertex_mask, "target")
    if source == target:
        return [source]
    ws = workspace if workspace is not None else DijkstraWorkspace()
    budget = INFINITY if max_dist is None else max_dist
    reached = _csr_dijkstra(
        csr, source, target, budget, ws, vertex_mask, edge_mask
    )
    if reached and reached[-1] == target:
        return _dijkstra_path(ws, target)
    return None


def _dijkstra_path(ws: DijkstraWorkspace, target: int) -> List[int]:
    """Walk ``ws.pred`` pointers back from a just-settled ``target``."""
    path = [target]
    pred = ws.pred
    u = pred[target]
    while u != -1:
        path.append(u)
        u = pred[u]
    path.reverse()
    return path


def csr_bounded_dijkstra_path_edges(
    csr: CSRLike,
    source: int,
    target: int,
    max_dist: Optional[float] = None,
    workspace: Optional[DijkstraWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Optional[Tuple[List[int], List[int]]]:
    """Like :func:`csr_bounded_dijkstra_path` but also returns edge ids.

    Returns ``(nodes, edge_ids)`` with ``len(edge_ids) == len(nodes) - 1``
    -- what the weighted edge-fault branch-and-bound needs to stamp a
    path into its fault mask without endpoint->id lookups.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    _csr_check_terminal(csr, target, vertex_mask, "target")
    if source == target:
        return [source], []
    ws = workspace if workspace is not None else DijkstraWorkspace()
    budget = INFINITY if max_dist is None else max_dist
    reached = _csr_dijkstra(
        csr, source, target, budget, ws, vertex_mask, edge_mask,
        need_edge_ids=True,
    )
    if not reached or reached[-1] != target:
        return None
    nodes = [target]
    eids: List[int] = []
    pred = ws.pred
    pred_eid = ws.pred_eid
    u = target
    while pred[u] != -1:
        eids.append(pred_eid[u])
        u = pred[u]
        nodes.append(u)
    nodes.reverse()
    eids.reverse()
    return nodes, eids


def dijkstra(
    g: GraphLike,
    source: Node,
    target: Optional[Node] = None,
    max_dist: Optional[float] = None,
) -> Dict[Node, float]:
    """Weighted shortest-path distances from ``source``.

    Stops early if ``target`` is settled or if distances exceed
    ``max_dist``.  Unreachable (or pruned) nodes are absent from the result.
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist: Dict[Node, float] = {}
    heap: List = [(0.0, 0, source)]
    counter = 1  # tie-break so heterogeneous node types never compare
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        if u == target:
            break
        for v, w in g.neighbor_items(u):
            if v in dist:
                continue
            nd = d + w
            if max_dist is not None and nd > max_dist:
                continue
            heapq.heappush(heap, (nd, counter, v))
            counter += 1
    return dist


def weighted_distance(g: GraphLike, source: Node, target: Node) -> float:
    """Weighted shortest-path distance, or ``inf`` if disconnected."""
    dist = dijkstra(g, source, target=target)
    return dist.get(target, INFINITY)


def shortest_path(
    g: GraphLike, source: Node, target: Node
) -> Optional[List[Node]]:
    """A minimum-weight path from ``source`` to ``target`` as a node list.

    Returns ``None`` when the endpoints are disconnected.  Uses Dijkstra
    with parent pointers (weights are non-negative by construction).
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    if not g.has_node(target):
        raise KeyError(f"target {target!r} not in graph")
    if source == target:
        return [source]
    parent: Dict[Node, Node] = {}
    best: Dict[Node, float] = {source: 0.0}
    done: Set[Node] = set()
    heap: List = [(0.0, 0, source)]
    counter = 1
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        for v, w in g.neighbor_items(u):
            if v in done:
                continue
            nd = d + w
            # heapq keeps stale entries; the `done` check discards them.
            if v not in best or nd < best[v]:
                best[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return None


def connected_components(g: GraphLike) -> List[Set[Node]]:
    """All connected components as a list of node sets."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in g.nodes():
        if start in seen:
            continue
        component = set(bfs_distances(g, start))
        seen |= component
        components.append(component)
    return components


def is_connected(g: GraphLike) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    nodes = list(g.nodes())
    if not nodes:
        return True
    return len(bfs_distances(g, nodes[0])) == len(nodes)


def eccentricity(g: GraphLike, source: Node) -> float:
    """Max hop distance from ``source`` to any node, ``inf`` if disconnected."""
    dist = bfs_distances(g, source)
    if len(dist) != g.num_nodes:
        return INFINITY
    return max(dist.values(), default=0)


def hop_diameter(g: GraphLike) -> float:
    """Unweighted (hop) diameter; ``inf`` if the graph is disconnected."""
    best = 0.0
    for u in g.nodes():
        ecc = eccentricity(g, u)
        if ecc == INFINITY:
            return INFINITY
        best = max(best, ecc)
    return best
