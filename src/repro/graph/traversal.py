"""Traversal primitives: BFS, hop-bounded BFS, and Dijkstra.

These are the time-critical inner loops of the library.  The paper's
Algorithm 2 runs a BFS per iteration to find a path of at most ``t`` hops
between two terminals, so :func:`bounded_bfs_path` is written to terminate
as early as possible (stop at the hop budget, stop when the target is
reached) and to work directly on the lazy fault views from
:mod:`repro.graph.views` without materializing subgraphs.

Two execution backends live here:

* The dict backend: every function below the "Dict backend" marker accepts
  a :class:`~repro.graph.graph.Graph` or any object satisfying the
  :class:`~repro.graph.views.GraphView` protocol, and works node-object by
  node-object.  It handles arbitrary views and stays the reference
  implementation.
* The CSR backend: :func:`csr_bfs_distances` / :func:`csr_bounded_bfs_path`
  run the same searches over a :class:`~repro.graph.csr.CSRGraph` (or
  growing :class:`~repro.graph.csr.CSRBuilder`) using integer node ids,
  generation-stamped visited bytes, and preallocated parent/depth/queue
  buffers owned by a :class:`BFSWorkspace` -- so a full greedy run makes
  zero per-call allocations of visited structures.  Fault sets arrive as
  :class:`~repro.graph.csr.FaultMask` stamps rather than views.  The
  weighted twins -- :func:`csr_dijkstra`, :func:`csr_weighted_distance`,
  :func:`csr_bounded_dijkstra_path` and
  :func:`csr_bounded_dijkstra_path_edges` -- apply the same discipline to
  binary-heap Dijkstra through a :class:`DijkstraWorkspace` (preallocated
  distance/predecessor arrays, generation-stamped labels, fault-mask
  pre-stamping, early exit on the target, ``max_dist`` pruning).

Both backends visit neighbors in identical order (CSR rows preserve dict
insertion order) and break distance ties identically (heap entries carry
an insertion counter), so they return the *same* paths, not just paths of
the same length.

Weighted search engines
-----------------------
The CSR Dijkstra primitives run on one of three interchangeable engines
(``search=`` keyword, default ``"heap"``):

* ``"heap"`` -- the binary-heap relaxation above: works for any
  non-negative weights, O((n + m) log n).
* ``"bucket"`` -- a Dial bucket queue for graphs whose weights are all
  positive integers at most :data:`BUCKET_MAX_WEIGHT`: O(m + D) with D
  the largest finite distance, no heap at all.  Settling order is
  *identical* to the heap engine (buckets are scanned in push order,
  which is exactly how the heap breaks equal-distance ties via its
  insertion counter), and the predecessor rule is the same strict
  improvement -- so distances, parents, and reconstructed paths are
  bit-identical, not merely equivalent.
* ``"bidir"`` -- bidirectional Dijkstra for point-to-point *distance*
  probes only (:func:`csr_weighted_distance`): two half searches that
  meet in the middle, typically touching far fewer nodes than a full
  forward sweep.  Restricted to integral weights, where every path sum
  is exact regardless of association order, so the returned distance is
  bit-identical to the unidirectional engines.

Engine *selection* (the ``"auto"`` policy keyed on a snapshot's weight
profile) lives in :mod:`repro.graph.snapshot`; this module only executes
whichever engine the caller resolved.

Multi-source batch kernels
--------------------------
The batch engine (``search="batch"`` at the snapshot seam) amortizes the
per-call interpreter overhead of the single-root kernels across many
roots: :func:`csr_bfs_multi` advances *all* roots level-synchronously in
one shared frontier, and :func:`csr_bucket_multi` settles all roots in
one shared circular Dial sweep.  Both work on a
:class:`MultiSourceWorkspace` whose buffers are flat *label planes* --
``roots x num_nodes`` cells addressed by the packed code
``root_index * num_nodes + node`` -- generation-stamped exactly like the
single-root workspaces.  Each root's projection of the shared frontier
(or bucket scan) enumerates nodes in precisely the order the sequential
kernel would, so per-root distances, parents, and settle orders are
bit-identical to the ``heap``/``bucket``/BFS engines, not merely
equivalent.  :func:`csr_multi_pair_distances` is the pair-probe variant
(many s-t probes, one sweep, early exit once every target is resolved).
When numpy is importable the BFS batch kernel additionally offers a
vectorized variant (:data:`HAVE_NUMPY`, ``REPRO_BATCH_ACCEL`` override)
that processes whole frontiers as index arrays; the stdlib loops remain
the always-available fallback and the reference for its parity tests.
"""

from __future__ import annotations

import heapq
import math
import os
from array import array
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

try:  # optional acceleration for the batch BFS kernel (stdlib fallback)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

from repro.graph.csr import CSRLike, FaultMask
from repro.graph.graph import Graph, Node
from repro.graph.views import GraphView

#: Anything the dict-backend traversals accept: a concrete ``Graph`` or a
#: read-only fault view.  CSR graphs do NOT satisfy this protocol -- they
#: use the dedicated ``csr_*`` entry points below.
GraphLike = Union[Graph, GraphView]

INFINITY = math.inf

#: Largest edge weight the Dial bucket-queue engine accepts.  The
#: circular queue holds ``max_weight + 1`` buckets and every empty
#: bucket between two occupied distances costs one scan step, so very
#: large integer weights would erase the engine's win; snapshots whose
#: weights exceed this bound are profiled as ``"float"`` and stay on the
#: binary heap.
BUCKET_MAX_WEIGHT = 255


def weight_profile(weights: Iterable[float]) -> Tuple[str, int]:
    """Classify an edge-weight collection for engine selection.

    Returns ``(profile, max_weight)`` where ``profile`` is

    * ``"unit"`` -- every weight is exactly 1.0 (BFS answers distance
      queries; any weighted engine is also exact);
    * ``"int"`` -- every weight is a positive integer at most
      :data:`BUCKET_MAX_WEIGHT` (the bucket and bidirectional engines
      are exact: integer path sums cannot depend on association order);
    * ``"float"`` -- anything else (only the heap engine reproduces the
      dict backend bit for bit).

    ``max_weight`` is the largest weight as an ``int`` for the first two
    profiles (1 for ``"unit"``) and 0 for ``"float"``.
    """
    unit = True
    max_w = 1
    for w in weights:
        if w == 1.0:
            continue
        unit = False
        if w < 1.0 or w > BUCKET_MAX_WEIGHT or w != int(w):
            return "float", 0
        if w > max_w:
            max_w = int(w)
    return ("unit", 1) if unit else ("int", max_w)


def bfs_distances(
    g: GraphLike, source: Node, max_hops: Optional[int] = None
) -> Dict[Node, int]:
    """Hop distances from ``source`` to every reachable node.

    ``max_hops`` truncates the search: nodes further than that many hops are
    simply absent from the result.  Unreachable nodes are likewise absent
    (callers treat missing entries as distance infinity).
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        d = dist[u]
        if max_hops is not None and d >= max_hops:
            continue
        for v in g.neighbors(u):
            if v not in dist:
                dist[v] = d + 1
                frontier.append(v)
    return dist


def bfs_tree(
    g: GraphLike, source: Node, max_hops: Optional[int] = None
) -> Dict[Node, Optional[Node]]:
    """BFS parent pointers from ``source`` (source maps to ``None``)."""
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    parent: Dict[Node, Optional[Node]] = {source: None}
    depth = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        d = depth[u]
        if max_hops is not None and d >= max_hops:
            continue
        for v in g.neighbors(u):
            if v not in parent:
                parent[v] = u
                depth[v] = d + 1
                frontier.append(v)
    return parent


def bounded_bfs_path(
    g: GraphLike, source: Node, target: Node, max_hops: int
) -> Optional[List[Node]]:
    """A path from ``source`` to ``target`` with at most ``max_hops`` edges.

    Returns the node sequence (including both endpoints) of a *shortest-hop*
    path, or ``None`` if no path within the budget exists.  This is the exact
    primitive the paper's Algorithm 2 invokes: "Run BFS to find a path P of
    length at most t from u to v in G \\ F if one exists."

    The search stops expanding as soon as the target is dequeued or the hop
    budget is exhausted, so the cost is O(m + n) worst case but typically far
    less on sparse spanner subgraphs.
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    if not g.has_node(target):
        raise KeyError(f"target {target!r} not in graph")
    if source == target:
        return [source]
    if max_hops <= 0:
        return None
    parent: Dict[Node, Optional[Node]] = {source: None}
    depth = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        d = depth[u]
        if d >= max_hops:
            # Every later entry is at least this deep; nothing can reach
            # the target within budget anymore.
            break
        for v in g.neighbors(u):
            if v in parent:
                continue
            parent[v] = u
            depth[v] = d + 1
            if v == target:
                return _reconstruct(parent, target)
            frontier.append(v)
    return None


def _reconstruct(
    parent: Dict[Node, Optional[Node]], target: Node
) -> List[Node]:
    """Walk parent pointers back from ``target`` to the BFS root."""
    path = [target]
    u = parent[target]
    while u is not None:
        path.append(u)
        u = parent[u]
    path.reverse()
    return path


def hop_distance(g: GraphLike, source: Node, target: Node) -> float:
    """Number of edges on a shortest-hop path, or ``inf`` if disconnected."""
    if source == target:
        if not g.has_node(source):
            raise KeyError(f"node {source!r} not in graph")
        return 0
    path = bounded_bfs_path(g, source, target, max_hops=g.num_nodes)
    return INFINITY if path is None else len(path) - 1


# --------------------------------------------------------------------- #
# CSR backend: array-based BFS with a reusable workspace
# --------------------------------------------------------------------- #


class BFSWorkspace:
    """Preallocated scratch buffers for the CSR BFS primitives.

    One workspace serves an unbounded number of BFS calls over graphs of
    any (growing) size: ``ensure`` only ever extends the buffers, and a
    generation-stamped visited array makes per-call reset O(1).  The
    workspace also owns a vertex :class:`FaultMask` and an edge
    :class:`FaultMask` so callers running the LBC loop need no further
    allocations at all.

    Not thread-safe; use one workspace per thread.
    """

    __slots__ = (
        "seen", "seen_gen", "parent", "parent_eid", "depth", "queue",
        "frontier", "vertex_mask", "edge_mask",
    )

    def __init__(self, num_nodes: int = 0, num_edges: int = 0) -> None:
        self.seen = bytearray(num_nodes)
        self.seen_gen = 1
        self.parent = [0] * num_nodes
        self.parent_eid = [0] * num_nodes
        self.depth = [0] * num_nodes
        self.queue = [0] * num_nodes
        self.frontier = [0] * num_nodes
        self.vertex_mask = FaultMask(num_nodes)
        self.edge_mask = FaultMask(num_edges)

    def ensure(self, num_nodes: int, num_edges: int = 0) -> None:
        """Grow every buffer to cover the given node/edge counts."""
        short = num_nodes - len(self.seen)
        if short > 0:
            self.seen.extend(bytes(short))
            self.parent.extend([0] * short)
            self.parent_eid.extend([0] * short)
            self.depth.extend([0] * short)
            self.queue.extend([0] * short)
            self.frontier.extend([0] * short)
            self.vertex_mask.ensure(num_nodes)
        self.edge_mask.ensure(num_edges)

    def next_generation(self) -> int:
        """Advance and return the visited generation (O(1) amortized)."""
        self.seen_gen += 1
        if self.seen_gen == 256:
            self.seen[:] = bytes(len(self.seen))
            self.seen_gen = 1
        return self.seen_gen


def _csr_search(
    csr: CSRLike,
    source: int,
    target: int,
    max_hops: float,
    ws: BFSWorkspace,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
    need_edge_ids: bool,
) -> bool:
    """Core hop-bounded BFS to a target over CSR adjacency.

    Level-synchronized: the two preallocated buffers ``ws.queue`` /
    ``ws.frontier`` ping-pong as current/next frontier, which keeps the
    inner loop free of per-node depth bookkeeping.  Visit order is
    identical to FIFO BFS, so paths match the dict backend node for node.

    Two structural savings relative to a naive queue BFS:

    * Faulted *vertices* are pre-stamped into the visited array (O(|F|)
      per call, |F| <= alpha * t), so the per-neighbor inner loop
      carries no vertex-mask test at all; only edge masks are tested.
    * The final level is never expanded, so its nodes are not stamped or
      enqueued either -- they can only matter by *being* the target, and
      a bare equality scan detects that.  For the hop bounds the LBC
      loop uses, the final level dominates the edge traversals, so this
      removes most of the per-neighbor work of a typical call.

    Fills ``ws.parent`` (and ``ws.parent_eid`` when ``need_edge_ids``)
    for every node stamped with the current generation; returns whether
    ``target`` was reached within ``max_hops`` levels.
    """
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    seen = ws.seen
    parent = ws.parent
    cur = ws.queue
    nxt = ws.frontier
    rows = csr.neighbors
    if vertex_mask is not None:
        for b in vertex_mask.members:
            seen[b] = gen
    seen[source] = gen
    parent[source] = -1
    cur[0] = source
    cur_len = 1
    remaining = max_hops
    if edge_mask is not None:
        eid_rows = csr.edge_id_rows
        parent_eid = ws.parent_eid
        parent_eid[source] = -1
        estamp, egen = edge_mask.stamp, edge_mask.gen
        while cur_len and remaining > 1:
            remaining -= 1
            nxt_len = 0
            for qi in range(cur_len):
                u = cur[qi]
                row = rows[u]
                erow = eid_rows[u]
                for j in range(len(row)):
                    v = row[j]
                    if seen[v] == gen:
                        continue
                    e = erow[j]
                    if estamp[e] == egen:
                        continue
                    seen[v] = gen
                    parent[v] = u
                    parent_eid[v] = e
                    if v == target:
                        return True
                    nxt[nxt_len] = v
                    nxt_len += 1
            cur, nxt = nxt, cur
            cur_len = nxt_len
        if cur_len and remaining == 1:
            for qi in range(cur_len):
                u = cur[qi]
                row = rows[u]
                erow = eid_rows[u]
                for j in range(len(row)):
                    if row[j] == target and estamp[erow[j]] != egen:
                        parent[target] = u
                        parent_eid[target] = erow[j]
                        return True
    elif need_edge_ids:
        eid_rows = csr.edge_id_rows
        parent_eid = ws.parent_eid
        parent_eid[source] = -1
        while cur_len and remaining > 1:
            remaining -= 1
            nxt_len = 0
            for qi in range(cur_len):
                u = cur[qi]
                row = rows[u]
                erow = eid_rows[u]
                for j in range(len(row)):
                    v = row[j]
                    if seen[v] == gen:
                        continue
                    seen[v] = gen
                    parent[v] = u
                    parent_eid[v] = erow[j]
                    if v == target:
                        return True
                    nxt[nxt_len] = v
                    nxt_len += 1
            cur, nxt = nxt, cur
            cur_len = nxt_len
        if cur_len and remaining == 1:
            for qi in range(cur_len):
                u = cur[qi]
                row = rows[u]
                for j in range(len(row)):
                    if row[j] == target:
                        parent[target] = u
                        parent_eid[target] = eid_rows[u][j]
                        return True
    else:
        while cur_len and remaining > 1:
            remaining -= 1
            nxt_len = 0
            for qi in range(cur_len):
                u = cur[qi]
                for v in rows[u]:
                    if seen[v] == gen:
                        continue
                    seen[v] = gen
                    parent[v] = u
                    if v == target:
                        return True
                    nxt[nxt_len] = v
                    nxt_len += 1
            cur, nxt = nxt, cur
            cur_len = nxt_len
        if cur_len and remaining == 1:
            for qi in range(cur_len):
                u = cur[qi]
                if target in rows[u]:
                    parent[target] = u
                    return True
    return False


def _csr_check_terminal(
    csr: CSRLike, i: int, vertex_mask: Optional[FaultMask], role: str
) -> None:
    """Mirror the dict backend's KeyErrors for bad/faulted terminals."""
    if not 0 <= i < csr.num_nodes:
        raise KeyError(f"{role} index {i} not in graph")
    if vertex_mask is not None and i in vertex_mask:
        raise KeyError(f"{role} index {i} is faulted")


def csr_bfs_distances(
    csr: CSRLike,
    source: int,
    max_hops: Optional[int] = None,
    workspace: Optional[BFSWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Dict[int, int]:
    """Hop distances from node index ``source``: CSR twin of
    :func:`bfs_distances`.

    Returns ``{node_index: hops}`` for every reachable (unmasked) node
    within ``max_hops``; missing entries mean unreachable/pruned, exactly
    like the dict variant.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    ws = workspace if workspace is not None else BFSWorkspace()
    ws.ensure(csr.num_nodes, csr.num_edges)
    budget = INFINITY if max_hops is None else max_hops
    gen = ws.next_generation()
    seen = ws.seen
    depth = ws.depth
    cur = ws.queue
    nxt = ws.frontier
    rows = csr.neighbors
    eid_rows = csr.edge_id_rows
    vstamp = vgen = estamp = egen = None
    if vertex_mask is not None:
        vstamp, vgen = vertex_mask.stamp, vertex_mask.gen
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
    seen[source] = gen
    depth[source] = 0
    cur[0] = source
    cur_len = 1
    level = 0
    reached = [source]
    while cur_len and level < budget:
        level += 1
        nxt_len = 0
        for qi in range(cur_len):
            u = cur[qi]
            row = rows[u]
            erow = eid_rows[u]
            for j in range(len(row)):
                v = row[j]
                if seen[v] == gen:
                    continue
                if vstamp is not None and vstamp[v] == vgen:
                    continue
                if estamp is not None and estamp[erow[j]] == egen:
                    continue
                seen[v] = gen
                depth[v] = level
                reached.append(v)
                nxt[nxt_len] = v
                nxt_len += 1
        cur, nxt = nxt, cur
        cur_len = nxt_len
    # O(reached), not O(n): a bounded query on a huge graph pays only
    # for what it touched.
    return {i: depth[i] for i in reached}


def csr_bfs_parents(
    csr: CSRLike,
    source: int,
    workspace: Optional[BFSWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Dict[int, int]:
    """BFS parent pointers from ``source`` over CSR adjacency.

    Returns ``{node_index: parent_index}`` for every reachable
    (unmasked) node other than the source itself -- each node's parent
    is its *first discoverer* in FIFO order.  On unit-weighted graphs
    this is exactly the shortest-path tree the dict backend's
    destination-rooted Dijkstra produces (strict-improvement updates
    mean the first discoverer wins there too), which is what lets the
    routing layer build next-hop tables from BFS on unit spanners.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    ws = workspace if workspace is not None else BFSWorkspace()
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    seen = ws.seen
    parent = ws.parent
    cur = ws.queue
    nxt = ws.frontier
    rows = csr.neighbors
    eid_rows = csr.edge_id_rows
    vstamp = vgen = estamp = egen = None
    if vertex_mask is not None:
        vstamp, vgen = vertex_mask.stamp, vertex_mask.gen
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
    seen[source] = gen
    cur[0] = source
    cur_len = 1
    reached: List[int] = []
    while cur_len:
        nxt_len = 0
        for qi in range(cur_len):
            u = cur[qi]
            row = rows[u]
            erow = eid_rows[u]
            for j in range(len(row)):
                v = row[j]
                if seen[v] == gen:
                    continue
                if vstamp is not None and vstamp[v] == vgen:
                    continue
                if estamp is not None and estamp[erow[j]] == egen:
                    continue
                seen[v] = gen
                parent[v] = u
                reached.append(v)
                nxt[nxt_len] = v
                nxt_len += 1
        cur, nxt = nxt, cur
        cur_len = nxt_len
    return {i: parent[i] for i in reached}


def csr_bounded_bfs_path(
    csr: CSRLike,
    source: int,
    target: int,
    max_hops: int,
    workspace: Optional[BFSWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Optional[List[int]]:
    """CSR twin of :func:`bounded_bfs_path`, over node indices.

    Returns the node-index sequence of a shortest-hop ``source -> target``
    path avoiding masked vertices/edges, or ``None`` when no path of at
    most ``max_hops`` edges exists.  With a shared ``workspace`` this
    performs no per-call allocation beyond the returned path itself.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    _csr_check_terminal(csr, target, vertex_mask, "target")
    if source == target:
        return [source]
    if max_hops <= 0:
        return None
    ws = workspace if workspace is not None else BFSWorkspace()
    found = _csr_search(
        csr, source, target, max_hops, ws, vertex_mask, edge_mask, False
    )
    return _csr_path(ws, target) if found else None


def _csr_path(ws: BFSWorkspace, target: int) -> List[int]:
    """Walk ``ws.parent`` pointers back from a just-reached ``target``."""
    path = [target]
    parent = ws.parent
    u = parent[target]
    while u != -1:
        path.append(u)
        u = parent[u]
    path.reverse()
    return path


def csr_bounded_bfs_path_edges(
    csr: CSRLike,
    source: int,
    target: int,
    max_hops: int,
    workspace: Optional[BFSWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Optional[Tuple[List[int], List[int]]]:
    """Like :func:`csr_bounded_bfs_path` but also returns the edge ids.

    Returns ``(nodes, edge_ids)`` with ``len(edge_ids) == len(nodes) - 1``
    (the id of each traversed edge, in path order) -- what the edge-fault
    LBC loop needs to stamp a path into its fault mask without any
    endpoint->id lookups.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    _csr_check_terminal(csr, target, vertex_mask, "target")
    if source == target:
        return [source], []
    if max_hops <= 0:
        return None
    ws = workspace if workspace is not None else BFSWorkspace()
    found = _csr_search(
        csr, source, target, max_hops, ws, vertex_mask, edge_mask, True
    )
    return _csr_path_edges(ws, target) if found else None


def _csr_path_edges(
    ws: BFSWorkspace, target: int
) -> Tuple[List[int], List[int]]:
    """Like :func:`_csr_path` but also collects the traversed edge ids."""
    nodes = [target]
    eids: List[int] = []
    parent = ws.parent
    parent_eid = ws.parent_eid
    u = target
    while parent[u] != -1:
        eids.append(parent_eid[u])
        u = parent[u]
        nodes.append(u)
    nodes.reverse()
    eids.reverse()
    return nodes, eids


# --------------------------------------------------------------------- #
# CSR backend: binary-heap Dijkstra with a reusable workspace
# --------------------------------------------------------------------- #


class DijkstraWorkspace:
    """Preallocated scratch buffers for the CSR Dijkstra primitives.

    The weighted analogue of :class:`BFSWorkspace`: one workspace serves
    an unbounded number of Dijkstra calls over graphs of any (growing)
    size.  ``ensure`` only ever extends the buffers, and two
    generation-stamped byte arrays (``label``: the node has a valid
    tentative distance; ``settled``: the node's distance is final) make
    the per-call reset O(1).  Faulted vertices are pre-stamped as settled
    so the relaxation inner loop never tests a vertex mask.  The
    workspace also owns a vertex and an edge :class:`FaultMask`, so
    callers sweeping many fault sets need no further allocation beyond
    the heap itself (a plain list, rebuilt per call -- its size is
    bounded by the number of relaxations, and pushing to a fresh list is
    cheaper than zeroing a preallocated arena).

    Not thread-safe; use one workspace per thread.
    """

    __slots__ = (
        "dist", "pred", "pred_eid", "label", "settled", "gen",
        "vertex_mask", "edge_mask", "dist_b", "label_b", "settled_b",
        "buckets",
    )

    def __init__(self, num_nodes: int = 0, num_edges: int = 0) -> None:
        self.dist = array("d", bytes(8 * num_nodes))
        self.pred = [0] * num_nodes
        self.pred_eid = [0] * num_nodes
        self.label = bytearray(num_nodes)
        self.settled = bytearray(num_nodes)
        self.gen = 1
        self.vertex_mask = FaultMask(num_nodes)
        self.edge_mask = FaultMask(num_edges)
        # Backward-side twins for the bidirectional engine (same
        # generation counter; tiny next to the adjacency itself).
        self.dist_b = array("d", bytes(8 * num_nodes))
        self.label_b = bytearray(num_nodes)
        self.settled_b = bytearray(num_nodes)
        # Circular Dial buckets, grown on first bucket-engine call and
        # left empty between calls (every engine exit clears them).
        self.buckets: List[List[int]] = []

    def ensure(self, num_nodes: int, num_edges: int = 0) -> None:
        """Grow every buffer to cover the given node/edge counts."""
        short = num_nodes - len(self.label)
        if short > 0:
            self.dist.extend(array("d", bytes(8 * short)))
            self.pred.extend([0] * short)
            self.pred_eid.extend([0] * short)
            self.label.extend(bytes(short))
            self.settled.extend(bytes(short))
            self.dist_b.extend(array("d", bytes(8 * short)))
            self.label_b.extend(bytes(short))
            self.settled_b.extend(bytes(short))
            self.vertex_mask.ensure(num_nodes)
        self.edge_mask.ensure(num_edges)

    def ensure_buckets(self, count: int) -> List[List[int]]:
        """The (empty) circular Dial buckets, grown to ``count`` slots."""
        buckets = self.buckets
        while len(buckets) < count:
            buckets.append([])
        return buckets

    def next_generation(self) -> int:
        """Advance and return the stamp generation (O(1) amortized)."""
        self.gen += 1
        if self.gen == 256:
            self.label[:] = bytes(len(self.label))
            self.settled[:] = bytes(len(self.settled))
            self.label_b[:] = bytes(len(self.label_b))
            self.settled_b[:] = bytes(len(self.settled_b))
            self.gen = 1
        return self.gen


def _csr_dijkstra(
    csr: CSRLike,
    source: int,
    target: Optional[int],
    max_dist: float,
    ws: DijkstraWorkspace,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
    need_edge_ids: bool = False,
) -> List[int]:
    """Core Dijkstra over CSR adjacency; returns settled nodes in order.

    The relaxation mirrors the dict backend's :func:`shortest_path`
    (update the predecessor only on a *strict* improvement, heap ties
    broken by push order), so reconstructed paths match the dict backend
    node for node.  Distances in ``ws.dist`` are valid exactly for the
    returned nodes; ``ws.pred`` (and, when ``need_edge_ids``,
    ``ws.pred_eid``) hold the shortest-path tree (``-1`` at the source).

    Structural savings mirror :func:`_csr_search`:

    * Faulted vertices are pre-stamped as settled (O(|F|) per call), so
      the relaxation loop carries no vertex-mask test; only edge masks
      are tested, and only when one is present.  Without an edge mask
      the loop never touches edge ids at all: weights are read from the
      per-incidence ``weight_rows``.
    * When ``target`` is given the search stops the moment it is settled
      (its distance is already final), and ``max_dist`` prunes every
      relaxation past the budget, keeping the heap small on the truncated
      queries the greedy and verification sweeps issue.

    Callers that need only the s-t distance should prefer
    :func:`_csr_probe`, which skips the settled-list and tree
    bookkeeping entirely.
    """
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    dist = ws.dist
    settled = ws.settled
    rows = csr.neighbors
    wrows = csr.weight_rows
    if vertex_mask is not None:
        for b in vertex_mask.members:
            settled[b] = gen
    label = ws.label
    dist[source] = 0.0
    label[source] = gen
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    counter = 1
    reached: List[int] = []
    push = heapq.heappush
    pop = heapq.heappop
    estamp = egen = None
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
    pred = ws.pred
    pred[source] = -1
    if edge_mask is not None or need_edge_ids:
        eid_rows = csr.edge_id_rows
        pred_eid = ws.pred_eid
        pred_eid[source] = -1
        while heap:
            d, _, u = pop(heap)
            if settled[u] == gen:
                continue  # stale heap entry (or pre-stamped fault)
            settled[u] = gen
            reached.append(u)
            if u == target:
                break
            for v, e, w in zip(rows[u], eid_rows[u], wrows[u]):
                if settled[v] == gen:
                    continue
                if estamp is not None and estamp[e] == egen:
                    continue
                nd = d + w
                if nd > max_dist:
                    continue
                if label[v] != gen or nd < dist[v]:
                    label[v] = gen
                    dist[v] = nd
                    pred[v] = u
                    pred_eid[v] = e
                    push(heap, (nd, counter, v))
                    counter += 1
    else:
        while heap:
            d, _, u = pop(heap)
            if settled[u] == gen:
                continue  # stale heap entry (or pre-stamped fault)
            settled[u] = gen
            reached.append(u)
            if u == target:
                break
            for v, w in zip(rows[u], wrows[u]):
                if settled[v] == gen:
                    continue
                nd = d + w
                if nd > max_dist:
                    continue
                if label[v] != gen or nd < dist[v]:
                    label[v] = gen
                    dist[v] = nd
                    pred[v] = u
                    push(heap, (nd, counter, v))
                    counter += 1
    return reached


def _csr_probe(
    csr: CSRLike,
    source: int,
    target: int,
    max_dist: float,
    ws: DijkstraWorkspace,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
) -> float:
    """Leanest Dijkstra variant: the s-t distance, or ``inf``.

    The per-probe workhorse of the verification sweeps and the classic
    greedy: no settled list, no predecessor stores -- just the
    generation-stamped label/settled discipline and the heap.  Returns
    the exact distance when ``target`` is reachable within ``max_dist``
    and ``INFINITY`` otherwise (distances are identical to
    :func:`_csr_dijkstra`; ties cannot change a minimum).
    """
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    dist = ws.dist
    label = ws.label
    settled = ws.settled
    rows = csr.neighbors
    wrows = csr.weight_rows
    if vertex_mask is not None:
        for b in vertex_mask.members:
            settled[b] = gen
    dist[source] = 0.0
    label[source] = gen
    # (dist, node) pairs suffice here: both elements are always
    # comparable, and tie order cannot change the minimum distance the
    # probe returns (unlike the path variants, which carry a push
    # counter to reproduce the dict backend's tie-breaking).
    heap: List[Tuple[float, int]] = [(0.0, source)]
    push = heapq.heappush
    pop = heapq.heappop
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
        eid_rows = csr.edge_id_rows
        while heap:
            d, u = pop(heap)
            if settled[u] == gen:
                continue  # stale heap entry (or pre-stamped fault)
            if u == target:
                return d  # settled distance is final; row scan unneeded
            settled[u] = gen
            for v, e, w in zip(rows[u], eid_rows[u], wrows[u]):
                if settled[v] == gen or estamp[e] == egen:
                    continue
                nd = d + w
                if nd > max_dist:
                    continue
                if label[v] != gen or nd < dist[v]:
                    label[v] = gen
                    dist[v] = nd
                    push(heap, (nd, v))
    else:
        while heap:
            d, u = pop(heap)
            if settled[u] == gen:
                continue
            if u == target:
                return d
            settled[u] = gen
            for v, w in zip(rows[u], wrows[u]):
                if settled[v] == gen:
                    continue
                nd = d + w
                if nd > max_dist:
                    continue
                if label[v] != gen or nd < dist[v]:
                    label[v] = gen
                    dist[v] = nd
                    push(heap, (nd, v))
    return INFINITY


# --------------------------------------------------------------------- #
# CSR backend: Dial bucket-queue and bidirectional Dijkstra engines
# --------------------------------------------------------------------- #


def _bucket_max_weight(csr: CSRLike, max_weight: Optional[int]) -> int:
    """Resolve the bucket engine's weight bound, validating when unknown.

    Snapshot-level callers pass the ``max_weight`` they cached at freeze
    time (O(1) here); direct callers may pass ``None`` and pay one O(m)
    scan that also rejects non-integral weights with a clear error.
    """
    if max_weight is not None:
        return max_weight
    best = 1
    for row in csr.weight_rows:
        for w in row:
            if w < 1.0 or w > BUCKET_MAX_WEIGHT or w != int(w):
                raise ValueError(
                    f"search='bucket' requires positive integer edge "
                    f"weights <= {BUCKET_MAX_WEIGHT}, found {w!r}"
                )
            if w > best:
                best = int(w)
    return best


def _csr_dijkstra_bucket(
    csr: CSRLike,
    source: int,
    target: Optional[int],
    max_dist: float,
    ws: DijkstraWorkspace,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
    max_weight: int,
    need_edge_ids: bool = False,
) -> List[int]:
    """Dial bucket-queue twin of :func:`_csr_dijkstra`.

    Valid only for positive integer weights ``<= max_weight`` (gated by
    the caller via the snapshot weight profile).  A circular array of
    ``max_weight + 1`` buckets replaces the heap: all queued tentative
    distances lie in ``[d, d + max_weight]`` while distance ``d`` is
    being processed, so ``int(nd) % (max_weight + 1)`` is collision-free.

    Parity with the heap engine is structural, not approximate:

    * A bucket is scanned in append order, and appends happen exactly
      when the heap engine would push -- so equal-distance nodes settle
      in push order, which is precisely the heap's insertion-counter
      tie-break.  The returned settled list is identical element for
      element.
    * Predecessors update under the same strict-improvement rule, so
      ``ws.pred`` / ``ws.pred_eid`` (and every path reconstructed from
      them) match the heap engine and therefore the dict backend.
    * Integer distance sums are exact floats, so ``ws.dist`` is
      bit-identical as well.

    The buckets live in the workspace and are left empty on every exit
    (including early exit on the target).
    """
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    dist = ws.dist
    label = ws.label
    settled = ws.settled
    rows = csr.neighbors
    wrows = csr.weight_rows
    if vertex_mask is not None:
        for b in vertex_mask.members:
            settled[b] = gen
    slots = max_weight + 1
    buckets = ws.ensure_buckets(slots)
    dist[source] = 0.0
    label[source] = gen
    pred = ws.pred
    pred[source] = -1
    buckets[0].append(source)
    pending = 1
    reached: List[int] = []
    estamp = egen = None
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
    use_eids = edge_mask is not None or need_edge_ids
    if use_eids:
        eid_rows = csr.edge_id_rows
        pred_eid = ws.pred_eid
        pred_eid[source] = -1
    slot = 0
    try:
        while pending:
            bucket = buckets[slot]
            if bucket:
                # Relaxed edges carry weight >= 1, so nothing is ever
                # appended to the bucket being scanned; plain iteration
                # is safe and preserves push order.
                for u in bucket:
                    pending -= 1
                    if settled[u] == gen:
                        continue  # stale entry (or pre-stamped fault)
                    settled[u] = gen
                    reached.append(u)
                    if u == target:
                        return reached
                    d = dist[u]
                    if use_eids:
                        erow = eid_rows[u]
                        row = rows[u]
                        wrow = wrows[u]
                        for j in range(len(row)):
                            v = row[j]
                            if settled[v] == gen:
                                continue
                            e = erow[j]
                            if estamp is not None and estamp[e] == egen:
                                continue
                            nd = d + wrow[j]
                            if nd > max_dist:
                                continue
                            if label[v] != gen or nd < dist[v]:
                                label[v] = gen
                                dist[v] = nd
                                pred[v] = u
                                pred_eid[v] = e
                                buckets[int(nd) % slots].append(v)
                                pending += 1
                    else:
                        for v, w in zip(rows[u], wrows[u]):
                            if settled[v] == gen:
                                continue
                            nd = d + w
                            if nd > max_dist:
                                continue
                            if label[v] != gen or nd < dist[v]:
                                label[v] = gen
                                dist[v] = nd
                                pred[v] = u
                                buckets[int(nd) % slots].append(v)
                                pending += 1
                del bucket[:]
            slot += 1
            if slot == slots:
                slot = 0
    finally:
        # An early exit (target hit) leaves queued and already-consumed
        # entries behind; clear every slot so the workspace's buckets
        # start empty next call.  O(slots) of empty-list checks.
        for bucket in buckets:
            if bucket:
                del bucket[:]
    return reached


def _csr_probe_bucket(
    csr: CSRLike,
    source: int,
    target: int,
    max_dist: float,
    ws: DijkstraWorkspace,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
    max_weight: int,
) -> float:
    """Bucket-queue twin of :func:`_csr_probe`: the s-t distance or inf.

    Identical distances to every other engine (integer sums are exact);
    no settled list, no predecessor stores.
    """
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    dist = ws.dist
    label = ws.label
    settled = ws.settled
    rows = csr.neighbors
    wrows = csr.weight_rows
    if vertex_mask is not None:
        for b in vertex_mask.members:
            settled[b] = gen
    slots = max_weight + 1
    buckets = ws.ensure_buckets(slots)
    dist[source] = 0.0
    label[source] = gen
    buckets[0].append(source)
    pending = 1
    estamp = egen = None
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
        eid_rows = csr.edge_id_rows
    slot = 0
    try:
        while pending:
            bucket = buckets[slot]
            if bucket:
                for u in bucket:
                    pending -= 1
                    if settled[u] == gen:
                        continue  # stale entry (or pre-stamped fault)
                    if u == target:
                        return dist[u]
                    settled[u] = gen
                    d = dist[u]
                    if estamp is not None:
                        erow = eid_rows[u]
                        row = rows[u]
                        wrow = wrows[u]
                        for j in range(len(row)):
                            v = row[j]
                            if settled[v] == gen or estamp[erow[j]] == egen:
                                continue
                            nd = d + wrow[j]
                            if nd > max_dist:
                                continue
                            if label[v] != gen or nd < dist[v]:
                                label[v] = gen
                                dist[v] = nd
                                buckets[int(nd) % slots].append(v)
                                pending += 1
                    else:
                        for v, w in zip(rows[u], wrows[u]):
                            if settled[v] == gen:
                                continue
                            nd = d + w
                            if nd > max_dist:
                                continue
                            if label[v] != gen or nd < dist[v]:
                                label[v] = gen
                                dist[v] = nd
                                buckets[int(nd) % slots].append(v)
                                pending += 1
                del bucket[:]
            slot += 1
            if slot == slots:
                slot = 0
    finally:
        for bucket in buckets:
            if bucket:
                del bucket[:]
    return INFINITY


def _csr_probe_bidir(
    csr: CSRLike,
    source: int,
    target: int,
    max_dist: float,
    ws: DijkstraWorkspace,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
) -> float:
    """Bidirectional Dijkstra s-t distance probe, or ``inf``.

    Two heap searches -- forward from ``source``, backward from
    ``target`` over the same (undirected) adjacency -- each expanding
    the side with the smaller frontier distance.  A meeting candidate
    ``best`` is refreshed on every relaxation *and* every settle that
    touches a node labeled by the opposite side; the search stops as
    soon as ``top_f + top_b >= best``, which typically happens after
    each side has explored a small ball around its endpoint.

    Exactness: restricted (by the snapshot weight profile) to integral
    weights, where every path sum is exact no matter how it is
    associated -- so the returned distance is bit-identical to the
    unidirectional engines and the dict backend.  Both sides prune
    relaxations past ``max_dist``; any s-t distance within the budget
    survives pruning on each side separately, and the probe returns
    ``inf`` for anything beyond it (the same contract as
    :func:`_csr_probe`).
    """
    ws.ensure(csr.num_nodes, csr.num_edges)
    gen = ws.next_generation()
    dist_f, label_f, settled_f = ws.dist, ws.label, ws.settled
    dist_b, label_b, settled_b = ws.dist_b, ws.label_b, ws.settled_b
    rows = csr.neighbors
    wrows = csr.weight_rows
    if vertex_mask is not None:
        for b in vertex_mask.members:
            settled_f[b] = gen
            settled_b[b] = gen
    dist_f[source] = 0.0
    label_f[source] = gen
    dist_b[target] = 0.0
    label_b[target] = gen
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]
    best = INFINITY
    push = heapq.heappush
    pop = heapq.heappop
    estamp = egen = None
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
        eid_rows = csr.edge_id_rows
    while heap_f and heap_b:
        if heap_f[0][0] + heap_b[0][0] >= best:
            break
        if heap_f[0][0] <= heap_b[0][0]:
            d, u = pop(heap_f)
            if settled_f[u] == gen:
                continue  # stale entry (or pre-stamped fault)
            settled_f[u] = gen
            if label_b[u] == gen:
                cand = d + dist_b[u]
                if cand < best:
                    best = cand
            if estamp is not None:
                erow = eid_rows[u]
                row = rows[u]
                wrow = wrows[u]
                for j in range(len(row)):
                    v = row[j]
                    if settled_f[v] == gen or estamp[erow[j]] == egen:
                        continue
                    nd = d + wrow[j]
                    if nd > max_dist:
                        continue
                    if label_b[v] == gen:
                        cand = nd + dist_b[v]
                        if cand < best:
                            best = cand
                    if label_f[v] != gen or nd < dist_f[v]:
                        label_f[v] = gen
                        dist_f[v] = nd
                        push(heap_f, (nd, v))
            else:
                for v, w in zip(rows[u], wrows[u]):
                    if settled_f[v] == gen:
                        continue
                    nd = d + w
                    if nd > max_dist:
                        continue
                    if label_b[v] == gen:
                        cand = nd + dist_b[v]
                        if cand < best:
                            best = cand
                    if label_f[v] != gen or nd < dist_f[v]:
                        label_f[v] = gen
                        dist_f[v] = nd
                        push(heap_f, (nd, v))
        else:
            d, u = pop(heap_b)
            if settled_b[u] == gen:
                continue  # stale entry (or pre-stamped fault)
            settled_b[u] = gen
            if label_f[u] == gen:
                cand = d + dist_f[u]
                if cand < best:
                    best = cand
            if estamp is not None:
                erow = eid_rows[u]
                row = rows[u]
                wrow = wrows[u]
                for j in range(len(row)):
                    v = row[j]
                    if settled_b[v] == gen or estamp[erow[j]] == egen:
                        continue
                    nd = d + wrow[j]
                    if nd > max_dist:
                        continue
                    if label_f[v] == gen:
                        cand = nd + dist_f[v]
                        if cand < best:
                            best = cand
                    if label_b[v] != gen or nd < dist_b[v]:
                        label_b[v] = gen
                        dist_b[v] = nd
                        push(heap_b, (nd, v))
            else:
                for v, w in zip(rows[u], wrows[u]):
                    if settled_b[v] == gen:
                        continue
                    nd = d + w
                    if nd > max_dist:
                        continue
                    if label_f[v] == gen:
                        cand = nd + dist_f[v]
                        if cand < best:
                            best = cand
                    if label_b[v] != gen or nd < dist_b[v]:
                        label_b[v] = gen
                        dist_b[v] = nd
                        push(heap_b, (nd, v))
    return best if best <= max_dist else INFINITY


def csr_dijkstra(
    csr: CSRLike,
    source: int,
    target: Optional[int] = None,
    max_dist: Optional[float] = None,
    workspace: Optional[DijkstraWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
    search: str = "heap",
    max_weight: Optional[int] = None,
) -> Dict[int, float]:
    """Weighted distances from node index ``source``: CSR twin of
    :func:`dijkstra`.

    Returns ``{node_index: distance}`` for every node settled before the
    search stopped (target reached, budget exceeded, or graph
    exhausted); missing entries mean unreachable/pruned, exactly like
    the dict variant.  ``search`` picks the execution engine (``"heap"``
    or ``"bucket"``; both return bit-identical results where the bucket
    engine is legal) and ``max_weight`` optionally supplies the bucket
    engine's cached weight bound (see the module docstring).
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    ws = workspace if workspace is not None else DijkstraWorkspace()
    budget = INFINITY if max_dist is None else max_dist
    if search == "heap":
        reached = _csr_dijkstra(
            csr, source, target, budget, ws, vertex_mask, edge_mask
        )
    elif search == "bucket":
        reached = _csr_dijkstra_bucket(
            csr, source, target, budget, ws, vertex_mask, edge_mask,
            _bucket_max_weight(csr, max_weight),
        )
    else:
        raise ValueError(
            f"csr_dijkstra runs on search='heap' or 'bucket', got {search!r}"
        )
    dist = ws.dist
    # O(settled), not O(n): a truncated query pays only for what it
    # touched.
    return {i: dist[i] for i in reached}


def csr_dijkstra_parents(
    csr: CSRLike,
    source: int,
    workspace: Optional[DijkstraWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
    search: str = "heap",
    max_weight: Optional[int] = None,
) -> Dict[int, int]:
    """Shortest-path-tree parent pointers from ``source``.

    Returns ``{node_index: parent_index}`` for every reachable
    (unmasked) node other than the source -- the weighted twin of
    :func:`csr_bfs_parents` and the CSR twin of the routing layer's
    destination-rooted dict Dijkstra: predecessors update only on a
    *strict* improvement and ties break by push order (on either
    engine), so the tree matches the dict backend's node for node.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    ws = workspace if workspace is not None else DijkstraWorkspace()
    if search == "heap":
        reached = _csr_dijkstra(
            csr, source, None, INFINITY, ws, vertex_mask, edge_mask
        )
    elif search == "bucket":
        reached = _csr_dijkstra_bucket(
            csr, source, None, INFINITY, ws, vertex_mask, edge_mask,
            _bucket_max_weight(csr, max_weight),
        )
    else:
        raise ValueError(
            f"csr_dijkstra_parents runs on search='heap' or 'bucket', "
            f"got {search!r}"
        )
    pred = ws.pred
    return {i: pred[i] for i in reached if i != source}


def csr_weighted_distance(
    csr: CSRLike,
    source: int,
    target: int,
    max_dist: Optional[float] = None,
    workspace: Optional[DijkstraWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
    search: str = "heap",
    max_weight: Optional[int] = None,
) -> float:
    """Weighted s-t distance, or ``inf`` if unreachable within ``max_dist``.

    The allocation-free primitive the verification sweeps loop on: no
    result dict, no path list -- just the scalar distance (early exit on
    the target, pruning past the budget).  ``search`` picks the engine:
    ``"heap"`` (any weights), ``"bucket"`` or ``"bidir"`` (integral
    weights; identical distances, see the module docstring).
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    _csr_check_terminal(csr, target, vertex_mask, "target")
    if source == target:
        return 0.0
    ws = workspace if workspace is not None else DijkstraWorkspace()
    budget = INFINITY if max_dist is None else max_dist
    if search == "heap":
        return _csr_probe(
            csr, source, target, budget, ws, vertex_mask, edge_mask
        )
    if search == "bucket":
        return _csr_probe_bucket(
            csr, source, target, budget, ws, vertex_mask, edge_mask,
            _bucket_max_weight(csr, max_weight),
        )
    if search == "bidir":
        return _csr_probe_bidir(
            csr, source, target, budget, ws, vertex_mask, edge_mask
        )
    raise ValueError(
        f"csr_weighted_distance runs on search='heap', 'bucket' or "
        f"'bidir', got {search!r}"
    )


def csr_bounded_dijkstra_path(
    csr: CSRLike,
    source: int,
    target: int,
    max_dist: Optional[float] = None,
    workspace: Optional[DijkstraWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
    search: str = "heap",
    max_weight: Optional[int] = None,
) -> Optional[List[int]]:
    """A minimum-weight path of total weight <= ``max_dist``, or ``None``.

    CSR twin of the dict backend's :func:`shortest_path` (with
    ``max_dist=None``) and of the truncated "path within budget" probe
    the weighted exact greedy branches on.  Returns the node-index
    sequence of a minimum-weight ``source -> target`` path avoiding
    masked vertices/edges, or ``None`` when every path exceeds the
    budget (pruning makes that equivalent to the unbudgeted shortest
    path being too heavy, since sub-paths of shortest paths are
    shortest).  ``search`` is ``"heap"`` or ``"bucket"``; both engines
    share the strict-improvement predecessor rule and push-order
    tie-break, so the reconstructed path is identical.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    _csr_check_terminal(csr, target, vertex_mask, "target")
    if source == target:
        return [source]
    ws = workspace if workspace is not None else DijkstraWorkspace()
    budget = INFINITY if max_dist is None else max_dist
    if search == "heap":
        reached = _csr_dijkstra(
            csr, source, target, budget, ws, vertex_mask, edge_mask
        )
    elif search == "bucket":
        reached = _csr_dijkstra_bucket(
            csr, source, target, budget, ws, vertex_mask, edge_mask,
            _bucket_max_weight(csr, max_weight),
        )
    else:
        raise ValueError(
            f"csr_bounded_dijkstra_path runs on search='heap' or "
            f"'bucket', got {search!r}"
        )
    if reached and reached[-1] == target:
        return _dijkstra_path(ws, target)
    return None


def _dijkstra_path(ws: DijkstraWorkspace, target: int) -> List[int]:
    """Walk ``ws.pred`` pointers back from a just-settled ``target``."""
    path = [target]
    pred = ws.pred
    u = pred[target]
    while u != -1:
        path.append(u)
        u = pred[u]
    path.reverse()
    return path


def csr_bounded_dijkstra_path_edges(
    csr: CSRLike,
    source: int,
    target: int,
    max_dist: Optional[float] = None,
    workspace: Optional[DijkstraWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> Optional[Tuple[List[int], List[int]]]:
    """Like :func:`csr_bounded_dijkstra_path` but also returns edge ids.

    Returns ``(nodes, edge_ids)`` with ``len(edge_ids) == len(nodes) - 1``
    -- what the weighted edge-fault branch-and-bound needs to stamp a
    path into its fault mask without endpoint->id lookups.
    """
    _csr_check_terminal(csr, source, vertex_mask, "source")
    _csr_check_terminal(csr, target, vertex_mask, "target")
    if source == target:
        return [source], []
    ws = workspace if workspace is not None else DijkstraWorkspace()
    budget = INFINITY if max_dist is None else max_dist
    reached = _csr_dijkstra(
        csr, source, target, budget, ws, vertex_mask, edge_mask,
        need_edge_ids=True,
    )
    if not reached or reached[-1] != target:
        return None
    nodes = [target]
    eids: List[int] = []
    pred = ws.pred
    pred_eid = ws.pred_eid
    u = target
    while pred[u] != -1:
        eids.append(pred_eid[u])
        u = pred[u]
        nodes.append(u)
    nodes.reverse()
    eids.reverse()
    return nodes, eids


# --------------------------------------------------------------------- #
# CSR backend: multi-source batch kernels (the "batch" engine)
# --------------------------------------------------------------------- #

HAVE_NUMPY = _np is not None

#: Environment variable overriding the batch kernel's acceleration
#: choice: ``"auto"`` (numpy when importable, the default), ``"numpy"``
#: (require it), or ``"stdlib"`` (force the pure-Python loops).
BATCH_ACCEL_ENV_VAR = "REPRO_BATCH_ACCEL"


class BatchAccelUnavailable(ValueError):
    """numpy batch acceleration was required but numpy is missing.

    The typed face of the ``accel='numpy'`` / ``REPRO_BATCH_ACCEL=numpy``
    requirement: hard-requiring the vectorized frontier kernels on an
    interpreter without numpy is a capability violation, not a silent
    fallback (``'auto'`` is the fallback spelling).  Subclasses
    ``ValueError`` so pre-existing callers that caught that keep
    working.
    """


def resolve_batch_accel(accel: Optional[str] = None) -> str:
    """Resolve the batch BFS acceleration to ``"numpy"`` or ``"stdlib"``.

    ``None`` consults :data:`BATCH_ACCEL_ENV_VAR` (default ``"auto"``).
    Asking for numpy when it is not importable raises
    :class:`BatchAccelUnavailable`; ``"auto"`` silently falls back to
    the stdlib loops.
    """
    if accel is None:
        accel = os.environ.get(BATCH_ACCEL_ENV_VAR, "auto")
    accel = accel.lower()
    if accel not in ("auto", "numpy", "stdlib"):
        raise ValueError(
            f"unknown batch acceleration {accel!r}; expected 'auto', "
            f"'numpy' or 'stdlib'"
        )
    if accel == "numpy" and not HAVE_NUMPY:
        raise BatchAccelUnavailable(
            "batch acceleration 'numpy' requested but numpy is not "
            "importable; use 'auto' or 'stdlib'"
        )
    if accel == "auto":
        return "numpy" if HAVE_NUMPY else "stdlib"
    return accel


class MultiSourceWorkspace:
    """Preallocated label planes for the multi-source batch kernels.

    One workspace serves an unbounded number of batch calls: every
    buffer is a flat arena of ``roots x num_nodes`` cells addressed by
    the packed code ``root_index * num_nodes + node``, and ``ensure``
    only ever extends it.  Two generation-stamped byte planes (``seen``:
    the cell has a valid tentative label; ``settled``: the cell's
    distance is final, bucket engine only) make the per-call reset O(1)
    no matter how many roots the batch carries.  The circular Dial
    buckets are shared across all roots of a batch -- entries are packed
    codes, so one sweep settles every root's nodes in globally
    nondecreasing distance order while each root's projection of that
    order stays identical to a sequential bucket run.

    Not thread-safe; use one workspace per thread.
    """

    __slots__ = (
        "seen", "settled", "gen", "depth", "dist", "parent", "buckets",
        "np_key", "np_indptr", "np_indices", "np_eids", "np_twin",
    )

    def __init__(self, cells: int = 0) -> None:
        self.seen = bytearray(cells)
        self.settled = bytearray(cells)
        self.gen = 1
        self.depth = [0] * cells
        self.dist = array("d", bytes(8 * cells))
        self.parent = [0] * cells
        self.buckets: List[List[int]] = []
        # Flattened CSR adjacency for the numpy kernel, cached per
        # (graph identity, node count, edge count, mutation version) so
        # repeated batches over one snapshot flatten the rows exactly
        # once and a mutated overlay re-flattens on its next batch.
        self.np_key: Optional[Tuple[int, int, int, int]] = None
        self.np_indptr = None
        self.np_indices = None
        self.np_eids = None
        self.np_twin = None

    def ensure(self, cells: int) -> None:
        """Grow every plane to cover ``cells`` packed codes."""
        short = cells - len(self.seen)
        if short > 0:
            self.seen.extend(bytes(short))
            self.settled.extend(bytes(short))
            self.depth.extend([0] * short)
            self.dist.extend(array("d", bytes(8 * short)))
            self.parent.extend([0] * short)

    def ensure_buckets(self, count: int) -> List[List[int]]:
        """The (empty) circular Dial buckets, grown to ``count`` slots."""
        buckets = self.buckets
        while len(buckets) < count:
            buckets.append([])
        return buckets

    def next_generation(self) -> int:
        """Advance and return the stamp generation (O(1) amortized)."""
        self.gen += 1
        if self.gen == 256:
            self.seen[:] = bytes(len(self.seen))
            self.settled[:] = bytes(len(self.settled))
            self.gen = 1
        return self.gen


def _stamp_fault_planes(
    plane: bytearray, gen: int, members: List[int], num_roots: int, n: int
) -> None:
    """Pre-stamp faulted vertices into every root's label plane."""
    base = 0
    for _ in range(num_roots):
        for b in members:
            plane[base + b] = gen
        base += n


def csr_bfs_multi(
    csr: CSRLike,
    sources: Sequence[int],
    workspace: Optional[MultiSourceWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
) -> List[List[int]]:
    """Level-synchronous BFS from *many* roots in one frontier sweep.

    Returns one list per root: the nodes it reached, in discovery order,
    root first.  Hop counts and first-discoverer parents are left in the
    workspace's ``depth`` / ``parent`` planes (``-1`` at each root) at
    the packed code ``root_index * num_nodes + node`` -- callers read
    the planes directly instead of paying a per-root dict build here.

    The shared frontier holds packed codes from every root; advancing it
    one level advances every root's search one level, so a batch of R
    roots costs one interpreter pass per *level*, not per root.  Because
    codes are appended root by root at each level and never interleave
    within a row scan, each root's projection of the shared frontier
    enumerates (node, parent) pairs in exactly the order
    :func:`csr_bfs_distances` / :func:`csr_bfs_parents` would -- so
    depths and parents are bit-identical to the sequential kernels.
    """
    roots = list(sources)
    for s in roots:
        _csr_check_terminal(csr, s, vertex_mask, "source")
    if not roots:
        return []
    ws = workspace if workspace is not None else MultiSourceWorkspace()
    n = csr.num_nodes
    ws.ensure(len(roots) * n)
    gen = ws.next_generation()
    seen = ws.seen
    depth = ws.depth
    parent = ws.parent
    rows = csr.neighbors
    if vertex_mask is not None and vertex_mask.members:
        _stamp_fault_planes(seen, gen, vertex_mask.members, len(roots), n)
    reached: List[List[int]] = []
    cur: List[int] = []
    base = 0
    for s in roots:
        code = base + s
        seen[code] = gen
        depth[code] = 0
        parent[code] = -1
        reached.append([s])
        cur.append(code)
        base += n
    level = 0
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
        eid_rows = csr.edge_id_rows
        while cur:
            level += 1
            nxt: List[int] = []
            for code in cur:
                r, u = divmod(code, n)
                base = code - u
                out = reached[r]
                row = rows[u]
                erow = eid_rows[u]
                for j in range(len(row)):
                    nc = base + row[j]
                    if seen[nc] == gen:
                        continue
                    if estamp[erow[j]] == egen:
                        continue
                    seen[nc] = gen
                    depth[nc] = level
                    parent[nc] = u
                    out.append(row[j])
                    nxt.append(nc)
            cur = nxt
    else:
        while cur:
            level += 1
            nxt = []
            for code in cur:
                r, u = divmod(code, n)
                base = code - u
                out = reached[r]
                for v in rows[u]:
                    nc = base + v
                    if seen[nc] == gen:
                        continue
                    seen[nc] = gen
                    depth[nc] = level
                    parent[nc] = u
                    out.append(v)
                    nxt.append(nc)
            cur = nxt
    return reached


def csr_bucket_multi(
    csr: CSRLike,
    sources: Sequence[int],
    workspace: Optional[MultiSourceWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
    max_weight: Optional[int] = None,
) -> List[List[int]]:
    """Dial bucket sweep from *many* roots sharing one circular queue.

    The multi-source twin of :func:`_csr_dijkstra_bucket`: valid for
    positive integer weights ``<= max_weight``.  All roots start at
    distance 0, so every queued tentative distance lies in
    ``[d, d + max_weight]`` while distance ``d`` is being scanned and
    the ``max_weight + 1``-slot circular mapping stays collision-free
    exactly as in the single-root engine.

    Returns one list per root: the nodes it settled, in settle order,
    root first.  Final distances and strict-improvement predecessors are
    left in the workspace's ``dist`` / ``parent`` planes (``-1`` at each
    root).  Within a bucket, codes are scanned in append order and
    appends happen exactly when a sequential run over that root would
    push -- so each root's settle order, distances, and parents are
    bit-identical to the ``bucket`` (and therefore ``heap``) engine.
    """
    roots = list(sources)
    for s in roots:
        _csr_check_terminal(csr, s, vertex_mask, "source")
    if not roots:
        return []
    mw = _bucket_max_weight(csr, max_weight)
    ws = workspace if workspace is not None else MultiSourceWorkspace()
    n = csr.num_nodes
    ws.ensure(len(roots) * n)
    gen = ws.next_generation()
    label = ws.seen
    settled = ws.settled
    dist = ws.dist
    pred = ws.parent
    rows = csr.neighbors
    wrows = csr.weight_rows
    if vertex_mask is not None and vertex_mask.members:
        _stamp_fault_planes(settled, gen, vertex_mask.members, len(roots), n)
    slots = mw + 1
    buckets = ws.ensure_buckets(slots)
    reached: List[List[int]] = []
    first = buckets[0]
    base = 0
    for s in roots:
        code = base + s
        dist[code] = 0.0
        label[code] = gen
        pred[code] = -1
        first.append(code)
        reached.append([])
        base += n
    pending = len(roots)
    estamp = egen = None
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
        eid_rows = csr.edge_id_rows
    slot = 0
    try:
        while pending:
            bucket = buckets[slot]
            if bucket:
                # Relaxed edges carry weight >= 1, so nothing is ever
                # appended to the bucket being scanned; plain iteration
                # is safe and preserves push order (see the single-root
                # engine).
                for code in bucket:
                    pending -= 1
                    if settled[code] == gen:
                        continue  # stale entry (or pre-stamped fault)
                    settled[code] = gen
                    r, u = divmod(code, n)
                    base = code - u
                    reached[r].append(u)
                    d = dist[code]
                    if estamp is not None:
                        row = rows[u]
                        erow = eid_rows[u]
                        wrow = wrows[u]
                        for j in range(len(row)):
                            nc = base + row[j]
                            if settled[nc] == gen:
                                continue
                            if estamp[erow[j]] == egen:
                                continue
                            nd = d + wrow[j]
                            if label[nc] != gen or nd < dist[nc]:
                                label[nc] = gen
                                dist[nc] = nd
                                pred[nc] = u
                                buckets[int(nd) % slots].append(nc)
                                pending += 1
                    else:
                        for v, w in zip(rows[u], wrows[u]):
                            nc = base + v
                            if settled[nc] == gen:
                                continue
                            nd = d + w
                            if label[nc] != gen or nd < dist[nc]:
                                label[nc] = gen
                                dist[nc] = nd
                                pred[nc] = u
                                buckets[int(nd) % slots].append(nc)
                                pending += 1
                del bucket[:]
            slot += 1
            if slot == slots:
                slot = 0
    finally:
        for bucket in buckets:
            if bucket:
                del bucket[:]
    return reached


def csr_multi_pair_distances(
    csr: CSRLike,
    pairs: Sequence[Tuple[int, int]],
    workspace: Optional[MultiSourceWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
    engine: str = "bfs",
    max_weight: Optional[int] = None,
) -> List[float]:
    """Many s-t distance probes answered by one multi-source sweep.

    Groups the pairs by source, runs one batched BFS (``engine="bfs"``,
    unit weights) or Dial bucket sweep (``engine="bucket"``, integral
    weights) over the distinct sources, and reads each pair's distance
    off the label planes -- with a global early exit the moment every
    requested target has a final distance.  Returns one float per pair
    (``inf`` for unreachable), identical to looping
    :func:`csr_weighted_distance` pair by pair.
    """
    pair_list = list(pairs)
    out = [INFINITY] * len(pair_list)
    groups: Dict[int, List[Tuple[int, int]]] = {}
    for i, (s, t) in enumerate(pair_list):
        _csr_check_terminal(csr, s, vertex_mask, "source")
        _csr_check_terminal(csr, t, vertex_mask, "target")
        if s == t:
            out[i] = 0.0
        else:
            groups.setdefault(s, []).append((i, t))
    if not groups:
        return out
    roots = list(groups)
    ws = workspace if workspace is not None else MultiSourceWorkspace()
    n = csr.num_nodes
    ws.ensure(len(roots) * n)
    gen = ws.next_generation()
    targets: Set[int] = set()
    base = 0
    for s in roots:
        for _, t in groups[s]:
            targets.add(base + t)
        base += n
    if engine == "bfs":
        _bfs_multi_probe(csr, roots, ws, gen, vertex_mask, edge_mask, targets)
        depth = ws.depth
        seen = ws.seen
        base = 0
        for s in roots:
            for i, t in groups[s]:
                code = base + t
                if seen[code] == gen:
                    out[i] = float(depth[code])
            base += n
    elif engine == "bucket":
        _bucket_multi_probe(
            csr, roots, ws, gen, vertex_mask, edge_mask,
            _bucket_max_weight(csr, max_weight), targets,
        )
        dist = ws.dist
        settled = ws.settled
        base = 0
        for s in roots:
            for i, t in groups[s]:
                code = base + t
                if settled[code] == gen:
                    out[i] = dist[code]
            base += n
    else:
        raise ValueError(
            f"csr_multi_pair_distances runs on engine='bfs' or 'bucket', "
            f"got {engine!r}"
        )
    return out


def _bfs_multi_probe(
    csr: CSRLike,
    roots: List[int],
    ws: MultiSourceWorkspace,
    gen: int,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
    targets: Set[int],
) -> None:
    """Batched BFS that stops once every target code is labeled.

    A BFS depth is final the moment the node is stamped, so the sweep
    may return as soon as the last outstanding target is discovered;
    distances for everything stamped so far are already exact.
    """
    n = csr.num_nodes
    seen = ws.seen
    depth = ws.depth
    rows = csr.neighbors
    if vertex_mask is not None and vertex_mask.members:
        _stamp_fault_planes(seen, gen, vertex_mask.members, len(roots), n)
    outstanding = len(targets)
    cur: List[int] = []
    base = 0
    for s in roots:
        code = base + s
        seen[code] = gen
        depth[code] = 0
        if code in targets:
            outstanding -= 1
        cur.append(code)
        base += n
    if not outstanding:
        return
    estamp = egen = None
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
        eid_rows = csr.edge_id_rows
    level = 0
    while cur:
        level += 1
        nxt: List[int] = []
        for code in cur:
            u = code % n
            base = code - u
            row = rows[u]
            if estamp is not None:
                erow = eid_rows[u]
                for j in range(len(row)):
                    nc = base + row[j]
                    if seen[nc] == gen:
                        continue
                    if estamp[erow[j]] == egen:
                        continue
                    seen[nc] = gen
                    depth[nc] = level
                    nxt.append(nc)
                    if nc in targets:
                        outstanding -= 1
                        if not outstanding:
                            return
            else:
                for v in row:
                    nc = base + v
                    if seen[nc] == gen:
                        continue
                    seen[nc] = gen
                    depth[nc] = level
                    nxt.append(nc)
                    if nc in targets:
                        outstanding -= 1
                        if not outstanding:
                            return
        cur = nxt


def _bucket_multi_probe(
    csr: CSRLike,
    roots: List[int],
    ws: MultiSourceWorkspace,
    gen: int,
    vertex_mask: Optional[FaultMask],
    edge_mask: Optional[FaultMask],
    max_weight: int,
    targets: Set[int],
) -> None:
    """Batched Dial sweep that stops once every target code is settled.

    Unlike BFS, a bucket label is only final at *settle* time, so the
    early exit counts down on settles; targets still unsettled when the
    sweep drains are unreachable and read back as ``inf``.
    """
    n = csr.num_nodes
    label = ws.seen
    settled = ws.settled
    dist = ws.dist
    rows = csr.neighbors
    wrows = csr.weight_rows
    if vertex_mask is not None and vertex_mask.members:
        _stamp_fault_planes(settled, gen, vertex_mask.members, len(roots), n)
    slots = max_weight + 1
    buckets = ws.ensure_buckets(slots)
    outstanding = len(targets)
    first = buckets[0]
    base = 0
    for s in roots:
        code = base + s
        dist[code] = 0.0
        label[code] = gen
        first.append(code)
        base += n
    pending = len(roots)
    estamp = egen = None
    if edge_mask is not None:
        estamp, egen = edge_mask.stamp, edge_mask.gen
        eid_rows = csr.edge_id_rows
    slot = 0
    try:
        while pending:
            bucket = buckets[slot]
            if bucket:
                for code in bucket:
                    pending -= 1
                    if settled[code] == gen:
                        continue  # stale entry (or pre-stamped fault)
                    settled[code] = gen
                    if code in targets:
                        outstanding -= 1
                        if not outstanding:
                            return
                    u = code % n
                    base = code - u
                    d = dist[code]
                    if estamp is not None:
                        row = rows[u]
                        erow = eid_rows[u]
                        wrow = wrows[u]
                        for j in range(len(row)):
                            nc = base + row[j]
                            if settled[nc] == gen:
                                continue
                            if estamp[erow[j]] == egen:
                                continue
                            nd = d + wrow[j]
                            if label[nc] != gen or nd < dist[nc]:
                                label[nc] = gen
                                dist[nc] = nd
                                buckets[int(nd) % slots].append(nc)
                                pending += 1
                    else:
                        for v, w in zip(rows[u], wrows[u]):
                            nc = base + v
                            if settled[nc] == gen:
                                continue
                            nd = d + w
                            if label[nc] != gen or nd < dist[nc]:
                                label[nc] = gen
                                dist[nc] = nd
                                buckets[int(nd) % slots].append(nc)
                                pending += 1
                del bucket[:]
            slot += 1
            if slot == slots:
                slot = 0
    finally:
        for bucket in buckets:
            if bucket:
                del bucket[:]


def _np_adjacency(ws: MultiSourceWorkspace, csr: CSRLike):
    """Flatten the CSR rows into numpy index arrays, cached per graph.

    The key carries the graph's mutation ``version`` stamp when it has
    one (a delta overlay behind a dynamic snapshot): deletions retire
    edge ids without changing ``num_edges``, so the counts alone cannot
    detect that the rows moved under the cache.  Frozen graphs carry no
    version and key as before.
    """
    key = (
        id(csr), csr.num_nodes, csr.num_edges,
        getattr(csr, "version", 0),
    )
    if ws.np_key != key:
        rows = csr.neighbors
        counts = [len(row) for row in rows]
        # int32 throughout: the kernels are memory-bandwidth bound, and
        # packed codes stay below 2**31 because the callers chunk the
        # root dimension (NUMPY_BATCH_CELLS in graph.snapshot).
        indptr = _np.zeros(len(rows) + 1, dtype=_np.int32)
        _np.cumsum(counts, out=indptr[1:])
        indices = _np.fromiter(
            (v for row in rows for v in row), dtype=_np.int32,
            count=int(indptr[-1]),
        )
        eids = _np.fromiter(
            (e for row in csr.edge_id_rows for e in row), dtype=_np.int32,
            count=int(indptr[-1]),
        )
        # Twin slot of each directed slot: slot e holds edge (t, h); its
        # twin is h's slot for (h, t).  Sorting the slots once by (t, h)
        # and once by (h, t) aligns each slot with its twin rank-for-rank
        # (simple graph: keys are unique), giving the reverse map the
        # bottom-up BFS step needs to locate a cell's offset inside its
        # parent's row.
        t = _np.repeat(_np.arange(len(rows), dtype=_np.int64), counts)
        h = indices.astype(_np.int64)
        nn = len(rows)
        i1 = _np.argsort(t * nn + h, kind="stable")
        i2 = _np.argsort(h * nn + t, kind="stable")
        twin = _np.empty(indices.size, dtype=_np.int32)
        twin[i2] = i1.astype(_np.int32)
        ws.np_key = key
        ws.np_indptr = indptr
        ws.np_indices = indices
        ws.np_eids = eids
        ws.np_twin = twin
    return ws.np_indptr, ws.np_indices, ws.np_eids, ws.np_twin


def csr_bfs_multi_numpy(
    csr: CSRLike,
    sources: Sequence[int],
    workspace: Optional[MultiSourceWorkspace] = None,
    vertex_mask: Optional[FaultMask] = None,
    edge_mask: Optional[FaultMask] = None,
    need_parents: bool = True,
    need_depths: bool = True,
    grouped: bool = True,
) -> List[Tuple[List[int], List[float], List[int]]]:
    """Vectorized twin of :func:`csr_bfs_multi` (requires numpy).

    Each level expands the whole shared frontier with array gathers over
    the flattened adjacency instead of Python loops.  Returns one
    ``(nodes, depths, parents)`` triple per root, nodes in discovery
    order with the root first (depth ``0.0``, parent ``-1``).
    ``need_parents=False`` / ``need_depths=False`` skip the parent and
    depth bookkeeping respectively (the corresponding triple slot comes
    back empty) -- single-output consumers shave a third or so of the
    per-level work.  ``grouped=False`` (parents only) skips the
    per-root discovery-order assembly entirely and returns the raw
    parent *plane* -- a flat array of ``len(sources) * n`` cells where
    cell ``r * n + v`` holds ``v``'s parent vertex in root ``r``'s tree
    (``-1`` for roots, masked, and unreachable cells).  Consumers that
    only build order-insensitive mappings (see
    :func:`split_parent_plane`) save the sort and the big intermediate
    lists; the parent *values* are identical either way.

    Parity is preserved structurally: level candidates are enumerated in
    (frontier order, row order) -- the same enumeration as the stdlib
    kernel -- duplicates within a level keep their *first* discoverer
    (a reversed position-stamp scatter makes the earliest candidate
    win), and the next frontier keeps first-occurrence order.  Depths
    and parents are therefore bit-identical to :func:`csr_bfs_multi`.

    Direction optimization: once the frontier's outgoing-edge count
    exceeds the estimated adjacency of the still-unseen cells, the
    kernel flips to a bottom-up step -- each unseen cell scans *its own*
    row for a frontier neighbour instead of the huge frontier pushing
    into mostly-seen cells.  Parity survives the flip because the
    sequential discovery key of a cell is its earliest flat candidate
    position ``frontier_prefix_start(parent) + offset_in_parent_row``,
    which bottom-up recovers exactly via the cached twin-slot map; new
    cells are then ordered by that key, reproducing the top-down
    enumeration bit for bit.
    """
    if _np is None:  # pragma: no cover - guarded by resolve_batch_accel
        raise RuntimeError("csr_bfs_multi_numpy requires numpy")
    np = _np
    if not grouped and not need_parents:
        raise ValueError("grouped=False requires need_parents=True")
    roots = list(sources)
    for s in roots:
        _csr_check_terminal(csr, s, vertex_mask, "source")
    if not roots:
        return []
    ws = workspace if workspace is not None else MultiSourceWorkspace()
    n = csr.num_nodes
    nroots = len(roots)
    indptr, indices, eids, twin = _np_adjacency(ws, csr)
    deg = indptr[1:] - indptr[:-1]
    # Packed codes are kept in int32 when they fit (the snapshot layer's
    # cell-budget chunking keeps them far below 2**31); the kernel is
    # bandwidth bound, so halving the index width is a real win.
    cdt = np.int32 if nroots * n < 2 ** 31 else np.int64
    # Inverted visited plane: the hot per-level test is "is this
    # candidate still unseen", so storing that bit directly saves a
    # full-width boolean invert on every level.
    unseen = np.ones(nroots * n, dtype=bool)
    depth = np.zeros(nroots * n, dtype=np.float64) if need_depths else None
    parent = (
        np.full(nroots * n, -1, dtype=cdt) if need_parents else None
    )
    bases = np.arange(nroots, dtype=cdt) * n
    if vertex_mask is not None and vertex_mask.members:
        members = np.array(vertex_mask.members, dtype=cdt)
        unseen[(bases[:, None] + members[None, :]).ravel()] = False
    emask = None
    if edge_mask is not None:
        emask = (
            np.frombuffer(edge_mask.stamp, dtype=np.uint8)[: csr.num_edges]
            == edge_mask.gen
        )
    rcodes = bases + np.array(roots, dtype=cdt)
    unseen[rcodes] = False
    # Scratch plane doing double duty: top-down levels scatter candidate
    # positions into it for the first-occurrence dedup (only cells
    # written in the current level are read back), and bottom-up levels
    # stamp the frontier with a per-level negative tag for membership
    # tests.  The membership read touches *unwritten* cells, so the
    # plane must start clean -- zeros never collide with the negative
    # tags.
    stamp = np.zeros(nroots * n, dtype=cdt)
    frontier = rcodes
    levels = [rcodes]
    level = 0.0
    cells = nroots * n
    nunseen = int(unseen.sum())
    avg_deg = indices.size / max(1, n)
    sentinel = 1 << 62
    pend = None  # unseen-cell list, materialized at the direction flip
    startp = None
    btag = 0
    while frontier.size:
        level += 1.0
        if pend is None:
            vs = frontier % n
            bs = frontier - vs
            cnt = deg[vs]
            total = int(cnt.sum())
            if total == 0:
                break
            # Direction flip: estimate the bottom-up step's work as the
            # unseen cells' adjacency plus the one-off materialization
            # cost, and switch once the frontier's own edge count beats
            # it.  The estimate uses only sizes, so the choice -- and
            # hence the output -- stays deterministic.
            if total > nunseen * avg_deg + cells // 3:
                pend = np.flatnonzero(unseen).astype(cdt)
                pend = pend[deg[pend % n] > 0]
                startp = np.empty(cells, dtype=np.int64)
        if pend is not None:
            # Bottom-up step: every unseen cell scans its own row for a
            # frontier neighbour.  A cell's sequential discovery key is
            # the flat candidate position its first discoverer would
            # have enumerated it at -- frontier prefix start of the
            # parent plus the cell's offset inside the parent's row
            # (via the twin-slot map) -- so taking the per-cell minimum
            # key and ordering new cells by it reproduces the top-down
            # discovery order exactly.
            if pend.size == 0:
                break
            uvs = pend % n
            ucnt = deg[uvs]
            ustarts = np.cumsum(ucnt) - ucnt
            utotal = int(ustarts[-1] + ucnt[-1])
            upos = np.arange(utotal) + np.repeat(indptr[uvs] - ustarts, ucnt)
            nbr = indices[upos]
            pcode = np.repeat(pend - uvs, ucnt) + nbr
            btag -= 1
            fcnt = deg[frontier % n]
            cstart = np.cumsum(fcnt) - fcnt
            stamp[frontier] = btag
            startp[frontier] = cstart
            member = stamp[pcode] == btag
            if emask is not None:
                member &= ~emask[eids[upos]]
            keys = np.where(
                member, startp[pcode] + (twin[upos] - indptr[nbr]), sentinel
            )
            minkey = np.minimum.reduceat(keys, ustarts)
            disc = minkey < sentinel
            if not disc.any():
                break
            dk = minkey[disc]
            order = np.argsort(dk)
            new = pend[disc][order]
            if need_parents:
                fi = np.searchsorted(cstart, dk[order], side="right") - 1
                parent[new] = frontier[fi] % n
            pend = pend[~disc]
        else:
            # Flat positions of each frontier entry's row, candidate i of
            # entry e sitting at indptr[vs[e]] + i.  Positions index the
            # flattened adjacency, so they fit the same narrow width as
            # the codes whenever the level's candidate count does.
            pdt = np.int32 if total < 2 ** 31 else np.int64
            pos = np.arange(total, dtype=pdt) + np.repeat(
                indptr[vs] - (np.cumsum(cnt, dtype=pdt) - cnt), cnt
            )
            ncodes = np.repeat(bs, cnt) + indices[pos]
            if emask is not None:
                keep = ~emask[eids[pos]]
                ncodes = ncodes[keep]
                if need_parents:
                    pos = pos[keep]
            fresh = unseen[ncodes]
            ncodes = ncodes[fresh]
            if need_parents:
                # Defer compressing ``pos``: keep the surviving
                # candidate indices instead and gather the few winners'
                # positions at the end -- one narrow index array beats
                # a full-width compress of ``pos`` per level.
                fidx = np.flatnonzero(fresh)
            if ncodes.size == 0:
                break
            # First-occurrence dedup within the level, no sorting: scatter
            # candidate positions in reverse (so the earliest write wins),
            # then a candidate that reads back its own position is the
            # first discoverer of its cell.  Compressing by that mask keeps
            # candidate order -- exactly the sequential kernel's discovery
            # order.  Each winner's parent is the owner of its flat row
            # position, recovered by bisecting indptr over winners only.
            idxs = np.arange(ncodes.size, dtype=cdt)
            stamp[ncodes[::-1]] = idxs[::-1]
            win = stamp[ncodes] == idxs
            new = ncodes[win]
            if need_parents:
                parent[new] = (
                    np.searchsorted(indptr, pos[fidx[win]], side="right") - 1
                )
        unseen[new] = False
        nunseen -= new.size
        if need_depths:
            depth[new] = level
        levels.append(new)
        frontier = new
    if not grouped:
        return parent
    codes = np.concatenate(levels)
    roots_of = codes // n
    order = np.argsort(roots_of, kind="stable")
    sorted_codes = codes[order]
    counts = np.bincount(roots_of, minlength=nroots).tolist()
    vs_all = (sorted_codes % n).tolist()
    ds_all = depth[sorted_codes].tolist() if need_depths else []
    ps_all = parent[sorted_codes].tolist() if need_parents else []
    results: List[Tuple[List[int], List[float], List[int]]] = []
    off = 0
    for r in range(nroots):
        end = off + counts[r]
        results.append((
            vs_all[off:end],
            ds_all[off:end] if need_depths else [],
            ps_all[off:end] if need_parents else [],
        ))
        off = end
    return results


def split_parent_plane(plane, nroots: int, n: int):
    """Split a raw parent plane into per-root child/parent id lists.

    Companion to ``csr_bfs_multi_numpy(..., grouped=False)``.  Returns
    ``(children, parents, bounds)``: flat Python lists of child and
    parent vertex ids covering every reached non-root cell (those with
    ``parent >= 0``), plus per-root slice bounds so root ``r``'s pairs
    live at ``bounds[r]:bounds[r + 1]``.  Children come out in ascending
    vertex order rather than discovery order -- callers build mappings,
    which are order-insensitive, and skipping the discovery-order sort
    is precisely the point of the raw plane.
    """
    np = _np
    codes = np.flatnonzero(plane >= 0)
    parents = plane[codes].tolist()
    children = (codes % n).tolist()
    bounds = [0] * (nroots + 1)
    bounds[1:] = np.searchsorted(
        codes, np.arange(1, nroots + 1, dtype=np.int64) * n
    ).tolist()
    return children, parents, bounds


def dijkstra(
    g: GraphLike,
    source: Node,
    target: Optional[Node] = None,
    max_dist: Optional[float] = None,
) -> Dict[Node, float]:
    """Weighted shortest-path distances from ``source``.

    Stops early if ``target`` is settled or if distances exceed
    ``max_dist``.  Unreachable (or pruned) nodes are absent from the result.
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    dist: Dict[Node, float] = {}
    heap: List = [(0.0, 0, source)]
    counter = 1  # tie-break so heterogeneous node types never compare
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in dist:
            continue
        dist[u] = d
        if u == target:
            break
        for v, w in g.neighbor_items(u):
            if v in dist:
                continue
            nd = d + w
            if max_dist is not None and nd > max_dist:
                continue
            heapq.heappush(heap, (nd, counter, v))
            counter += 1
    return dist


def weighted_distance(g: GraphLike, source: Node, target: Node) -> float:
    """Weighted shortest-path distance, or ``inf`` if disconnected."""
    dist = dijkstra(g, source, target=target)
    return dist.get(target, INFINITY)


def shortest_path(
    g: GraphLike, source: Node, target: Node
) -> Optional[List[Node]]:
    """A minimum-weight path from ``source`` to ``target`` as a node list.

    Returns ``None`` when the endpoints are disconnected.  Uses Dijkstra
    with parent pointers (weights are non-negative by construction).
    """
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    if not g.has_node(target):
        raise KeyError(f"target {target!r} not in graph")
    if source == target:
        return [source]
    parent: Dict[Node, Node] = {}
    best: Dict[Node, float] = {source: 0.0}
    done: Set[Node] = set()
    heap: List = [(0.0, 0, source)]
    counter = 1
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return path
        for v, w in g.neighbor_items(u):
            if v in done:
                continue
            nd = d + w
            # heapq keeps stale entries; the `done` check discards them.
            if v not in best or nd < best[v]:
                best[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return None


def connected_components(g: GraphLike) -> List[Set[Node]]:
    """All connected components as a list of node sets."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in g.nodes():
        if start in seen:
            continue
        component = set(bfs_distances(g, start))
        seen |= component
        components.append(component)
    return components


def is_connected(g: GraphLike) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    nodes = list(g.nodes())
    if not nodes:
        return True
    return len(bfs_distances(g, nodes[0])) == len(nodes)


def eccentricity(g: GraphLike, source: Node) -> float:
    """Max hop distance from ``source`` to any node, ``inf`` if disconnected."""
    dist = bfs_distances(g, source)
    if len(dist) != g.num_nodes:
        return INFINITY
    return max(dist.values(), default=0)


def hop_diameter(g: GraphLike) -> float:
    """Unweighted (hop) diameter; ``inf`` if the graph is disconnected."""
    best = 0.0
    for u in g.nodes():
        ecc = eccentricity(g, u)
        if ecc == INFINITY:
            return INFINITY
        best = max(best, ecc)
    return best
