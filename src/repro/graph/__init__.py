"""Graph substrate for the fault-tolerant spanner library.

This subpackage provides the minimal, fast graph machinery the paper's
algorithms are phrased on:

- :class:`~repro.graph.graph.Graph` -- an undirected (optionally weighted)
  graph with dict-of-dict adjacency.
- :class:`~repro.graph.views.VertexFaultView` /
  :class:`~repro.graph.views.EdgeFaultView` -- lazy ``G \\ F`` views used by
  every fault-tolerance routine (O(1) to construct, no copying).
- The CSR execution backend (:mod:`~repro.graph.index`,
  :mod:`~repro.graph.csr`): :class:`~repro.graph.index.NodeIndexer`,
  :class:`~repro.graph.csr.CSRGraph`, :class:`~repro.graph.csr.CSRBuilder`,
  and :class:`~repro.graph.csr.FaultMask` -- the flat-array twin of the
  dict structures that the spanner hot path runs on.
- The snapshot/sweep substrate (:mod:`~repro.graph.snapshot`):
  :class:`~repro.graph.snapshot.CSRSnapshot`,
  :class:`~repro.graph.snapshot.ScenarioSweep`, and
  :class:`~repro.graph.snapshot.DualCSRSnapshot` -- freeze a graph once,
  then batch many fault scenarios as O(|F|) mask re-stamps (the engine
  behind the verification sweeps and the applications layer).
- Traversal primitives (:mod:`~repro.graph.traversal`): BFS distances,
  hop-bounded BFS path extraction (the inner loop of the paper's Algorithm 2),
  and Dijkstra for weighted distances -- each with a dict-backend and a
  CSR-backend (``csr_*`` + :class:`~repro.graph.traversal.BFSWorkspace`)
  implementation.
- Girth computation (:mod:`~repro.graph.girth`), used to validate the
  Moore-bound argument behind the size analysis (Lemma 7 / Theorem 8).
- Workload generators (:mod:`~repro.graph.generators`) for every experiment
  in EXPERIMENTS.md.
- Edge-list I/O (:mod:`~repro.graph.io`).
"""

from repro.graph.graph import Graph, edge_key
from repro.graph.index import NodeIndexer
from repro.graph.csr import CSRBuilder, CSRGraph, FaultMask
from repro.graph.views import (
    EdgeFaultView,
    GraphView,
    IdentityView,
    VertexFaultView,
    fault_view,
)
from repro.graph.traversal import (
    BFSWorkspace,
    DijkstraWorkspace,
    bfs_distances,
    bfs_tree,
    bounded_bfs_path,
    connected_components,
    csr_bfs_distances,
    csr_bfs_parents,
    csr_bounded_bfs_path,
    csr_bounded_bfs_path_edges,
    csr_bounded_dijkstra_path,
    csr_bounded_dijkstra_path_edges,
    csr_dijkstra,
    csr_dijkstra_parents,
    csr_weighted_distance,
    dijkstra,
    hop_distance,
    is_connected,
    shortest_path,
    weighted_distance,
)
from repro.graph.snapshot import CSRSnapshot, DualCSRSnapshot, ScenarioSweep
from repro.graph.girth import girth, has_cycle_shorter_than
from repro.graph import generators
from repro.graph import io
from repro.graph import metrics

__all__ = [
    "Graph",
    "edge_key",
    "NodeIndexer",
    "CSRGraph",
    "CSRBuilder",
    "FaultMask",
    "BFSWorkspace",
    "DijkstraWorkspace",
    "CSRSnapshot",
    "DualCSRSnapshot",
    "ScenarioSweep",
    "csr_bfs_distances",
    "csr_bfs_parents",
    "csr_bounded_bfs_path",
    "csr_bounded_bfs_path_edges",
    "csr_bounded_dijkstra_path",
    "csr_bounded_dijkstra_path_edges",
    "csr_dijkstra",
    "csr_dijkstra_parents",
    "csr_weighted_distance",
    "GraphView",
    "IdentityView",
    "VertexFaultView",
    "EdgeFaultView",
    "fault_view",
    "bfs_distances",
    "bfs_tree",
    "bounded_bfs_path",
    "connected_components",
    "dijkstra",
    "hop_distance",
    "is_connected",
    "shortest_path",
    "weighted_distance",
    "girth",
    "has_cycle_shorter_than",
    "generators",
    "io",
    "metrics",
]
