"""Girth computation.

The size analysis of the paper (Lemma 7 / Theorem 8) rests on the Moore
bound: any n-node graph with girth greater than ``2k`` has ``O(n^(1+1/k))``
edges.  The experiments validate the blocking-set machinery by actually
extracting high-girth subgraphs and checking their girth, so we need an
exact girth routine.

The implementation runs a truncated BFS from every node.  When BFS from
``r`` discovers a *cross edge* between two vertices at depths ``d(u)`` and
``d(v)``, the graph contains a cycle through ``r`` of length at most
``d(u) + d(v) + 1``; minimizing over all roots and cross edges yields the
exact girth (a classical O(nm) argument).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Optional, Union

from repro.graph.graph import Graph, Node
from repro.graph.views import GraphView

GraphLike = Union[Graph, GraphView]

INFINITY = math.inf


def girth(g: GraphLike, upper_bound: Optional[int] = None) -> float:
    """Length of a shortest cycle in ``g``, or ``inf`` if acyclic.

    ``upper_bound`` (when given) lets each BFS stop early once no cycle
    shorter than the bound can be found through the current root; the
    returned value is still exact whenever it is ``<= upper_bound``, and
    ``inf`` is returned when every cycle is longer than the bound.
    """
    best = INFINITY
    for root in g.nodes():
        best = min(best, _shortest_cycle_through(g, root, best, upper_bound))
    if upper_bound is not None and best > upper_bound:
        return INFINITY
    return best


def _shortest_cycle_through(
    g: GraphLike,
    root: Node,
    best_so_far: float,
    upper_bound: Optional[int],
) -> float:
    """Shortest cycle detectable from a BFS rooted at ``root``.

    Standard trick: during BFS, an edge between ``u`` (being expanded, at
    depth d) and an already-seen ``v`` that is not u's parent closes a cycle
    of length ``depth[u] + depth[v] + 1``.  Cycles through the root are
    found exactly; every cycle is found exactly from at least one root.
    """
    limit = best_so_far
    if upper_bound is not None:
        limit = min(limit, float(upper_bound))
    depth: Dict[Node, int] = {root: 0}
    parent: Dict[Node, Optional[Node]] = {root: None}
    frontier = deque([root])
    best = INFINITY
    while frontier:
        u = frontier.popleft()
        du = depth[u]
        # Any cycle closed deeper than this has length > limit already.
        if 2 * du + 1 > limit:
            break
        for v in g.neighbors(u):
            if v == parent[u]:
                continue
            if v in depth:
                cycle_len = du + depth[v] + 1
                if cycle_len < best:
                    best = cycle_len
            else:
                depth[v] = du + 1
                parent[v] = u
                frontier.append(v)
    return best


def has_cycle_shorter_than(g: GraphLike, length: int) -> bool:
    """Whether ``g`` contains a cycle of length strictly less than ``length``.

    Equivalent to ``girth(g) < length`` but may terminate earlier.
    """
    return girth(g, upper_bound=length - 1) <= length - 1


def girth_exceeds(g: GraphLike, threshold: int) -> bool:
    """Whether girth(g) > ``threshold`` (the Lemma 7 condition).

    The high-girth subgraph extracted in the size analysis must have girth
    greater than ``2k``; this is the direct check.
    """
    return girth(g, upper_bound=threshold) == INFINITY
