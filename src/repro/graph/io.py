"""Edge-list serialization.

A deliberately simple text format so spanner outputs can be diffed,
archived alongside EXPERIMENTS.md, and reloaded as test fixtures:

* Lines starting with ``#`` are comments.
* ``node\\t<repr>`` declares an isolated node.
* ``edge\\t<u>\\t<v>\\t<weight>`` declares an edge (tab-separated, so
  node labels may contain spaces).

Node labels are serialized with ``repr`` and parsed back with
``ast.literal_eval``, so ints, strings, and tuples round-trip exactly.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Union

from repro.graph.graph import Graph


def dumps(g: Graph) -> str:
    """Serialize a graph to the text format described in the module docs."""
    lines: List[str] = [f"# graph n={g.num_nodes} m={g.num_edges}"]
    edge_endpoints = set()
    for u, v, w in g.weighted_edges():
        edge_endpoints.add(u)
        edge_endpoints.add(v)
        lines.append(f"edge\t{u!r}\t{v!r}\t{w!r}")
    for u in g.nodes():
        if u not in edge_endpoints:
            lines.append(f"node\t{u!r}")
    return "\n".join(lines) + "\n"


def loads(text: str) -> Graph:
    """Parse a graph from the text format produced by :func:`dumps`."""
    g = Graph()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        kind, _, rest = line.partition("\t")
        if kind == "node":
            g.add_node(ast.literal_eval(rest))
        elif kind == "edge":
            fields = rest.split("\t")
            if len(fields) != 3:
                raise ValueError(
                    f"line {lineno}: edge needs 3 fields, got {len(fields)}"
                )
            u = ast.literal_eval(fields[0])
            v = ast.literal_eval(fields[1])
            g.add_edge(u, v, weight=float(ast.literal_eval(fields[2])))
        else:
            raise ValueError(f"line {lineno}: unknown record kind {kind!r}")
    return g


def save(g: Graph, path: Union[str, Path]) -> None:
    """Write a graph to ``path`` in the text edge-list format."""
    Path(path).write_text(dumps(g))


def load(path: Union[str, Path]) -> Graph:
    """Read a graph from ``path`` (text edge-list format)."""
    return loads(Path(path).read_text())
