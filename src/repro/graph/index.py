"""Stable node <-> integer index mapping for the flat-array backend.

The CSR execution backend (:mod:`repro.graph.csr`) works on dense integer
node ids so that adjacency, visited stamps, and fault masks can live in
contiguous ``array``/``bytearray`` buffers.  :class:`NodeIndexer` is the
bridge: it assigns each node object a small integer the first time it is
seen and never changes an assignment afterwards, so indices handed out
while a graph (or a growing spanner) is being built stay valid for its
whole lifetime.

Indices are assigned densely in first-seen order, which for
``NodeIndexer.from_graph`` means the graph's node insertion order.  That
property matters for backend parity: a BFS over the CSR arrays visits
neighbors in exactly the order the dict-of-dict :class:`~repro.graph.graph.Graph`
yields them, so both backends find the *same* shortest paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.graph.graph import Graph, Node


class NodeIndexer:
    """A bijection between arbitrary hashable nodes and ``0..n-1``.

    Examples
    --------
    >>> ix = NodeIndexer(["a", "b"])
    >>> ix.index("b")
    1
    >>> ix.add("c")
    2
    >>> ix.add("a")  # idempotent
    0
    >>> ix.node(2)
    'c'
    >>> len(ix)
    3
    """

    __slots__ = ("_index", "_nodes")

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self._index: Dict[Node, int] = {}
        self._nodes: List[Node] = []
        for u in nodes:
            self.add(u)

    @classmethod
    def from_graph(cls, g: Graph) -> "NodeIndexer":
        """Index every node of ``g`` in the graph's iteration order."""
        return cls(g.nodes())

    def add(self, node: Node) -> int:
        """Return the index of ``node``, assigning a fresh one if unseen."""
        i = self._index.get(node)
        if i is None:
            i = len(self._nodes)
            self._index[node] = i
            self._nodes.append(node)
        return i

    def index(self, node: Node) -> int:
        """The index of a known node; raises ``KeyError`` if unseen."""
        return self._index[node]

    def get(self, node: Node, default: Optional[int] = None) -> Optional[int]:
        """The index of ``node`` or ``default`` when unseen."""
        return self._index.get(node, default)

    def node(self, i: int) -> Node:
        """The node assigned index ``i``; raises ``IndexError`` if unused."""
        return self._nodes[i]

    def nodes_of(self, indices: Iterable[int]) -> List[Node]:
        """Translate a batch of indices back to node objects."""
        nodes = self._nodes
        return [nodes[i] for i in indices]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __repr__(self) -> str:
        return f"NodeIndexer(n={len(self._nodes)})"
