"""Lazy fault views: the paper's ``G \\ F`` without copying.

Every fault-tolerance routine in the library reasons about the graph that
remains after deleting a fault set ``F`` of vertices or edges.  Materializing
that subgraph would cost O(n + m) per fault set, and the Length-Bounded Cut
approximation (Algorithm 2) inspects up to ``f + 1`` different augmented
fault sets per candidate edge.  These views make ``G \\ F`` an O(|F|)
construction whose ``neighbors`` iteration filters on the fly.

All views expose the same read-only protocol (:class:`GraphView`):
``has_node``, ``neighbors``, ``neighbor_items``, ``weight``, ``nodes``,
``num_nodes`` -- which is exactly what the dict-backend traversal
primitives consume.

These views are the *general* mechanism: they work for any fault set on
any ``Graph`` and remain the reference semantics.  The CSR execution
backend replaces them on the hot path with O(1)-clear
:class:`~repro.graph.csr.FaultMask` stamp arrays over integer node/edge
ids (see ``CSRGraph.vertex_mask`` / ``CSRGraph.edge_mask`` for the
equivalent of :func:`fault_view`); property tests assert the two give
identical traversals.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph, Node, edge_key


class GraphView:
    """Read-only protocol shared by graphs-with-faults.

    Subclasses implement node/neighbor filtering; traversal code is written
    against this interface so the same BFS works on the full graph, on
    ``G \\ F`` for vertex faults, and on ``G \\ F`` for edge faults.
    """

    base: Graph

    def has_node(self, u: Node) -> bool:
        raise NotImplementedError

    def neighbors(self, u: Node) -> Iterator[Node]:
        raise NotImplementedError

    def neighbor_items(self, u: Node) -> Iterator[Tuple[Node, float]]:
        raise NotImplementedError

    def weight(self, u: Node, v: Node) -> float:
        raise NotImplementedError

    def nodes(self) -> Iterator[Node]:
        raise NotImplementedError

    @property
    def num_nodes(self) -> int:
        raise NotImplementedError

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether edge ``{u, v}`` survives in this view."""
        return self.has_node(u) and any(v == x for x in self.neighbors(u))


class IdentityView(GraphView):
    """A view of the whole graph with no faults (``F = emptyset``)."""

    __slots__ = ("base",)

    def __init__(self, base: Graph) -> None:
        self.base = base

    def has_node(self, u: Node) -> bool:
        return self.base.has_node(u)

    def neighbors(self, u: Node) -> Iterator[Node]:
        return self.base.neighbors(u)

    def neighbor_items(self, u: Node) -> Iterator[Tuple[Node, float]]:
        return self.base.neighbor_items(u)

    def weight(self, u: Node, v: Node) -> float:
        return self.base.weight(u, v)

    def nodes(self) -> Iterator[Node]:
        return self.base.nodes()

    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes

    def has_edge(self, u: Node, v: Node) -> bool:
        return self.base.has_edge(u, v)

    def __repr__(self) -> str:
        return f"IdentityView({self.base!r})"


class VertexFaultView(GraphView):
    """The subgraph ``G \\ F`` for a vertex fault set ``F``.

    Faulted vertices disappear along with all incident edges, exactly as in
    Definition 1 of the paper (``G[V \\ F]``).
    """

    __slots__ = ("base", "faults")

    def __init__(self, base: Graph, faults: Iterable[Node]) -> None:
        self.base = base
        self.faults: FrozenSet[Node] = frozenset(faults)

    def has_node(self, u: Node) -> bool:
        return u not in self.faults and self.base.has_node(u)

    def neighbors(self, u: Node) -> Iterator[Node]:
        if u in self.faults:
            raise KeyError(f"node {u!r} is faulted")
        faults = self.faults
        for v in self.base.neighbors(u):
            if v not in faults:
                yield v

    def neighbor_items(self, u: Node) -> Iterator[Tuple[Node, float]]:
        if u in self.faults:
            raise KeyError(f"node {u!r} is faulted")
        faults = self.faults
        for v, w in self.base.neighbor_items(u):
            if v not in faults:
                yield v, w

    def weight(self, u: Node, v: Node) -> float:
        if u in self.faults or v in self.faults:
            raise KeyError(f"edge ({u!r}, {v!r}) touches the fault set")
        return self.base.weight(u, v)

    def nodes(self) -> Iterator[Node]:
        faults = self.faults
        return (u for u in self.base.nodes() if u not in faults)

    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes - sum(
            1 for u in self.faults if self.base.has_node(u)
        )

    def has_edge(self, u: Node, v: Node) -> bool:
        return (
            u not in self.faults
            and v not in self.faults
            and self.base.has_edge(u, v)
        )

    def __repr__(self) -> str:
        return f"VertexFaultView({self.base!r}, |F|={len(self.faults)})"


class EdgeFaultView(GraphView):
    """The subgraph ``(V, E \\ F)`` for an edge fault set ``F``.

    Edges are stored canonically (via :func:`repro.graph.graph.edge_key`), so
    faults may be given in either orientation.
    """

    __slots__ = ("base", "faults")

    def __init__(self, base: Graph, faults: Iterable[Edge]) -> None:
        self.base = base
        self.faults: FrozenSet[Edge] = frozenset(
            edge_key(u, v) for u, v in faults
        )

    def has_node(self, u: Node) -> bool:
        return self.base.has_node(u)

    def neighbors(self, u: Node) -> Iterator[Node]:
        faults = self.faults
        for v in self.base.neighbors(u):
            if edge_key(u, v) not in faults:
                yield v

    def neighbor_items(self, u: Node) -> Iterator[Tuple[Node, float]]:
        faults = self.faults
        for v, w in self.base.neighbor_items(u):
            if edge_key(u, v) not in faults:
                yield v, w

    def weight(self, u: Node, v: Node) -> float:
        if edge_key(u, v) in self.faults:
            raise KeyError(f"edge ({u!r}, {v!r}) is faulted")
        return self.base.weight(u, v)

    def nodes(self) -> Iterator[Node]:
        return self.base.nodes()

    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes

    def has_edge(self, u: Node, v: Node) -> bool:
        return self.base.has_edge(u, v) and edge_key(u, v) not in self.faults

    def __repr__(self) -> str:
        return f"EdgeFaultView({self.base!r}, |F|={len(self.faults)})"


def fault_view(
    base: Graph,
    vertex_faults: Optional[Iterable[Node]] = None,
    edge_faults: Optional[Iterable[Edge]] = None,
) -> GraphView:
    """Build the appropriate view of ``base`` minus the given fault set.

    Exactly one of ``vertex_faults`` / ``edge_faults`` may be non-None;
    passing neither returns an :class:`IdentityView`.
    """
    if vertex_faults is not None and edge_faults is not None:
        raise ValueError("give either vertex faults or edge faults, not both")
    if vertex_faults is not None:
        return VertexFaultView(base, vertex_faults)
    if edge_faults is not None:
        return EdgeFaultView(base, edge_faults)
    return IdentityView(base)
