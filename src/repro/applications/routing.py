"""Spanner-based routing with fault fallback.

Compact routing [TZ01] is among the original motivations for spanners:
route over a sparse subgraph instead of the full topology, paying a
bounded detour.  With an f-fault-tolerant spanner underneath, the same
tables keep working through failures.

:class:`SpannerRouter` precomputes, per destination, a shortest-path
tree *on the spanner* and answers next-hop queries from it.  When a
fault set is reported (up to the spanner's f), affected destinations
are rerouted on the faulted spanner -- by the FT guarantee a route
within stretch (2k-1) of the true post-fault distance always exists.

Routes are loop-free by construction (next hops follow a shortest-path
tree for the current fault set), which the tests check by walking every
route to termination.

Execution backends (``backend=`` keyword, default resolved from
``REPRO_BACKEND``):

* ``"csr"`` -- the spanner is frozen once into a
  :class:`~repro.graph.snapshot.CSRSnapshot` and every table build runs
  on a shared :class:`~repro.graph.snapshot.ScenarioSweep`: a reported
  fault set is an O(|F|) mask re-stamp, and each destination-rooted
  tree comes from the CSR parent arrays (flat-array BFS on unit
  spanners, CSR Dijkstra on weighted ones) -- no lazy view, no per-node
  dict churn.
* ``"dict"`` -- the reference path: one destination-rooted dict
  Dijkstra per (fault set, destination) on a lazy fault view,
  O(n (m' + n log n)) for full tables on a spanner with m' edges.

Both backends build identical tables entry for entry (the CSR substrate
preserves the dict backend's discovery order and strict-improvement
predecessor rule), which `tests/test_applications_parity.py` asserts.
Next-hop lookups themselves stay O(1) table reads either way.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.core.spanner import FaultModel, SpannerResult, resolve_backend
from repro.flow.dinitz import DisjointPathNetwork, FlowWorkspace
from repro.graph.csr import CSRGraph
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.snapshot import CSRSnapshot, ScenarioSweep, resolve_search
from repro.graph.views import EdgeFaultView, VertexFaultView

INFINITY = math.inf


class RoutingError(RuntimeError):
    """Raised when no surviving route exists for a query."""


class SpannerRouter:
    """Next-hop routing over a fault-tolerant spanner.

    Parameters mirror :func:`repro.core.greedy_modified.
    fault_tolerant_spanner`; a prebuilt :class:`SpannerResult` may be
    supplied instead of rebuilding, and ``backend`` selects the table
    construction engine (identical tables either way).  On the CSR
    backend, ``snapshot`` may supply an already-frozen
    :class:`~repro.graph.snapshot.CSRSnapshot` of the spanner (e.g.
    from a :class:`repro.session.SpannerSession`) for the router's
    sweep to re-stamp instead of freezing its own, and ``search`` picks
    the weighted engine for the destination-rooted trees (``'auto'``
    resolves from the snapshot's weight profile: the Dial bucket queue
    on integral-weight spanners; identical tables on every legal
    engine).

    Examples
    --------
    >>> from repro.graph import generators
    >>> g = generators.cycle_graph(6)
    >>> router = SpannerRouter(g, k=2, f=1)
    >>> router.next_hop(0, 3) in (1, 5)
    True
    """

    def __init__(
        self,
        g: Graph,
        k: int,
        f: int,
        fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
        prebuilt: Optional[SpannerResult] = None,
        backend: Optional[str] = None,
        snapshot: Optional[CSRSnapshot] = None,
        search: Optional[str] = None,
    ) -> None:
        self.k = k
        self.f = f
        self.fault_model = FaultModel.coerce(fault_model)
        self.backend = resolve_backend(backend)
        self.search = resolve_search(search)
        if prebuilt is not None:
            result = prebuilt
        else:
            result = fault_tolerant_spanner(
                g, k, f, fault_model=self.fault_model, backend=self.backend
            )
        self.spanner = result.spanner
        self.construction = result
        # Per fault set: per destination: node -> next hop toward dest.
        self._tables: Dict[FrozenSet, Dict[Node, Dict[Node, Node]]] = {}
        self._sweep: Optional[ScenarioSweep] = None
        # Lazy flow substrate for disjoint_routes: (csr, indexer,
        # DisjointPathNetwork, FlowWorkspace), built on first use.
        self._flow: Optional[Tuple] = None
        # Churn stamp: the spanner dict's monotonic ``mutations``
        # counter bumps per streaming update (on both backends --
        # overlay mutations mirror into the dict); tables and the flow
        # network built before the bump describe the pre-churn topology
        # and are dropped wholesale.
        self._version = self.spanner.mutations
        if snapshot is not None:
            if self.backend != "csr":
                raise ValueError("snapshot= requires the csr backend")
            if snapshot.g is not self.spanner:
                raise ValueError(
                    "snapshot does not freeze this router's spanner"
                )
            self._sweep = ScenarioSweep(snapshot, search=self.search)

    # ------------------------------------------------------------- #

    def next_hop(
        self, source: Node, dest: Node, faults: Optional[Iterable] = None
    ) -> Node:
        """The neighbor ``source`` forwards to for ``dest``.

        Raises :class:`RoutingError` when the destination is unreachable
        in the faulted spanner and ``ValueError``/``KeyError`` on invalid
        queries (too many faults, faulted endpoints, unknown nodes).
        """
        if source == dest:
            raise ValueError("source equals destination")
        table = self._table_for(self._normalize(faults), dest)
        hop = table.get(source)
        if hop is None:
            raise RoutingError(
                f"no surviving route from {source!r} to {dest!r}"
            )
        return hop

    def route(
        self, source: Node, dest: Node, faults: Optional[Iterable] = None
    ) -> List[Node]:
        """The full node sequence from ``source`` to ``dest``."""
        fault_key = self._normalize(faults)
        table = self._table_for(fault_key, dest)
        path = [source]
        current = source
        limit = self.spanner.num_nodes + 1
        while current != dest:
            nxt = table.get(current)
            if nxt is None:
                raise RoutingError(
                    f"no surviving route from {source!r} to {dest!r}"
                )
            path.append(nxt)
            current = nxt
            if len(path) > limit:  # pragma: no cover - defensive
                raise RoutingError("routing loop detected")
        return path

    def route_cost(
        self, source: Node, dest: Node, faults: Optional[Iterable] = None
    ) -> float:
        """Total weight of the route returned by :meth:`route`."""
        path = self.route(source, dest, faults=faults)
        return sum(
            self.spanner.weight(a, b) for a, b in zip(path, path[1:])
        )

    def disjoint_routes(
        self,
        source: Node,
        dest: Node,
        count: Optional[int] = None,
        faults: Optional[Iterable] = None,
    ) -> List[List[Node]]:
        """``count`` pairwise disjoint routes from ``source`` to ``dest``.

        Fault-diverse routing: the returned routes are pairwise
        internally vertex-disjoint under the vertex model (edge-disjoint
        under the edge model), so any single fault -- any ``count - 1``
        faults, by Menger -- leaves at least one of them intact.
        ``count`` defaults to ``f + 1``, matching the spanner's fault
        budget.  Already-reported ``faults`` are excluded from every
        route.

        Routes come from the CSR Dinic engine
        (:class:`repro.flow.dinitz.DisjointPathNetwork`) over the frozen
        spanner, so a query costs one unit-capacity max-flow run, not a
        table build; the network and workspace are cached on the router.
        Raises :class:`RoutingError` when fewer than ``count`` disjoint
        routes survive.
        """
        if source == dest:
            raise ValueError("source equals destination")
        if count is None:
            count = self.f + 1
        if count < 1:
            raise ValueError(f"need count >= 1, got {count}")
        for node in (source, dest):
            if not self.spanner.has_node(node):
                raise KeyError(f"{node!r} not in graph")
        fault_key = self._normalize(faults)
        if self.fault_model is FaultModel.VERTEX and (
            source in fault_key or dest in fault_key
        ):
            raise ValueError("route endpoint is in the fault set")
        self._flush_if_stale()
        csr, indexer, network, workspace = self._flow_engine()
        banned_vertices: List[int] = []
        banned_edges: List[int] = []
        if fault_key:
            if self.fault_model is FaultModel.VERTEX:
                banned_vertices = [
                    i
                    for i in (indexer.get(x) for x in fault_key)
                    if i is not None
                ]
            else:
                for a, b in fault_key:
                    ia = indexer.get(a)
                    ib = indexer.get(b)
                    if ia is None or ib is None or not csr.has_edge(ia, ib):
                        continue
                    banned_edges.append(csr.edge_id(ia, ib))
        raw = network.disjoint_paths(
            indexer.index(source),
            indexer.index(dest),
            workspace=workspace,
            limit=count,
            banned_vertices=banned_vertices,
            banned_edges=banned_edges,
        )
        if len(raw) < count:
            raise RoutingError(
                f"only {len(raw)} disjoint routes from {source!r} to "
                f"{dest!r} survive; {count} requested"
            )
        node_of = indexer.node
        return [[node_of(i) for i in path] for path in raw]

    def table(
        self, dest: Node, faults: Optional[Iterable] = None
    ) -> Dict[Node, Node]:
        """The full next-hop table toward ``dest`` under ``faults``.

        Maps every node with a surviving route to its next hop toward
        the destination.  The mapping is the router's cached table --
        treat it as read-only.
        """
        return self._table_for(self._normalize(faults), dest)

    def tables(
        self,
        dests: Optional[Iterable[Node]] = None,
        faults: Optional[Iterable] = None,
    ) -> Dict[Node, Dict[Node, Node]]:
        """Next-hop tables toward *many* destinations in one batch.

        Returns ``{dest: table}`` with each table identical to
        :meth:`table` for that destination; ``dests=None`` builds every
        destination in the spanner.  Destinations already cached for
        this fault set are served from the cache; on the CSR backend all
        remaining destination-rooted trees ride one multi-source batch
        pass (:meth:`~repro.graph.snapshot.ScenarioSweep.parents_multi`)
        instead of one sweep per destination, and the results land in
        the same per-``(fault set, dest)`` cache the single-destination
        path uses.
        """
        fault_key = self._normalize(faults)
        dest_list = (
            list(self.spanner.nodes()) if dests is None else list(dests)
        )
        self._flush_if_stale()
        per_dest = self._tables.setdefault(fault_key, {})
        missing: List[Node] = []
        for dest in dict.fromkeys(dest_list):
            if dest in per_dest:
                continue
            if not self.spanner.has_node(dest):
                raise KeyError(f"destination {dest!r} not in graph")
            if (
                self.fault_model is FaultModel.VERTEX
                and dest in fault_key
            ):
                raise ValueError(
                    f"destination {dest!r} is in the fault set"
                )
            missing.append(dest)
        if missing:
            if self.backend == "csr":
                built = self._stamped_sweep(fault_key).parents_multi(missing)
            else:
                view = self._view(fault_key)
                built = [_dijkstra_parents(view, d) for d in missing]
            for dest, parent in zip(missing, built):
                per_dest[dest] = parent
        return {dest: per_dest[dest] for dest in dest_list}

    def table_size(self) -> int:
        """Total next-hop entries currently materialized (all scenarios)."""
        return sum(
            len(table)
            for per_dest in self._tables.values()
            for table in per_dest.values()
        )

    # ------------------------------------------------------------- #

    def _normalize(self, faults: Optional[Iterable]) -> FrozenSet:
        if faults is None:
            return frozenset()
        if self.fault_model is FaultModel.VERTEX:
            out = frozenset(faults)
        else:
            out = frozenset(edge_key(u, v) for u, v in faults)
        if len(out) > self.f:
            raise ValueError(
                f"{len(out)} faults declared; the spanner tolerates "
                f"at most f={self.f}"
            )
        return out

    def _view(self, fault_key: FrozenSet):
        if not fault_key:
            return self.spanner
        if self.fault_model is FaultModel.VERTEX:
            return VertexFaultView(self.spanner, fault_key)
        return EdgeFaultView(self.spanner, fault_key)

    def _flush_if_stale(self) -> None:
        """Drop tables and the flow network built before the last update.

        The sweep refreshes its own masks through the overlay's version
        stamp; the router additionally owns next-hop tables and a Dinic
        network whose arcs bake in the pre-churn edge list, so both are
        rebuilt from scratch at the next query after the spanner's
        ``mutations`` stamp moves (either backend).  Must run before
        any ``_tables`` / ``_flow`` read.
        """
        v = self.spanner.mutations
        if v != self._version:
            self._version = v
            self._tables.clear()
            self._flow = None

    def _flow_engine(self) -> Tuple:
        """The cached (csr, indexer, network, workspace) flow substrate.

        On the CSR backend the substrate shares the sweep's snapshot;
        the dict backend freezes its own CSR copy of the spanner on
        first use.  One build serves until :meth:`_flush_if_stale`
        sees a streaming update, which resets it.
        """
        if self._flow is None:
            if self.backend == "csr":
                sweep = self._sweep
                if sweep is None:
                    sweep = self._sweep = ScenarioSweep(
                        self.spanner, search=self.search
                    )
                csr = sweep.snap.csr
                indexer = sweep.snap.indexer
            else:
                csr = CSRGraph.from_graph(self.spanner)
                indexer = csr.indexer
            self._flow = (
                csr,
                indexer,
                DisjointPathNetwork(csr, self.fault_model.value),
                FlowWorkspace(),
            )
        return self._flow

    def _stamped_sweep(self, fault_key: FrozenSet) -> ScenarioSweep:
        """The shared snapshot sweep, re-stamped for ``fault_key``."""
        sweep = self._sweep
        if sweep is None:
            sweep = self._sweep = ScenarioSweep(
                self.spanner, search=self.search
            )
        sweep.stamp(fault_key, self.fault_model.value)
        return sweep

    def _table_for(
        self, fault_key: FrozenSet, dest: Node
    ) -> Dict[Node, Node]:
        """Next-hop table toward ``dest`` under ``fault_key`` (cached).

        Built from one destination-rooted single-source tree: each
        reached node's next hop is its parent toward ``dest`` (reversed
        tree).  On the CSR backend the tree comes straight from the
        shared sweep's parent arrays.
        """
        if not self.spanner.has_node(dest):
            raise KeyError(f"destination {dest!r} not in graph")
        if (
            self.fault_model is FaultModel.VERTEX
            and dest in fault_key
        ):
            raise ValueError(f"destination {dest!r} is in the fault set")
        self._flush_if_stale()
        per_dest = self._tables.setdefault(fault_key, {})
        cached = per_dest.get(dest)
        if cached is not None:
            return cached
        if self.backend == "csr":
            parent = self._stamped_sweep(fault_key).parents_toward(dest)
        else:
            parent = _dijkstra_parents(self._view(fault_key), dest)
        # parent[x] is x's predecessor on the dest-rooted tree, i.e. the
        # next hop on x's shortest route TOWARD dest.
        per_dest[dest] = parent
        return parent


def _dijkstra_parents(view, root: Node) -> Dict[Node, Node]:
    """Map each reachable node to its parent toward ``root``."""
    import heapq

    parent: Dict[Node, Node] = {}
    best: Dict[Node, float] = {root: 0.0}
    done = set()
    heap: List = [(0.0, 0, root)]
    counter = 1
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for v, w in view.neighbor_items(u):
            if v in done:
                continue
            nd = d + w
            if v not in best or nd < best[v]:
                best[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return parent
