"""Spanner-based routing with fault fallback.

Compact routing [TZ01] is among the original motivations for spanners:
route over a sparse subgraph instead of the full topology, paying a
bounded detour.  With an f-fault-tolerant spanner underneath, the same
tables keep working through failures.

:class:`SpannerRouter` precomputes, per destination, a shortest-path
tree *on the spanner* and answers next-hop queries from it.  When a
fault set is reported (up to the spanner's f), affected destinations
are rerouted on the faulted spanner -- by the FT guarantee a route
within stretch (2k-1) of the true post-fault distance always exists.

Routes are loop-free by construction (next hops follow a shortest-path
tree for the current fault set), which the tests check by walking every
route to termination.

Backend: dict.  Table construction is n single-source Dijkstras on the
spanner (O(n (m' + n log n)) total); a reported fault set triggers one
rebuild per affected destination on the faulted view.  Next-hop lookups
themselves are O(1) table reads, so the CSR machinery would only touch
the (precomputed, infrequent) rebuild path.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.core.spanner import FaultModel, SpannerResult
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.traversal import dijkstra
from repro.graph.views import EdgeFaultView, VertexFaultView

INFINITY = math.inf


class RoutingError(RuntimeError):
    """Raised when no surviving route exists for a query."""


class SpannerRouter:
    """Next-hop routing over a fault-tolerant spanner.

    Parameters mirror :func:`repro.core.greedy_modified.
    fault_tolerant_spanner`; a prebuilt :class:`SpannerResult` may be
    supplied instead of rebuilding.

    Examples
    --------
    >>> from repro.graph import generators
    >>> g = generators.cycle_graph(6)
    >>> router = SpannerRouter(g, k=2, f=1)
    >>> router.next_hop(0, 3) in (1, 5)
    True
    """

    def __init__(
        self,
        g: Graph,
        k: int,
        f: int,
        fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
        prebuilt: Optional[SpannerResult] = None,
    ) -> None:
        self.k = k
        self.f = f
        self.fault_model = FaultModel.coerce(fault_model)
        if prebuilt is not None:
            result = prebuilt
        else:
            result = fault_tolerant_spanner(
                g, k, f, fault_model=self.fault_model
            )
        self.spanner = result.spanner
        self.construction = result
        # Per fault set: per destination: node -> next hop toward dest.
        self._tables: Dict[FrozenSet, Dict[Node, Dict[Node, Node]]] = {}

    # ------------------------------------------------------------- #

    def next_hop(
        self, source: Node, dest: Node, faults: Optional[Iterable] = None
    ) -> Node:
        """The neighbor ``source`` forwards to for ``dest``.

        Raises :class:`RoutingError` when the destination is unreachable
        in the faulted spanner and ``ValueError``/``KeyError`` on invalid
        queries (too many faults, faulted endpoints, unknown nodes).
        """
        if source == dest:
            raise ValueError("source equals destination")
        table = self._table_for(self._normalize(faults), dest)
        hop = table.get(source)
        if hop is None:
            raise RoutingError(
                f"no surviving route from {source!r} to {dest!r}"
            )
        return hop

    def route(
        self, source: Node, dest: Node, faults: Optional[Iterable] = None
    ) -> List[Node]:
        """The full node sequence from ``source`` to ``dest``."""
        fault_key = self._normalize(faults)
        table = self._table_for(fault_key, dest)
        path = [source]
        current = source
        limit = self.spanner.num_nodes + 1
        while current != dest:
            nxt = table.get(current)
            if nxt is None:
                raise RoutingError(
                    f"no surviving route from {source!r} to {dest!r}"
                )
            path.append(nxt)
            current = nxt
            if len(path) > limit:  # pragma: no cover - defensive
                raise RoutingError("routing loop detected")
        return path

    def route_cost(
        self, source: Node, dest: Node, faults: Optional[Iterable] = None
    ) -> float:
        """Total weight of the route returned by :meth:`route`."""
        path = self.route(source, dest, faults=faults)
        return sum(
            self.spanner.weight(a, b) for a, b in zip(path, path[1:])
        )

    def table_size(self) -> int:
        """Total next-hop entries currently materialized (all scenarios)."""
        return sum(
            len(table)
            for per_dest in self._tables.values()
            for table in per_dest.values()
        )

    # ------------------------------------------------------------- #

    def _normalize(self, faults: Optional[Iterable]) -> FrozenSet:
        if faults is None:
            return frozenset()
        if self.fault_model is FaultModel.VERTEX:
            out = frozenset(faults)
        else:
            out = frozenset(edge_key(u, v) for u, v in faults)
        if len(out) > self.f:
            raise ValueError(
                f"{len(out)} faults declared; the spanner tolerates "
                f"at most f={self.f}"
            )
        return out

    def _view(self, fault_key: FrozenSet):
        if not fault_key:
            return self.spanner
        if self.fault_model is FaultModel.VERTEX:
            return VertexFaultView(self.spanner, fault_key)
        return EdgeFaultView(self.spanner, fault_key)

    def _table_for(
        self, fault_key: FrozenSet, dest: Node
    ) -> Dict[Node, Node]:
        """Next-hop table toward ``dest`` under ``fault_key`` (cached).

        Built from one Dijkstra rooted at the destination: each reached
        node's next hop is its parent toward ``dest`` (reversed tree).
        """
        if not self.spanner.has_node(dest):
            raise KeyError(f"destination {dest!r} not in graph")
        if (
            self.fault_model is FaultModel.VERTEX
            and dest in fault_key
        ):
            raise ValueError(f"destination {dest!r} is in the fault set")
        per_dest = self._tables.setdefault(fault_key, {})
        cached = per_dest.get(dest)
        if cached is not None:
            return cached
        view = self._view(fault_key)
        parent = _dijkstra_parents(view, dest)
        # parent[x] is x's predecessor on the dest-rooted tree, i.e. the
        # next hop on x's shortest route TOWARD dest.
        per_dest[dest] = parent
        return parent


def _dijkstra_parents(view, root: Node) -> Dict[Node, Node]:
    """Map each reachable node to its parent toward ``root``."""
    import heapq

    parent: Dict[Node, Node] = {}
    best: Dict[Node, float] = {root: 0.0}
    done = set()
    heap: List = [(0.0, 0, root)]
    counter = 1
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        for v, w in view.neighbor_items(u):
            if v in done:
                continue
            nd = d + w
            if v not in best or nd < best[v]:
                best[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, counter, v))
                counter += 1
    return parent
