"""Monte-Carlo availability analysis of spanners under random failures.

The spanner guarantee is adversarial and capped at f faults; operators
usually also want the *probabilistic* picture: if each node fails
independently with probability q (or exactly j random nodes fail, for
j possibly beyond f), what fraction of surviving pairs stay connected,
and what stretch do they actually experience?

:func:`availability_analysis` samples failure scenarios and reports
connectivity and stretch quantiles for the graph vs the spanner;
:func:`degradation_profile` sweeps the number of simultaneous failures
to expose where the spanner's behavior falls off the guarantee cliff
(beyond f the stretch bound no longer holds -- measuring by how much it
is exceeded in practice is exactly the kind of evidence a deployment
decision needs).

Execution backends (``backend=`` keyword, default resolved from
``REPRO_BACKEND``):

* ``"csr"`` -- both graphs are frozen once into a
  :class:`~repro.graph.snapshot.DualCSRSnapshot` over one shared index
  space; each sampled scenario is an O(|F|) re-stamp of the shared
  vertex mask, and each distance probe is an early-exit flat-array
  search (hop-bounded BFS on unit inputs, truncated CSR Dijkstra
  otherwise) through one preallocated workspace -- the same
  snapshot-and-sweep discipline as the verification layer.  On
  all-unit inputs (or under ``search="batch"`` on any integral
  weights) each scenario's sampled pairs are answered by **one**
  multi-source batch sweep per side instead of paired per-pair
  probes.
* ``"dict"`` -- the reference path: each scenario materializes lazy
  ``VertexFaultView``s and probes with paired dict Dijkstras.

Both backends draw the identical random scenario/pair sequence and
return bit-identical reports, which
`tests/test_applications_parity.py` and
`benchmarks/bench_applications.py` assert.  Cost either way is
O(samples * pairs) distance probes after the one-off O(n + m) snapshot.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.spanner import resolve_backend
from repro.graph.graph import Graph, Node
from repro.graph.snapshot import (
    DualCSRSnapshot,
    resolve_search,
    validate_search,
    weighted_pair_engine,
)
from repro.graph.traversal import (
    BFSWorkspace,
    DijkstraWorkspace,
    MultiSourceWorkspace,
    csr_bounded_bfs_path,
    csr_multi_pair_distances,
    csr_weighted_distance,
    dijkstra,
)
from repro.graph.views import VertexFaultView

INFINITY = math.inf

#: Legal fault-scenario generators (``fault_process=`` keyword).
FAULT_PROCESSES = ("independent", "clustered", "cascade")


def sample_fault_scenario(
    nodes: Sequence[Node],
    failures: int,
    rng: random.Random,
    fault_process: str = "independent",
    neighbors=None,
):
    """Draw one fault set of exactly ``failures`` nodes.

    ``fault_process`` selects the failure correlation model:

    * ``"independent"`` -- a uniform draw without replacement (exactly
      the classic ``set(rng.sample(nodes, failures))``, so existing
      seeded availability streams are unchanged);
    * ``"clustered"`` -- neighbor contagion: a seeded node fails
      uniformly at random, then each subsequent failure is drawn
      uniformly from the healthy *boundary* of the failed set (nodes
      adjacent to a failure), jumping to a fresh uniform seed whenever
      the boundary is empty (the failed component is isolated).  This
      models rack/partition-style correlated outages, the regime where
      an f-fault guarantee is spent on one neighborhood instead of
      being spread thin.
    * ``"cascade"`` -- load-redistribution chain failures: every node
      starts carrying unit load; when a node fails, its load splits
      equally among its healthy neighbors (shed entirely if it has
      none), and each failure is drawn from the healthy nodes with
      probability proportional to current load -- one ``rng.random()``
      draw per failure, walked over the ``repr``-sorted healthy list.
      With uniform loads (the first draw) this is a uniform pick;
      afterwards overloaded neighbors of past failures are the likely
      next casualties, modeling overload cascades where failures chase
      the redistributed work.

    ``neighbors`` is a callable ``node -> iterable of neighbors``
    (required for ``"clustered"`` and ``"cascade"``).  Boundaries and
    heir sets are recomputed from the fault *set* each step and sorted
    by ``repr``, so the draw sequence depends only on the neighbor
    sets -- never on adjacency iteration order -- making dict-vs-CSR
    parity structural.

    ``nodes`` must be deterministically ordered (the availability
    entry points pass ``sorted(g.nodes(), key=repr)``).
    """
    if failures < 0:
        raise ValueError(f"failures must be >= 0, got {failures}")
    if failures > len(nodes):
        raise ValueError(
            f"cannot fail {failures} of {len(nodes)} node(s)"
        )
    if fault_process == "independent":
        return set(rng.sample(nodes, failures))
    if fault_process not in FAULT_PROCESSES:
        raise ValueError(
            f"unknown fault_process {fault_process!r}; expected one of "
            f"{FAULT_PROCESSES}"
        )
    if neighbors is None:
        raise ValueError(
            f"fault_process={fault_process!r} needs a neighbors callable"
        )
    if fault_process == "cascade":
        loads = {x: 1.0 for x in nodes}
        faults: set = set()
        while len(faults) < failures:
            healthy = [x for x in nodes if x not in faults]
            total = sum(loads[x] for x in healthy)
            r = rng.random() * total
            acc = 0.0
            pick = healthy[-1]  # guard against float accumulation slop
            for x in healthy:
                acc += loads[x]
                if r < acc:
                    pick = x
                    break
            faults.add(pick)
            shed = loads.pop(pick)
            heirs = sorted(
                (v for v in neighbors(pick) if v not in faults), key=repr
            )
            if heirs:
                share = shed / len(heirs)
                for v in heirs:
                    loads[v] += share
        return faults
    faults = set()
    while len(faults) < failures:
        boundary = sorted(
            {
                v
                for u in faults
                for v in neighbors(u)
                if v not in faults
            },
            key=repr,
        )
        if boundary:
            pick = boundary[rng.randrange(len(boundary))]
        else:
            healthy = [x for x in nodes if x not in faults]
            pick = healthy[rng.randrange(len(healthy))]
        faults.add(pick)
    return faults


@dataclass
class AvailabilityReport:
    """Aggregated outcome of one failure-scenario ensemble.

    Attributes
    ----------
    scenarios:
        Number of failure scenarios sampled.
    pairs_checked:
        Total (scenario, pair) samples measured.
    connectivity:
        Fraction of sampled surviving pairs that remained connected in
        the *spanner* (they were connected in the graph).
    mean_stretch / max_stretch / p95_stretch:
        Stretch statistics over sampled pairs connected in both.
    guarantee_violations:
        Sampled pairs whose stretch exceeded the design guarantee
        (possible and expected when failures exceed f).
    """

    scenarios: int
    pairs_checked: int
    connectivity: float
    mean_stretch: float
    max_stretch: float
    p95_stretch: float
    guarantee_violations: int

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.scenarios} scenarios, {self.pairs_checked} pairs: "
            f"connectivity {100 * self.connectivity:.1f}%, "
            f"stretch mean {self.mean_stretch:.2f} / "
            f"p95 {self.p95_stretch:.2f} / max {self.max_stretch:.2f}, "
            f"{self.guarantee_violations} guarantee violations"
        )


class _AvailabilityProbes:
    """Backend-selected s-t distance probes for the sampling loop.

    The dict flavor materializes one pair of lazy views per scenario;
    the CSR flavor stamps one shared vertex mask per scenario and
    probes both graphs through a single preallocated workspace.  Both
    answer the identical distances, so the sampling loop itself is
    backend-agnostic.
    """

    __slots__ = (
        "use_csr", "g", "h", "snap", "ws", "unit", "gv", "hv",
        "eng_g", "eng_h", "mw_g", "mw_h", "index",
        "can_batch", "batch_eng_g", "batch_eng_h", "mws", "_pg", "_ph",
    )

    def __init__(
        self,
        g: Graph,
        h: Graph,
        use_csr: bool,
        snapshot: Optional[DualCSRSnapshot] = None,
        search: Optional[str] = None,
    ) -> None:
        self.use_csr = use_csr
        self.g = g
        self.h = h
        if use_csr:
            if snapshot is None:
                snapshot = DualCSRSnapshot(g, h)
            elif snapshot.g is not g or snapshot.h is not h:
                raise ValueError(
                    "snapshot does not freeze this (graph, spanner) pair"
                )
            self.snap = snapshot
            s = validate_search(
                search, snapshot.snap_g.profile, snapshot.snap_h.profile
            )
            # The hop-BFS fast path serves auto-resolved unit inputs; an
            # explicit engine choice replaces it so every engine cell of
            # the parity matrix genuinely runs its engine.
            self.unit = (
                s == "auto"
                and self.snap.snap_g.unit
                and self.snap.snap_h.unit
            )
            self.eng_g = weighted_pair_engine(s, snapshot.snap_g.profile)
            self.eng_h = weighted_pair_engine(s, snapshot.snap_h.profile)
            self.mw_g = snapshot.snap_g.max_weight
            self.mw_h = snapshot.snap_h.max_weight
            self.index = snapshot.indexer.index
            # Batch plane: an explicit search="batch" submits each
            # scenario's probes as one multi-source sweep per side
            # (BFS planes on unit sides, the shared Dial sweep on
            # integral ones -- validate_search has already rejected
            # float inputs for "batch").  Auto-resolved all-unit inputs
            # batch too: the multi-BFS reads the same hop counts the
            # bounded per-pair BFS would.  Everything else keeps the
            # early-exit per-pair probes.
            if s == "batch":
                self.can_batch = True
                self.batch_eng_g = (
                    "bfs" if snapshot.snap_g.unit else "bucket"
                )
                self.batch_eng_h = (
                    "bfs" if snapshot.snap_h.unit else "bucket"
                )
            else:
                self.can_batch = self.unit
                self.batch_eng_g = self.batch_eng_h = "bfs"
            n = len(self.snap.indexer)
            self.ws = BFSWorkspace(n) if self.unit else DijkstraWorkspace(n)
            self.mws = MultiSourceWorkspace() if self.can_batch else None
        else:
            if snapshot is not None:
                raise ValueError("snapshot= requires the csr backend")
            resolve_search(search)  # validate the name on the dict path
            self.can_batch = False
        self.gv = g
        self.hv = h
        self._pg: Dict[Tuple[Node, Node], float] = {}
        self._ph: Dict[Tuple[Node, Node], float] = {}

    def set_scenario(self, faults: set) -> None:
        """Move to the next sampled fault set (O(|F|) on CSR)."""
        if self.use_csr:
            self.snap.set_vertex_faults(faults)
        else:
            self.gv = VertexFaultView(self.g, faults) if faults else self.g
            self.hv = VertexFaultView(self.h, faults) if faults else self.h

    def prefetch(self, pairs: Sequence[Tuple[Node, Node]]) -> None:
        """Answer a scenario's pair probes in one batched pass per side.

        No-op unless the CSR batch plane applies; otherwise the graph
        side sweeps every sampled pair grouped by source, and the
        spanner side sweeps only the pairs the sampling loop will
        actually re-ask (finite, nonzero graph distance) -- exactly
        mirroring the lazy per-pair loop, so reports stay identical.
        """
        self._pg.clear()
        self._ph.clear()
        if not self.can_batch or not pairs:
            return
        index = self.index
        ipairs = [(index(u), index(v)) for u, v in pairs]
        dg = csr_multi_pair_distances(
            self.snap.csr_g, ipairs, workspace=self.mws,
            vertex_mask=self.snap.vmask, engine=self.batch_eng_g,
            max_weight=self.mw_g,
        )
        pg = self._pg
        for pair, d in zip(pairs, dg):
            pg[pair] = d
        need = [
            (pair, ip)
            for pair, ip in zip(pairs, ipairs)
            if not math.isinf(pg[pair]) and pg[pair] != 0
        ]
        if not need:
            return
        dh = csr_multi_pair_distances(
            self.snap.csr_h, [ip for _, ip in need], workspace=self.mws,
            vertex_mask=self.snap.vmask, engine=self.batch_eng_h,
            max_weight=self.mw_h,
        )
        ph = self._ph
        for (pair, _), d in zip(need, dh):
            ph[pair] = d

    def graph_distance(self, u: Node, v: Node) -> float:
        hit = self._pg.get((u, v))
        if hit is not None:
            return hit
        if self.use_csr:
            return self._probe(
                self.snap.csr_g, u, v, self.eng_g, self.mw_g
            )
        return dijkstra(self.gv, u, target=v).get(v, INFINITY)

    def spanner_distance(self, u: Node, v: Node) -> float:
        hit = self._ph.get((u, v))
        if hit is not None:
            return hit
        if self.use_csr:
            return self._probe(
                self.snap.csr_h, u, v, self.eng_h, self.mw_h
            )
        return dijkstra(self.hv, u, target=v).get(v, INFINITY)

    def _probe(self, csr, u: Node, v: Node, engine: str, mw: int) -> float:
        index = self.index
        iu, iv = index(u), index(v)
        if self.unit:
            path = csr_bounded_bfs_path(
                csr, iu, iv, csr.num_nodes,
                workspace=self.ws, vertex_mask=self.snap.vmask,
            )
            return INFINITY if path is None else float(len(path) - 1)
        return csr_weighted_distance(
            csr, iu, iv, workspace=self.ws, vertex_mask=self.snap.vmask,
            search=engine, max_weight=mw,
        )


def availability_analysis(
    g: Graph,
    spanner: Graph,
    failures: int,
    guarantee: float,
    scenarios: int = 50,
    pairs_per_scenario: int = 30,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    snapshot: Optional[DualCSRSnapshot] = None,
    search: Optional[str] = None,
    fault_process: str = "independent",
) -> AvailabilityReport:
    """Sample ``scenarios`` random sets of exactly ``failures`` nodes.

    For each scenario, sample surviving pairs that are connected in
    ``g \\ F`` and measure their stretch in ``spanner \\ F``.
    ``guarantee`` is the design stretch (2k-1) used to count violations.
    ``backend`` selects the probe engine (identical report either way).
    On the CSR backend, ``snapshot`` may supply an already-frozen
    :class:`~repro.graph.snapshot.DualCSRSnapshot` of (g, spanner) --
    e.g. from :func:`degradation_profile` or a
    :class:`repro.session.SpannerSession` -- so the probes re-stamp it
    instead of freezing their own, and ``search`` picks the weighted
    probe engine (identical report on every legal engine).
    ``fault_process`` selects the scenario generator (see
    :func:`sample_fault_scenario`); the default ``"independent"``
    reproduces the historical uniform draw bit-for-bit.
    """
    if failures < 0:
        raise ValueError(f"failures must be >= 0, got {failures}")
    if guarantee < 1:
        raise ValueError(f"guarantee must be >= 1, got {guarantee}")
    if fault_process not in FAULT_PROCESSES:
        raise ValueError(
            f"unknown fault_process {fault_process!r}; expected one of "
            f"{FAULT_PROCESSES}"
        )
    rng = random.Random(seed)
    nodes = sorted(g.nodes(), key=repr)
    if len(nodes) < failures + 2:
        raise ValueError("graph too small for that many failures")
    probes = _AvailabilityProbes(
        g, spanner, use_csr=resolve_backend(backend) == "csr",
        snapshot=snapshot, search=search,
    )
    stretches: List[float] = []
    connected = 0
    checked = 0
    violations = 0
    for _ in range(scenarios):
        # The scenario draw runs on the reference dict graph regardless
        # of probe backend, so both backends see the identical fault
        # stream (for "independent" this is the historical
        # ``set(rng.sample(nodes, failures))`` draw, unchanged).
        faults = sample_fault_scenario(
            nodes, failures, rng, fault_process, neighbors=g.neighbors
        )
        probes.set_scenario(faults)
        survivors = [x for x in nodes if x not in faults]
        # Draw the whole scenario's pairs up front (the probes consume
        # no randomness, so the stream is unchanged), then let the
        # batch-capable backends answer them in one sweep per side.
        pair_list = [
            tuple(rng.sample(survivors, 2))
            for _ in range(pairs_per_scenario)
        ]
        probes.prefetch(pair_list)
        for u, v in pair_list:
            dg = probes.graph_distance(u, v)
            if math.isinf(dg) or dg == 0:
                continue  # pair not connected in the graph: not counted
            checked += 1
            dh = probes.spanner_distance(u, v)
            if math.isinf(dh):
                continue  # connectivity loss; counted via `connected`
            connected += 1
            s = dh / dg
            stretches.append(s)
            if s > guarantee + 1e-9:
                violations += 1
    stretches.sort()
    return AvailabilityReport(
        scenarios=scenarios,
        pairs_checked=checked,
        connectivity=connected / checked if checked else 1.0,
        mean_stretch=(sum(stretches) / len(stretches)) if stretches else 1.0,
        max_stretch=stretches[-1] if stretches else 1.0,
        p95_stretch=(
            stretches[min(len(stretches) - 1, int(0.95 * len(stretches)))]
            if stretches
            else 1.0
        ),
        guarantee_violations=violations,
    )


def degradation_profile(
    g: Graph,
    spanner: Graph,
    guarantee: float,
    max_failures: int,
    scenarios: int = 30,
    pairs_per_scenario: int = 20,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    snapshot: Optional[DualCSRSnapshot] = None,
    search: Optional[str] = None,
    fault_process: str = "independent",
) -> List[Tuple[int, AvailabilityReport]]:
    """Sweep simultaneous failures 0..max_failures.

    Returns one report per failure count -- the spanner's degradation
    curve.  Within the design budget f the guarantee holds by theorem;
    beyond it this shows the empirical grace.

    On the CSR backend the whole sweep shares **one**
    :class:`~repro.graph.snapshot.DualCSRSnapshot` (supplied via
    ``snapshot`` or frozen here once), so each per-failure-count
    :func:`availability_analysis` call is pure mask re-stamping -- the
    profile performs one freeze per graph no matter how long the sweep.
    ``fault_process`` selects the scenario generator for every failure
    count (see :func:`sample_fault_scenario`).
    """
    if fault_process not in FAULT_PROCESSES:
        raise ValueError(
            f"unknown fault_process {fault_process!r}; expected one of "
            f"{FAULT_PROCESSES}"
        )
    if max_failures < 0:
        raise ValueError(f"max_failures must be >= 0, got {max_failures}")
    if snapshot is None and resolve_backend(backend) == "csr":
        snapshot = DualCSRSnapshot(g, spanner)
    out: List[Tuple[int, AvailabilityReport]] = []
    for j in range(max_failures + 1):
        report = availability_analysis(
            g,
            spanner,
            failures=j,
            guarantee=guarantee,
            scenarios=scenarios,
            pairs_per_scenario=pairs_per_scenario,
            seed=None if seed is None else seed + j,
            backend=backend,
            snapshot=snapshot,
            search=search,
            fault_process=fault_process,
        )
        out.append((j, report))
    return out
