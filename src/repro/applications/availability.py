"""Monte-Carlo availability analysis of spanners under random failures.

The spanner guarantee is adversarial and capped at f faults; operators
usually also want the *probabilistic* picture: if each node fails
independently with probability q (or exactly j random nodes fail, for
j possibly beyond f), what fraction of surviving pairs stay connected,
and what stretch do they actually experience?

:func:`availability_analysis` samples failure scenarios and reports
connectivity and stretch quantiles for the graph vs the spanner;
:func:`degradation_profile` sweeps the number of simultaneous failures
to expose where the spanner's behavior falls off the guarantee cliff
(beyond f the stretch bound no longer holds -- measuring by how much it
is exceeded in practice is exactly the kind of evidence a deployment
decision needs).

Backend: dict.  Each sampled scenario runs paired Dijkstras over lazy
``VertexFaultView``s of the graph and the spanner -- O(samples * pairs)
distance probes overall.  Scenarios here are random and numerous rather
than enumerated and adversarial, so the per-call mask-reuse pattern the
CSR verification sweeps exploit matters less; porting this sampler to a
shared CSR snapshot is future work if it ever dominates a profile.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.graph.graph import Graph, Node
from repro.graph.traversal import dijkstra
from repro.graph.views import VertexFaultView

INFINITY = math.inf


@dataclass
class AvailabilityReport:
    """Aggregated outcome of one failure-scenario ensemble.

    Attributes
    ----------
    scenarios:
        Number of failure scenarios sampled.
    pairs_checked:
        Total (scenario, pair) samples measured.
    connectivity:
        Fraction of sampled surviving pairs that remained connected in
        the *spanner* (they were connected in the graph).
    mean_stretch / max_stretch / p95_stretch:
        Stretch statistics over sampled pairs connected in both.
    guarantee_violations:
        Sampled pairs whose stretch exceeded the design guarantee
        (possible and expected when failures exceed f).
    """

    scenarios: int
    pairs_checked: int
    connectivity: float
    mean_stretch: float
    max_stretch: float
    p95_stretch: float
    guarantee_violations: int

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.scenarios} scenarios, {self.pairs_checked} pairs: "
            f"connectivity {100 * self.connectivity:.1f}%, "
            f"stretch mean {self.mean_stretch:.2f} / "
            f"p95 {self.p95_stretch:.2f} / max {self.max_stretch:.2f}, "
            f"{self.guarantee_violations} guarantee violations"
        )


def availability_analysis(
    g: Graph,
    spanner: Graph,
    failures: int,
    guarantee: float,
    scenarios: int = 50,
    pairs_per_scenario: int = 30,
    seed: Optional[int] = None,
) -> AvailabilityReport:
    """Sample ``scenarios`` random sets of exactly ``failures`` nodes.

    For each scenario, sample surviving pairs that are connected in
    ``g \\ F`` and measure their stretch in ``spanner \\ F``.
    ``guarantee`` is the design stretch (2k-1) used to count violations.
    """
    if failures < 0:
        raise ValueError(f"failures must be >= 0, got {failures}")
    if guarantee < 1:
        raise ValueError(f"guarantee must be >= 1, got {guarantee}")
    rng = random.Random(seed)
    nodes = sorted(g.nodes(), key=repr)
    if len(nodes) < failures + 2:
        raise ValueError("graph too small for that many failures")
    stretches: List[float] = []
    connected = 0
    checked = 0
    violations = 0
    for _ in range(scenarios):
        faults = set(rng.sample(nodes, failures))
        gv = VertexFaultView(g, faults) if faults else g
        hv = VertexFaultView(spanner, faults) if faults else spanner
        survivors = [x for x in nodes if x not in faults]
        for _ in range(pairs_per_scenario):
            u, v = rng.sample(survivors, 2)
            dg = dijkstra(gv, u, target=v).get(v, INFINITY)
            if math.isinf(dg) or dg == 0:
                continue  # pair not connected in the graph: not counted
            checked += 1
            dh = dijkstra(hv, u, target=v).get(v, INFINITY)
            if math.isinf(dh):
                continue  # connectivity loss; counted via `connected`
            connected += 1
            s = dh / dg
            stretches.append(s)
            if s > guarantee + 1e-9:
                violations += 1
    stretches.sort()
    return AvailabilityReport(
        scenarios=scenarios,
        pairs_checked=checked,
        connectivity=connected / checked if checked else 1.0,
        mean_stretch=(sum(stretches) / len(stretches)) if stretches else 1.0,
        max_stretch=stretches[-1] if stretches else 1.0,
        p95_stretch=(
            stretches[min(len(stretches) - 1, int(0.95 * len(stretches)))]
            if stretches
            else 1.0
        ),
        guarantee_violations=violations,
    )


def degradation_profile(
    g: Graph,
    spanner: Graph,
    guarantee: float,
    max_failures: int,
    scenarios: int = 30,
    pairs_per_scenario: int = 20,
    seed: Optional[int] = None,
) -> List[Tuple[int, AvailabilityReport]]:
    """Sweep simultaneous failures 0..max_failures.

    Returns one report per failure count -- the spanner's degradation
    curve.  Within the design budget f the guarantee holds by theorem;
    beyond it this shows the empirical grace.
    """
    if max_failures < 0:
        raise ValueError(f"max_failures must be >= 0, got {max_failures}")
    out: List[Tuple[int, AvailabilityReport]] = []
    for j in range(max_failures + 1):
        report = availability_analysis(
            g,
            spanner,
            failures=j,
            guarantee=guarantee,
            scenarios=scenarios,
            pairs_per_scenario=pairs_per_scenario,
            seed=None if seed is None else seed + j,
        )
        out.append((j, report))
    return out
