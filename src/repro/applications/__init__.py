"""Applications built on fault-tolerant spanners.

The paper's introduction motivates spanners through their applications
(distance oracles [TZ05], synchronizers [PU89], compact routing [TZ01]);
this subpackage makes two of them concrete on top of the library's
fault-tolerant constructions:

* :class:`~repro.applications.oracle.FaultTolerantDistanceOracle` --
  answer approximate distance queries under declared fault sets from the
  spanner alone, with the (2k-1) stretch guarantee inherited from the
  construction.
* :class:`~repro.applications.routing.SpannerRouter` -- compact-style
  next-hop routing over the spanner with per-scenario fault fallback
  (the [TZ01] motivation).
* :mod:`~repro.applications.availability` -- Monte-Carlo availability
  analysis: how do a network and its spanner degrade under random
  failures beyond the designed fault budget f?

Backends: like the construction and verification layers, every
application runs on either execution backend (``backend=`` keyword,
default ``csr`` via ``REPRO_BACKEND``).  The CSR path freezes the
spanner once into a :class:`~repro.graph.snapshot.CSRSnapshot` /
:class:`~repro.graph.snapshot.DualCSRSnapshot` and answers each fault
scenario after an O(|F|) mask re-stamp on a shared
:class:`~repro.graph.snapshot.ScenarioSweep`; the dict path stays the
lazy-view reference.  Answers are bit-identical either way
(`tests/test_applications_parity.py`,
`benchmarks/bench_applications.py`).
"""

from repro.applications.oracle import FaultTolerantDistanceOracle
from repro.applications.routing import RoutingError, SpannerRouter
from repro.applications.availability import (
    AvailabilityReport,
    availability_analysis,
    degradation_profile,
)

__all__ = [
    "FaultTolerantDistanceOracle",
    "SpannerRouter",
    "RoutingError",
    "AvailabilityReport",
    "availability_analysis",
    "degradation_profile",
]
