"""Applications built on fault-tolerant spanners.

The paper's introduction motivates spanners through their applications
(distance oracles [TZ05], synchronizers [PU89], compact routing [TZ01]);
this subpackage makes two of them concrete on top of the library's
fault-tolerant constructions:

* :class:`~repro.applications.oracle.FaultTolerantDistanceOracle` --
  answer approximate distance queries under declared fault sets from the
  spanner alone, with the (2k-1) stretch guarantee inherited from the
  construction.
* :class:`~repro.applications.routing.SpannerRouter` -- compact-style
  next-hop routing over the spanner with per-scenario fault fallback
  (the [TZ01] motivation).
* :mod:`~repro.applications.availability` -- Monte-Carlo availability
  analysis: how do a network and its spanner degrade under random
  failures beyond the designed fault budget f?

Backends: this layer consumes spanners (built on the CSR backend by
default) but queries them on the dict reference path -- each module's
docstring states its own cost model and why CSR is or is not applied.
"""

from repro.applications.oracle import FaultTolerantDistanceOracle
from repro.applications.routing import RoutingError, SpannerRouter
from repro.applications.availability import (
    AvailabilityReport,
    availability_analysis,
    degradation_profile,
)

__all__ = [
    "FaultTolerantDistanceOracle",
    "SpannerRouter",
    "RoutingError",
    "AvailabilityReport",
    "availability_analysis",
    "degradation_profile",
]
