"""Fault-tolerant approximate distance oracle.

The classic application of spanners ([TZ05] built distance oracles; the
fault-tolerant literature started from exactly this use case): replace
the full graph with a sparse subgraph and answer distance queries from
the subgraph alone.  With an f-FT (2k-1)-spanner underneath, the oracle
additionally accepts a *fault set* per query and keeps its guarantee as
long as at most f faults are declared:

    d_{G\\F}(u, v)  <=  oracle.distance(u, v, faults=F)
                    <=  (2k-1) * d_{G\\F}(u, v)

The oracle stores only the spanner -- ``O(k f^(1-1/k) n^(1+1/k))`` edges
instead of m -- and evaluates queries with single-source searches on the
(faulted) spanner.  A per-fault-set LRU of single-source runs amortizes
batches of queries against the same failure scenario, which is the
common pattern in monitoring workloads (one scenario, many pairs); the
batch entry points (:meth:`FaultTolerantDistanceOracle.distances`,
:meth:`FaultTolerantDistanceOracle.distance_matrix`) make that pattern
first-class.

Execution backends (``backend=`` keyword, default resolved from
``REPRO_BACKEND``):

* ``"csr"`` -- the spanner is frozen once into a
  :class:`~repro.graph.snapshot.CSRSnapshot` and every cache miss runs
  on a shared :class:`~repro.graph.snapshot.ScenarioSweep`: switching
  fault scenarios is an O(|F|) mask re-stamp, each single-source run is
  flat-array BFS (unit weights) or CSR Dijkstra (weighted) through one
  preallocated workspace, and no ``G \\ F`` view is ever materialized.
* ``"dict"`` -- the reference path: one lazy fault view plus one dict
  Dijkstra per cache miss, O(m' + n log n) for a spanner with m' edges.

Both backends return bit-identical answers (the CSR substrate preserves
the dict backend's neighbor order and tie-breaking), which
`tests/test_applications_parity.py` and
`benchmarks/bench_applications.py` assert.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.core.spanner import FaultModel, SpannerResult, resolve_backend
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.snapshot import CSRSnapshot, ScenarioSweep, resolve_search
from repro.graph.traversal import dijkstra
from repro.graph.views import EdgeFaultView, VertexFaultView

INFINITY = math.inf


class FaultTolerantDistanceOracle:
    """Approximate distance queries that survive up to f faults.

    Parameters
    ----------
    g:
        The graph to preprocess.  Only its spanner is retained.
    k:
        Stretch parameter; answers are within ``2k - 1`` of true
        post-fault distances.
    f:
        Fault budget per query.
    fault_model:
        ``'vertex'`` or ``'edge'`` -- which kind of faults queries may
        declare.
    cache_size:
        Number of (fault set, source) single-source distance runs kept.
        May be reassigned later; shrinking evicts the oldest entries
        immediately.
    backend:
        ``'csr'`` (shared-snapshot flat-array path, the default) or
        ``'dict'`` (lazy views); answers are identical either way.
    snapshot:
        On the CSR backend, an already-frozen
        :class:`~repro.graph.snapshot.CSRSnapshot` of the spanner (e.g.
        from a :class:`repro.session.SpannerSession`); the oracle's
        sweep then re-stamps it instead of freezing its own.
    search:
        The CSR weighted engine (``'auto'``/``'heap'``/``'bucket'``/
        ``'bidir'``/``'batch'``; see
        :data:`repro.graph.snapshot.SEARCH_MODES`).  ``'auto'`` resolves
        from the spanner snapshot's weight profile -- integral-weight
        spanners answer single-source runs with the Dial bucket queue --
        and routes batch queries through the multi-source kernels, as
        does ``'batch'``.  Answers are identical on every legal engine;
        ignored by the dict backend.

    Examples
    --------
    >>> from repro.graph import generators
    >>> g = generators.gnp_random_graph(50, 0.3, seed=1)
    >>> oracle = FaultTolerantDistanceOracle(g, k=2, f=1)
    >>> d = oracle.distance(0, 10, faults=[5])
    >>> d >= 1
    True
    """

    def __init__(
        self,
        g: Graph,
        k: int,
        f: int,
        fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
        cache_size: int = 128,
        prebuilt: Optional[SpannerResult] = None,
        backend: Optional[str] = None,
        snapshot: Optional[CSRSnapshot] = None,
        search: Optional[str] = None,
    ) -> None:
        self.k = k
        self.f = f
        self.fault_model = FaultModel.coerce(fault_model)
        self.backend = resolve_backend(backend)
        self.search = resolve_search(search)
        if prebuilt is not None:
            if prebuilt.k != k or prebuilt.f < f:
                raise ValueError(
                    "prebuilt spanner parameters do not cover (k, f)"
                )
            result = prebuilt
        else:
            result = fault_tolerant_spanner(
                g, k, f, fault_model=self.fault_model, backend=self.backend
            )
        self.spanner: Graph = result.spanner
        self.construction: SpannerResult = result
        self._cache: "OrderedDict[Tuple[FrozenSet, Node], Dict[Node, float]]"
        self._cache = OrderedDict()
        self._cache_size = 0
        self.cache_size = cache_size  # validated + evicted by the setter
        self._sweep: Optional[ScenarioSweep] = None
        # Churn stamp: cached single-source runs are only valid for the
        # spanner state they were computed at; the dict graph's
        # monotonic ``mutations`` counter (bumped by streaming updates
        # on both backends -- overlay mutations mirror into the dict)
        # tells the cache when that state moved.
        self._version = self.spanner.mutations
        if snapshot is not None:
            if self.backend != "csr":
                raise ValueError("snapshot= requires the csr backend")
            if snapshot.g is not self.spanner:
                raise ValueError(
                    "snapshot does not freeze this oracle's spanner"
                )
            self._sweep = ScenarioSweep(snapshot, search=self.search)

    # ------------------------------------------------------------- #
    # Queries
    # ------------------------------------------------------------- #

    @property
    def stretch(self) -> int:
        """The multiplicative error guarantee, ``2k - 1``."""
        return 2 * self.k - 1

    @property
    def size(self) -> int:
        """Edges stored by the oracle."""
        return self.spanner.num_edges

    @property
    def cache_size(self) -> int:
        """Capacity of the (fault set, source) LRU.

        Assigning a smaller value evicts the oldest entries immediately,
        so the cache never holds stale excess after a shrink.  Assigning
        0 disables caching entirely (every entry is dropped at once and
        no new ones are stored); growing it again later starts from an
        empty cache.
        """
        return self._cache_size

    @cache_size.setter
    def cache_size(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"cache_size must be >= 0, got {size}")
        self._cache_size = size
        if size == 0:
            self._cache.clear()
            return
        while len(self._cache) > size:
            self._cache.popitem(last=False)

    def distance(
        self, u: Node, v: Node, faults: Optional[Iterable] = None
    ) -> float:
        """Approximate distance from u to v avoiding ``faults``.

        Returns ``inf`` when v is unreachable in the faulted spanner
        (which, within the fault budget, implies it is unreachable in
        the faulted graph as well).  Raises ``ValueError`` if more than
        ``f`` faults are declared -- the guarantee would be void.
        """
        fault_key = self._normalize(faults)
        self._check_alive(v, fault_key)
        if u == v:
            self._check_alive(u, fault_key)
            return 0.0
        dist = self._sssp(fault_key, u)
        return dist.get(v, INFINITY)

    def distances_from(
        self, source: Node, faults: Optional[Iterable] = None
    ) -> Dict[Node, float]:
        """All approximate distances from ``source`` under ``faults``."""
        fault_key = self._normalize(faults)
        return dict(self._sssp(fault_key, source))

    def distances(
        self,
        pairs: Iterable[Tuple[Node, Node]],
        faults: Optional[Iterable] = None,
    ) -> List[float]:
        """Batch distances for many pairs under one fault scenario.

        Element ``i`` equals ``distance(pairs[i][0], pairs[i][1],
        faults=faults)`` exactly; the batch form normalizes the fault
        set once, groups the pairs by source, and runs one single-source
        search per *distinct* cache-missing source regardless of LRU
        pressure or pair order -- the "one scenario, many pairs"
        monitoring pattern.  On the CSR backend every cache miss of the
        batch goes through one multi-source kernel pass
        (:meth:`~repro.graph.snapshot.ScenarioSweep.distances_multi`),
        and the runs populate the same ``(fault set, source)`` LRU
        entries the single-query path uses.
        """
        pair_list = list(pairs)
        fault_key = self._normalize(faults)
        out: List[float] = [INFINITY] * len(pair_list)
        by_source: "OrderedDict[Node, List[Tuple[int, Node]]]" = OrderedDict()
        for i, (u, v) in enumerate(pair_list):
            by_source.setdefault(u, []).append((i, v))
        # First pass: validate endpoints (in the single-query order),
        # answer self-pairs, and collect the sources that actually need
        # a single-source run.
        need: List[Node] = []
        for u, targets in by_source.items():
            needed = False
            for i, v in targets:
                self._check_alive(v, fault_key)
                if u == v:
                    self._check_alive(u, fault_key)
                    out[i] = 0.0
                elif not needed:
                    self._check_alive(u, fault_key)
                    needed = True
            if needed:
                need.append(u)
        runs = self._sssp_many(fault_key, need)
        for u, targets in by_source.items():
            sssp = runs.get(u)
            if sssp is None:
                continue  # every pair of this group was a self-pair
            for i, v in targets:
                if u != v:
                    out[i] = sssp.get(v, INFINITY)
        return out

    def distance_matrix(
        self,
        sources: Iterable[Node],
        faults: Optional[Iterable] = None,
    ) -> Dict[Node, Dict[Node, float]]:
        """All distances from each source under one fault scenario.

        Returns ``{source: {node: distance}}`` (duplicate sources
        collapse -- and cost one run, not one per occurrence); each row
        equals :meth:`distances_from` for that source.  On the CSR
        backend one shared snapshot serves the whole matrix and every
        cache-missed row rides one multi-source batch pass.
        """
        fault_key = self._normalize(faults)
        src_list = list(sources)
        distinct = list(dict.fromkeys(src_list))
        for s in distinct:
            self._check_alive(s, fault_key)
        runs = self._sssp_many(fault_key, distinct)
        return {s: dict(runs[s]) for s in src_list}

    def path(
        self, u: Node, v: Node, faults: Optional[Iterable] = None
    ) -> Optional[List[Node]]:
        """An approximately-shortest surviving path, or None.

        The returned path lives entirely in the spanner minus the fault
        set, so it is directly usable as a route.
        """
        fault_key = self._normalize(faults)
        self._check_alive(u, fault_key)
        self._check_alive(v, fault_key)
        if self.backend == "csr":
            return self._stamped_sweep(fault_key).path(u, v)
        from repro.graph.traversal import shortest_path

        view = self._view(fault_key)
        return shortest_path(view, u, v)

    # ------------------------------------------------------------- #
    # Internals
    # ------------------------------------------------------------- #

    def _normalize(self, faults: Optional[Iterable]) -> FrozenSet:
        """Canonicalize a fault iterable into the cache-key form.

        Vertex faults become a frozenset of nodes; edge faults a
        frozenset of canonical ``edge_key`` pairs -- so any iteration
        order, container type, or endpoint orientation of the same
        fault set maps to the same cache key.
        """
        if faults is None:
            return frozenset()
        if self.fault_model is FaultModel.VERTEX:
            out = frozenset(faults)
        else:
            out = frozenset(edge_key(u, v) for u, v in faults)
        if len(out) > self.f:
            raise ValueError(
                f"{len(out)} faults declared but the oracle only "
                f"guarantees up to f={self.f}"
            )
        return out

    def _check_alive(self, u: Node, fault_key: FrozenSet) -> None:
        if not self.spanner.has_node(u):
            raise KeyError(f"node {u!r} not in graph")
        if self.fault_model is FaultModel.VERTEX and u in fault_key:
            raise ValueError(f"query endpoint {u!r} is in the fault set")

    def _view(self, fault_key: FrozenSet):
        if not fault_key:
            return self.spanner
        if self.fault_model is FaultModel.VERTEX:
            return VertexFaultView(self.spanner, fault_key)
        return EdgeFaultView(self.spanner, fault_key)

    def _flush_if_stale(self) -> None:
        """Drop cached runs computed before the last streaming update.

        On the CSR backend the sweep's masks/workspaces refresh
        themselves through the overlay's version stamp; this extends
        the same discipline to the oracle's (fault set, source) LRU on
        *both* backends, which would otherwise serve pre-churn
        distances verbatim.  Must run before any cache lookup.
        """
        v = self.spanner.mutations
        if v != self._version:
            self._version = v
            self._cache.clear()

    def _stamped_sweep(self, fault_key: FrozenSet) -> ScenarioSweep:
        """The shared snapshot sweep, re-stamped for ``fault_key``."""
        sweep = self._sweep
        if sweep is None:
            sweep = self._sweep = ScenarioSweep(
                self.spanner, search=self.search
            )
        sweep.stamp(fault_key, self.fault_model.value)
        return sweep

    def _sssp(self, fault_key: FrozenSet, source: Node) -> Dict[Node, float]:
        self._check_alive(source, fault_key)
        self._flush_if_stale()
        # A zero-capacity LRU is fully disabled: no lookup, no store --
        # the run below is computed fresh and returned without touching
        # the (empty) cache, so there is nothing stale to reuse and
        # nothing to evict.
        if self._cache_size == 0:
            if self.backend == "csr":
                return self._stamped_sweep(fault_key).distances_from(source)
            return dijkstra(self._view(fault_key), source)
        cache_key = (fault_key, source)
        hit = self._cache.get(cache_key)
        if hit is not None:
            self._cache.move_to_end(cache_key)
            return hit
        if self.backend == "csr":
            dist = self._stamped_sweep(fault_key).distances_from(source)
        else:
            dist = dijkstra(self._view(fault_key), source)
        self._cache[cache_key] = dist
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return dist

    def _sssp_many(
        self, fault_key: FrozenSet, sources: List[Node]
    ) -> Dict[Node, Dict[Node, float]]:
        """One single-source run per distinct source, batched.

        Callers have already validated the sources.  Cache hits are
        served (and refreshed) from the LRU; the misses run as one
        multi-source batch on the CSR backend and are stored under the
        same ``(fault set, source)`` keys :meth:`_sssp` uses, so batched
        and single-query paths share cache entries.  With the cache
        disabled every distinct source still computes exactly once per
        batch.
        """
        out: Dict[Node, Dict[Node, float]] = {}
        missing: List[Node] = []
        self._flush_if_stale()
        if self._cache_size == 0:
            missing = [s for s in dict.fromkeys(sources)]
        else:
            for s in dict.fromkeys(sources):
                cache_key = (fault_key, s)
                hit = self._cache.get(cache_key)
                if hit is not None:
                    self._cache.move_to_end(cache_key)
                    out[s] = hit
                else:
                    missing.append(s)
        if not missing:
            return out
        if self.backend == "csr":
            runs = self._stamped_sweep(fault_key).distances_multi(missing)
        else:
            view = self._view(fault_key)
            runs = [dijkstra(view, s) for s in missing]
        for s, dist in zip(missing, runs):
            out[s] = dist
            if self._cache_size:
                self._cache[(fault_key, s)] = dist
                if len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return out
