"""Fault-tolerant approximate distance oracle.

The classic application of spanners ([TZ05] built distance oracles; the
fault-tolerant literature started from exactly this use case): replace
the full graph with a sparse subgraph and answer distance queries from
the subgraph alone.  With an f-FT (2k-1)-spanner underneath, the oracle
additionally accepts a *fault set* per query and keeps its guarantee as
long as at most f faults are declared:

    d_{G\\F}(u, v)  <=  oracle.distance(u, v, faults=F)
                    <=  (2k-1) * d_{G\\F}(u, v)

The oracle stores only the spanner -- ``O(k f^(1-1/k) n^(1+1/k))`` edges
instead of m -- and evaluates queries with Dijkstra on the (faulted)
spanner.  A per-fault-set LRU of single-source runs amortizes batches of
queries against the same failure scenario, which is the common pattern
in monitoring workloads (one scenario, many pairs).

Backend: dict.  Each cache miss is one single-source Dijkstra on the
faulted spanner -- O(m' + n log n) for a spanner with m' edges -- and
the LRU already amortizes the per-scenario pattern; porting the misses
to a shared CSR snapshot (as the verification sweeps do) is a noted
ROADMAP item for batch workloads.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.core.greedy_modified import fault_tolerant_spanner
from repro.core.spanner import FaultModel, SpannerResult
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.traversal import dijkstra
from repro.graph.views import EdgeFaultView, VertexFaultView

INFINITY = math.inf


class FaultTolerantDistanceOracle:
    """Approximate distance queries that survive up to f faults.

    Parameters
    ----------
    g:
        The graph to preprocess.  Only its spanner is retained.
    k:
        Stretch parameter; answers are within ``2k - 1`` of true
        post-fault distances.
    f:
        Fault budget per query.
    fault_model:
        ``'vertex'`` or ``'edge'`` -- which kind of faults queries may
        declare.
    cache_size:
        Number of (fault set, source) single-source distance runs kept.

    Examples
    --------
    >>> from repro.graph import generators
    >>> g = generators.gnp_random_graph(50, 0.3, seed=1)
    >>> oracle = FaultTolerantDistanceOracle(g, k=2, f=1)
    >>> d = oracle.distance(0, 10, faults=[5])
    >>> d >= 1
    True
    """

    def __init__(
        self,
        g: Graph,
        k: int,
        f: int,
        fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
        cache_size: int = 128,
        prebuilt: Optional[SpannerResult] = None,
    ) -> None:
        self.k = k
        self.f = f
        self.fault_model = FaultModel.coerce(fault_model)
        if prebuilt is not None:
            if prebuilt.k != k or prebuilt.f < f:
                raise ValueError(
                    "prebuilt spanner parameters do not cover (k, f)"
                )
            result = prebuilt
        else:
            result = fault_tolerant_spanner(
                g, k, f, fault_model=self.fault_model
            )
        self.spanner: Graph = result.spanner
        self.construction: SpannerResult = result
        self._cache_size = cache_size
        self._cache: "OrderedDict[Tuple[FrozenSet, Node], Dict[Node, float]]"
        self._cache = OrderedDict()

    # ------------------------------------------------------------- #
    # Queries
    # ------------------------------------------------------------- #

    @property
    def stretch(self) -> int:
        """The multiplicative error guarantee, ``2k - 1``."""
        return 2 * self.k - 1

    @property
    def size(self) -> int:
        """Edges stored by the oracle."""
        return self.spanner.num_edges

    def distance(
        self, u: Node, v: Node, faults: Optional[Iterable] = None
    ) -> float:
        """Approximate distance from u to v avoiding ``faults``.

        Returns ``inf`` when v is unreachable in the faulted spanner
        (which, within the fault budget, implies it is unreachable in
        the faulted graph as well).  Raises ``ValueError`` if more than
        ``f`` faults are declared -- the guarantee would be void.
        """
        fault_key = self._normalize(faults)
        self._check_alive(v, fault_key)
        if u == v:
            self._check_alive(u, fault_key)
            return 0.0
        dist = self._sssp(fault_key, u)
        return dist.get(v, INFINITY)

    def distances_from(
        self, source: Node, faults: Optional[Iterable] = None
    ) -> Dict[Node, float]:
        """All approximate distances from ``source`` under ``faults``."""
        fault_key = self._normalize(faults)
        return dict(self._sssp(fault_key, source))

    def path(
        self, u: Node, v: Node, faults: Optional[Iterable] = None
    ) -> Optional[List[Node]]:
        """An approximately-shortest surviving path, or None.

        The returned path lives entirely in the spanner minus the fault
        set, so it is directly usable as a route.
        """
        from repro.graph.traversal import shortest_path

        fault_key = self._normalize(faults)
        self._check_alive(u, fault_key)
        self._check_alive(v, fault_key)
        view = self._view(fault_key)
        return shortest_path(view, u, v)

    # ------------------------------------------------------------- #
    # Internals
    # ------------------------------------------------------------- #

    def _normalize(self, faults: Optional[Iterable]) -> FrozenSet:
        if faults is None:
            return frozenset()
        if self.fault_model is FaultModel.VERTEX:
            out = frozenset(faults)
        else:
            out = frozenset(edge_key(u, v) for u, v in faults)
        if len(out) > self.f:
            raise ValueError(
                f"{len(out)} faults declared but the oracle only "
                f"guarantees up to f={self.f}"
            )
        return out

    def _check_alive(self, u: Node, fault_key: FrozenSet) -> None:
        if not self.spanner.has_node(u):
            raise KeyError(f"node {u!r} not in graph")
        if self.fault_model is FaultModel.VERTEX and u in fault_key:
            raise ValueError(f"query endpoint {u!r} is in the fault set")

    def _view(self, fault_key: FrozenSet):
        if not fault_key:
            return self.spanner
        if self.fault_model is FaultModel.VERTEX:
            return VertexFaultView(self.spanner, fault_key)
        return EdgeFaultView(self.spanner, fault_key)

    def _sssp(self, fault_key: FrozenSet, source: Node) -> Dict[Node, float]:
        self._check_alive(source, fault_key)
        cache_key = (fault_key, source)
        hit = self._cache.get(cache_key)
        if hit is not None:
            self._cache.move_to_end(cache_key)
            return hit
        dist = dijkstra(self._view(fault_key), source)
        self._cache[cache_key] = dist
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return dist
