"""Exact Length-Bounded Cut solvers (exponential time).

Length-Bounded Cut is NP-hard [BEH+06], so these solvers enumerate
candidate fault sets and are only usable on small instances.  They serve
two roles:

1. Ground truth for experiment E1 (quality of the Algorithm 2
   approximation) and for unit/property tests.
2. The inner "if" condition of the paper's Algorithm 1 (the exponential
   greedy), via :func:`exists_vertex_cut` / :func:`exists_edge_cut`.

Two pruning tricks keep the enumeration tolerable:

* Candidates are restricted to vertices (edges) that lie on *some*
  hop-bounded path between the terminals: anything else can never help a
  minimal cut.
* Enumeration proceeds by branching on an uncovered short path (every cut
  must hit every short path), which is exponentially better than the naive
  "all C(n, f) subsets" scan for sparse instances.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.graph.csr import CSRLike
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.traversal import (
    BFSWorkspace,
    bounded_bfs_path,
    csr_bounded_bfs_path,
    csr_bounded_bfs_path_edges,
)
from repro.graph.views import EdgeFaultView, GraphView, VertexFaultView

GraphLike = Union[Graph, GraphView]


# --------------------------------------------------------------------- #
# Cut predicates
# --------------------------------------------------------------------- #


def is_vertex_length_cut(
    g: GraphLike, source: Node, target: Node, t: int, faults: Iterable[Node]
) -> bool:
    """Whether removing ``faults`` pushes the terminals > ``t`` hops apart.

    ``faults`` must not contain the terminals (a cut is a subset of
    ``V \\ {u, v}`` by definition); violating that raises ``ValueError``.
    """
    fault_set = set(faults)
    if source in fault_set or target in fault_set:
        raise ValueError("a length-bounded cut may not contain a terminal")
    view = VertexFaultView(g, fault_set) if fault_set else g
    return bounded_bfs_path(view, source, target, max_hops=t) is None


def is_edge_length_cut(
    g: GraphLike, source: Node, target: Node, t: int, faults: Iterable[Edge]
) -> bool:
    """Edge-fault analogue of :func:`is_vertex_length_cut`."""
    fault_set = {edge_key(u, v) for u, v in faults}
    view = EdgeFaultView(g, fault_set) if fault_set else g
    return bounded_bfs_path(view, source, target, max_hops=t) is None


# --------------------------------------------------------------------- #
# Exact minimum cuts (branch on an uncovered short path)
# --------------------------------------------------------------------- #


def exact_vertex_lbc(
    g: GraphLike,
    source: Node,
    target: Node,
    t: int,
    max_size: Optional[int] = None,
) -> Optional[FrozenSet[Node]]:
    """A minimum vertex length-t cut, or ``None`` if none within budget.

    ``max_size`` bounds the search depth (defaults to n, i.e. unbounded);
    ``None`` is returned both when the terminals are adjacent (no cut can
    exist) and when every cut exceeds ``max_size``.

    The search branches on the vertices of some currently-uncovered path
    of <= t hops: any valid cut must contain at least one interior vertex
    of that path, giving a branching factor of at most ``t - 1`` and depth
    at most ``max_size``.
    """
    if source == target:
        raise ValueError("terminals must be distinct")
    budget = g.num_nodes if max_size is None else max_size
    best: List[Optional[FrozenSet[Node]]] = [None]

    def search(faults: Set[Node], depth_budget: int) -> None:
        if best[0] is not None and len(faults) >= len(best[0]):
            return
        view = VertexFaultView(g, faults) if faults else g
        path = bounded_bfs_path(view, source, target, max_hops=t)
        if path is None:
            if best[0] is None or len(faults) < len(best[0]):
                best[0] = frozenset(faults)
            return
        interior = path[1:-1]
        if not interior or depth_budget == 0:
            return  # direct edge (uncuttable) or out of budget
        for v in interior:
            faults.add(v)
            search(faults, depth_budget - 1)
            faults.remove(v)

    search(set(), budget)
    return best[0]


def exact_edge_lbc(
    g: GraphLike,
    source: Node,
    target: Node,
    t: int,
    max_size: Optional[int] = None,
) -> Optional[FrozenSet[Edge]]:
    """A minimum edge length-t cut, or ``None`` if none within budget."""
    if source == target:
        raise ValueError("terminals must be distinct")
    if max_size is None:
        budget = sum(1 for _ in g.nodes()) ** 2  # always enough
    else:
        budget = max_size
    best: List[Optional[FrozenSet[Edge]]] = [None]

    def search(faults: Set[Edge], depth_budget: int) -> None:
        if best[0] is not None and len(faults) >= len(best[0]):
            return
        view = EdgeFaultView(g, faults) if faults else g
        path = bounded_bfs_path(view, source, target, max_hops=t)
        if path is None:
            if best[0] is None or len(faults) < len(best[0]):
                best[0] = frozenset(faults)
            return
        if depth_budget == 0:
            return
        for i in range(len(path) - 1):
            e = edge_key(path[i], path[i + 1])
            faults.add(e)
            search(faults, depth_budget - 1)
            faults.remove(e)

    search(set(), budget)
    return best[0]


# --------------------------------------------------------------------- #
# CSR fast paths (index-level; used by the exponential greedy's backend)
# --------------------------------------------------------------------- #


def exact_vertex_lbc_csr(
    csr: CSRLike,
    source: int,
    target: int,
    t: int,
    max_size: Optional[int] = None,
    workspace: Optional[BFSWorkspace] = None,
) -> Optional[FrozenSet[int]]:
    """CSR twin of :func:`exact_vertex_lbc`, over node indices.

    Same branch-on-an-uncovered-path search; the candidate fault set is a
    plain set of indices re-stamped into the workspace's vertex mask
    before each BFS (O(|F|) <= O(f) per call).  Both backends find paths
    in identical order, so they return the same minimum cut.
    """
    if source == target:
        raise ValueError("terminals must be distinct")
    budget = csr.num_nodes if max_size is None else max_size
    ws = workspace if workspace is not None else BFSWorkspace(
        csr.num_nodes, csr.num_edges
    )
    ws.ensure(csr.num_nodes, csr.num_edges)
    vmask = ws.vertex_mask
    best: List[Optional[FrozenSet[int]]] = [None]

    def search(faults: Set[int], depth_budget: int) -> None:
        if best[0] is not None and len(faults) >= len(best[0]):
            return
        if faults:
            vmask.clear()
            vmask.add_all(faults)
            path = csr_bounded_bfs_path(
                csr, source, target, t, ws, vertex_mask=vmask
            )
        else:
            path = csr_bounded_bfs_path(csr, source, target, t, ws)
        if path is None:
            if best[0] is None or len(faults) < len(best[0]):
                best[0] = frozenset(faults)
            return
        interior = path[1:-1]
        if not interior or depth_budget == 0:
            return  # direct edge (uncuttable) or out of budget
        for v in interior:
            faults.add(v)
            search(faults, depth_budget - 1)
            faults.remove(v)

    search(set(), budget)
    return best[0]


def exact_edge_lbc_csr(
    csr: CSRLike,
    source: int,
    target: int,
    t: int,
    max_size: Optional[int] = None,
    workspace: Optional[BFSWorkspace] = None,
) -> Optional[FrozenSet[int]]:
    """CSR twin of :func:`exact_edge_lbc`; the cut is a set of edge ids."""
    if source == target:
        raise ValueError("terminals must be distinct")
    budget = csr.num_nodes ** 2 if max_size is None else max_size
    ws = workspace if workspace is not None else BFSWorkspace(
        csr.num_nodes, csr.num_edges
    )
    ws.ensure(csr.num_nodes, csr.num_edges)
    emask = ws.edge_mask
    best: List[Optional[FrozenSet[int]]] = [None]

    def search(faults: Set[int], depth_budget: int) -> None:
        if best[0] is not None and len(faults) >= len(best[0]):
            return
        if faults:
            emask.clear()
            emask.add_all(faults)
            found = csr_bounded_bfs_path_edges(
                csr, source, target, t, ws, edge_mask=emask
            )
        else:
            found = csr_bounded_bfs_path_edges(csr, source, target, t, ws)
        if found is None:
            if best[0] is None or len(faults) < len(best[0]):
                best[0] = frozenset(faults)
            return
        if depth_budget == 0:
            return
        _, eids = found
        for e in eids:
            faults.add(e)
            search(faults, depth_budget - 1)
            faults.remove(e)

    search(set(), budget)
    return best[0]


# --------------------------------------------------------------------- #
# Existence tests (the exponential greedy's "if" condition)
# --------------------------------------------------------------------- #


def exists_vertex_cut(
    g: GraphLike, source: Node, target: Node, t: int, f: int
) -> bool:
    """Whether some vertex set F, |F| <= f, has d_{g\\F}(u, v) > t.

    This is exactly the condition tested by the paper's Algorithm 1 for
    unweighted graphs.  Implemented via the bounded exact search.
    """
    cut = exact_vertex_lbc(g, source, target, t, max_size=f)
    return cut is not None


def exists_edge_cut(
    g: GraphLike, source: Node, target: Node, t: int, f: int
) -> bool:
    """Edge-fault analogue of :func:`exists_vertex_cut`."""
    cut = exact_edge_lbc(g, source, target, t, max_size=f)
    return cut is not None


def brute_force_vertex_lbc(
    g: Graph, source: Node, target: Node, t: int, max_size: int
) -> Optional[FrozenSet[Node]]:
    """Reference oracle: scan all C(n, i) vertex subsets, i <= max_size.

    Exponentially slower than :func:`exact_vertex_lbc`; exists so property
    tests can cross-validate the branch-and-bound search on tiny graphs.
    """
    candidates = [
        v for v in g.nodes() if v != source and v != target
    ]
    for size in range(0, max_size + 1):
        for combo in itertools.combinations(candidates, size):
            if is_vertex_length_cut(g, source, target, t, combo):
                return frozenset(combo)
    return None


def brute_force_edge_lbc(
    g: Graph, source: Node, target: Node, t: int, max_size: int
) -> Optional[FrozenSet[Edge]]:
    """Reference oracle for the edge variant (all edge subsets)."""
    candidates = list(g.edges())
    for size in range(0, max_size + 1):
        for combo in itertools.combinations(candidates, size):
            if is_edge_length_cut(g, source, target, t, combo):
                return frozenset(edge_key(u, v) for u, v in combo)
    return None
