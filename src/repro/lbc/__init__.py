"""Length-Bounded Cut (LBC).

The paper's key technical ingredient: deciding whether a small fault set
can separate two terminals by more than ``t`` hops.  The exact problem is
NP-hard [BEH+06]; the paper's Algorithm 2 solves the gap decision version
``LBC(t, alpha)`` by iterated BFS path removal (the classic "frequency"
approximation of Hitting Set):

* return YES when a length-t cut of size <= alpha exists,
* return NO when every length-t cut has size > alpha * t,
* either answer is acceptable in between.

This subpackage provides that algorithm for both vertex cuts
(:func:`~repro.lbc.approx.lbc_vertex`) and edge cuts
(:func:`~repro.lbc.approx.lbc_edge`), plus exact exponential-time solvers
(:mod:`repro.lbc.exact`) used as ground truth in tests and in experiment E1.
"""

from repro.lbc.approx import (
    LBCAnswer,
    LBCResult,
    lbc_decide,
    lbc_edge,
    lbc_edge_csr,
    lbc_vertex,
    lbc_vertex_csr,
)
from repro.lbc.exact import (
    exact_edge_lbc,
    exact_edge_lbc_csr,
    exact_vertex_lbc,
    exact_vertex_lbc_csr,
    is_edge_length_cut,
    is_vertex_length_cut,
)

__all__ = [
    "LBCAnswer",
    "LBCResult",
    "lbc_decide",
    "lbc_vertex",
    "lbc_edge",
    "lbc_vertex_csr",
    "lbc_edge_csr",
    "exact_vertex_lbc",
    "exact_edge_lbc",
    "exact_vertex_lbc_csr",
    "exact_edge_lbc_csr",
    "is_vertex_length_cut",
    "is_edge_length_cut",
]
