"""Algorithm 2: the gap-decision approximation for Length-Bounded Cut.

Faithful transcription of the paper's Algorithm 2.  Starting from an empty
fault set ``F``, repeat ``alpha + 1`` times: find (by hop-bounded BFS) a
path of at most ``t`` hops between the terminals in ``G \\ F``; if none
exists answer YES, otherwise add the path's interior vertices (vertex
version) or its edges (edge version) to ``F``.  If all ``alpha + 1``
iterations find a path, answer NO.

Correctness (the paper's Theorem 4):

* If a length-t cut ``F*`` with ``|F*| <= alpha`` exists, every removed
  path intersects ``F*``, so after at most ``alpha`` removals no length-t
  path remains -> YES.
* If every length-t cut has size > ``alpha * t``, then the accumulated
  ``F`` (at most ``t`` elements per iteration, so at most ``alpha * t``
  after ``alpha`` iterations) is never a cut -> a path exists in every
  iteration -> NO.

Running time: O((m + n) * alpha).

The YES answer also carries the accumulated fault set ``F`` as a
*certificate*: ``F`` is an actual length-t cut of size at most
``alpha * t`` (this is exactly the set ``F_e`` used to build the blocking
set in Lemma 6, so the greedy algorithms keep it).

Two execution paths implement the identical loop:

* :func:`lbc_vertex` / :func:`lbc_edge` -- the dict backend, working on a
  ``Graph`` (or any ``GraphView``) with per-iteration fault views.
* :func:`lbc_vertex_csr` / :func:`lbc_edge_csr` -- the CSR fast path,
  taking a :class:`~repro.graph.csr.CSRGraph`/``CSRBuilder``, a reusable
  :class:`~repro.graph.traversal.BFSWorkspace`, and stamping faults into
  the workspace's :class:`~repro.graph.csr.FaultMask` instead of building
  views.  Results are translated back through a
  :class:`~repro.graph.index.NodeIndexer`, so the returned
  :class:`LBCResult` is indistinguishable from the dict backend's (both
  backends find the same BFS paths, hence the same cuts and answers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple, Union

from repro.graph.csr import CSRLike
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.index import NodeIndexer
from repro.graph.traversal import (
    BFSWorkspace,
    _csr_path,
    _csr_path_edges,
    _csr_search,
    bounded_bfs_path,
)
from repro.graph.views import EdgeFaultView, GraphView, VertexFaultView


class LBCAnswer(enum.Enum):
    """The two answers of the gap decision problem."""

    YES = "yes"  # a length-t cut of size <= alpha exists (or may exist)
    NO = "no"  # no length-t cut of size <= alpha exists (certainly)


@dataclass(frozen=True)
class LBCResult:
    """Outcome of one LBC(t, alpha) run.

    Attributes
    ----------
    answer:
        YES or NO per the gap-decision contract.
    cut:
        On YES: the accumulated fault set, which is a genuine length-t cut
        of size at most ``alpha * t`` (vertices or canonical edge tuples
        depending on the variant).  On NO: the accumulated set is *not* a
        cut; it is still reported for diagnostics.
    paths:
        The hop-bounded paths removed in successive iterations (node
        sequences).  ``len(paths)`` equals the number of BFS calls that
        found a path.
    iterations:
        Total BFS invocations performed (including the final one that
        found no path, when the answer is YES).
    """

    answer: LBCAnswer
    cut: FrozenSet
    paths: Tuple[Tuple[Node, ...], ...]
    iterations: int

    @property
    def is_yes(self) -> bool:
        """Convenience: whether the answer is YES."""
        return self.answer is LBCAnswer.YES


def lbc_vertex(
    g: Union[Graph, GraphView],
    source: Node,
    target: Node,
    t: int,
    alpha: int,
) -> LBCResult:
    """Vertex-cut LBC(t, alpha) on ``g`` with terminals ``source, target``.

    Returns YES iff the iterated-BFS procedure certifies that some vertex
    set ``F`` (excluding the terminals) of size at most ``alpha * t`` has
    ``d_{g \\ F}(source, target) > t``; guaranteed YES when a cut of size
    <= alpha exists and guaranteed NO when none of size <= alpha * t does.

    When the terminals are adjacent in ``g`` the answer is immediately NO:
    the direct edge survives every interior-vertex removal, so no vertex
    length-t cut exists at all.  (The paper's greedy only queries pairs
    whose edge is absent from ``H``, so it never hits this case.)
    """
    _validate(g, source, target, t, alpha)
    faults: Set[Node] = set()
    removed_paths: List[Tuple[Node, ...]] = []
    for iteration in range(1, alpha + 2):
        view = VertexFaultView(g, faults) if faults else g
        path = bounded_bfs_path(view, source, target, max_hops=t)
        if path is None:
            return LBCResult(
                answer=LBCAnswer.YES,
                cut=frozenset(faults),
                paths=tuple(removed_paths),
                iterations=iteration,
            )
        if len(path) == 2:
            # Direct edge: un-cuttable by vertex faults, so certainly NO.
            return LBCResult(
                answer=LBCAnswer.NO,
                cut=frozenset(faults),
                paths=tuple(removed_paths) + (tuple(path),),
                iterations=iteration,
            )
        removed_paths.append(tuple(path))
        faults.update(path[1:-1])  # interior vertices only (P \ {u, v})
    return LBCResult(
        answer=LBCAnswer.NO,
        cut=frozenset(faults),
        paths=tuple(removed_paths),
        iterations=alpha + 1,
    )


def lbc_edge(
    g: Union[Graph, GraphView],
    source: Node,
    target: Node,
    t: int,
    alpha: int,
) -> LBCResult:
    """Edge-cut LBC(t, alpha): identical loop, faulting path *edges*.

    This is the paper's "trivial change" for edge fault-tolerance: ``F``
    is an edge set and each iteration adds every edge of the found path.
    """
    _validate(g, source, target, t, alpha)
    faults: Set[Edge] = set()
    removed_paths: List[Tuple[Node, ...]] = []
    for iteration in range(1, alpha + 2):
        view = EdgeFaultView(g, faults) if faults else g
        path = bounded_bfs_path(view, source, target, max_hops=t)
        if path is None:
            return LBCResult(
                answer=LBCAnswer.YES,
                cut=frozenset(faults),
                paths=tuple(removed_paths),
                iterations=iteration,
            )
        removed_paths.append(tuple(path))
        faults.update(
            edge_key(path[i], path[i + 1]) for i in range(len(path) - 1)
        )
    return LBCResult(
        answer=LBCAnswer.NO,
        cut=frozenset(faults),
        paths=tuple(removed_paths),
        iterations=alpha + 1,
    )


def lbc_decide(
    g: Union[Graph, GraphView],
    source: Node,
    target: Node,
    t: int,
    alpha: int,
    fault_model: str = "vertex",
) -> LBCResult:
    """Dispatch to :func:`lbc_vertex` or :func:`lbc_edge` by name.

    ``fault_model`` is ``"vertex"`` or ``"edge"`` -- the same switch the
    spanner construction API exposes.
    """
    if fault_model == "vertex":
        return lbc_vertex(g, source, target, t, alpha)
    if fault_model == "edge":
        return lbc_edge(g, source, target, t, alpha)
    raise ValueError(f"unknown fault model {fault_model!r}")


def _validate(g, source: Node, target: Node, t: int, alpha: int) -> None:
    """Shared argument validation for the LBC entry points."""
    if t < 1:
        raise ValueError(f"hop bound t must be >= 1, got {t}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    if source == target:
        raise ValueError("terminals must be distinct")
    if not g.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    if not g.has_node(target):
        raise KeyError(f"target {target!r} not in graph")


# --------------------------------------------------------------------- #
# CSR fast path
# --------------------------------------------------------------------- #


def _validate_csr(
    csr: CSRLike, source: int, target: int, t: int, alpha: int
) -> None:
    """Index-level twin of :func:`_validate`."""
    if t < 1:
        raise ValueError(f"hop bound t must be >= 1, got {t}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    if source == target:
        raise ValueError("terminals must be distinct")
    n = csr.num_nodes
    if not 0 <= source < n:
        raise KeyError(f"source index {source} not in graph")
    if not 0 <= target < n:
        raise KeyError(f"target index {target} not in graph")


def _translate_paths(
    removed: List[List[int]], indexer: Optional[NodeIndexer]
) -> Tuple[Tuple[Node, ...], ...]:
    """Index paths -> node-object paths (identity when no indexer)."""
    if indexer is None:
        return tuple(tuple(p) for p in removed)
    node = indexer.node
    return tuple(tuple(node(i) for i in p) for p in removed)


def lbc_vertex_csr(
    csr: CSRLike,
    source: int,
    target: int,
    t: int,
    alpha: int,
    workspace: Optional[BFSWorkspace] = None,
    indexer: Optional[NodeIndexer] = None,
) -> LBCResult:
    """Vertex-cut LBC(t, alpha) on a CSR graph: the zero-allocation twin
    of :func:`lbc_vertex`.

    ``source`` / ``target`` are node *indices*; the accumulated fault set
    lives in ``workspace.vertex_mask`` (cleared on entry), so no views or
    frozensets are built during the loop.  When ``indexer`` is given the
    returned :class:`LBCResult` reports node objects (identical to what
    :func:`lbc_vertex` on the equivalent dict graph returns); otherwise it
    reports raw indices.
    """
    _validate_csr(csr, source, target, t, alpha)
    ws = workspace if workspace is not None else BFSWorkspace(
        csr.num_nodes, csr.num_edges
    )
    ws.ensure(csr.num_nodes, csr.num_edges)
    vmask = ws.vertex_mask
    vmask.clear()
    # The accumulated fault set lives solely in the mask; its `members`
    # list doubles as the iteration-order record for the certificate.
    faults = vmask.members
    removed: List[List[int]] = []
    node = indexer.node if indexer is not None else (lambda i: i)
    for iteration in range(1, alpha + 2):
        # Terminals were validated once above and are never faulted, so
        # the search core is invoked directly (no per-BFS re-checks).
        found = _csr_search(
            csr, source, target, t, ws,
            vmask if faults else None, None, False,
        )
        path = _csr_path(ws, target) if found else None
        if path is None:
            return LBCResult(
                answer=LBCAnswer.YES,
                cut=frozenset(node(i) for i in faults),
                paths=_translate_paths(removed, indexer),
                iterations=iteration,
            )
        if len(path) == 2:
            # Direct edge: un-cuttable by vertex faults, so certainly NO.
            removed.append(path)
            return LBCResult(
                answer=LBCAnswer.NO,
                cut=frozenset(node(i) for i in faults),
                paths=_translate_paths(removed, indexer),
                iterations=iteration,
            )
        removed.append(path)
        for i in path[1:-1]:  # interior vertices only (P \ {u, v})
            vmask.add(i)
    return LBCResult(
        answer=LBCAnswer.NO,
        cut=frozenset(node(i) for i in faults),
        paths=_translate_paths(removed, indexer),
        iterations=alpha + 1,
    )


def lbc_edge_csr(
    csr: CSRLike,
    source: int,
    target: int,
    t: int,
    alpha: int,
    workspace: Optional[BFSWorkspace] = None,
    indexer: Optional[NodeIndexer] = None,
) -> LBCResult:
    """Edge-cut LBC(t, alpha) on a CSR graph: twin of :func:`lbc_edge`.

    Fault edges are stamped into ``workspace.edge_mask`` by dense edge id
    (the BFS reports the ids of the path it walked, so no endpoint->id
    lookups happen in the loop).  With an ``indexer`` the certificate cut
    is reported as canonical node-pair tuples exactly like
    :func:`lbc_edge`; without one it holds ``(low_index, high_index)``
    pairs.
    """
    _validate_csr(csr, source, target, t, alpha)
    ws = workspace if workspace is not None else BFSWorkspace(
        csr.num_nodes, csr.num_edges
    )
    ws.ensure(csr.num_nodes, csr.num_edges)
    emask = ws.edge_mask
    emask.clear()
    faults = emask.members  # edge ids, in the order they were faulted
    removed: List[List[int]] = []
    edge_u, edge_v = csr.edge_u, csr.edge_v

    def cut_edges() -> FrozenSet[Edge]:
        if indexer is None:
            return frozenset(
                (edge_u[e], edge_v[e]) for e in faults
            )
        node = indexer.node
        return frozenset(
            edge_key(node(edge_u[e]), node(edge_v[e])) for e in faults
        )

    for iteration in range(1, alpha + 2):
        reached = _csr_search(
            csr, source, target, t, ws,
            None, emask if faults else None, True,
        )
        found = _csr_path_edges(ws, target) if reached else None
        if found is None:
            return LBCResult(
                answer=LBCAnswer.YES,
                cut=cut_edges(),
                paths=_translate_paths(removed, indexer),
                iterations=iteration,
            )
        path, eids = found
        removed.append(path)
        for e in eids:
            emask.add(e)
    return LBCResult(
        answer=LBCAnswer.NO,
        cut=cut_edges(),
        paths=_translate_paths(removed, indexer),
        iterations=alpha + 1,
    )
