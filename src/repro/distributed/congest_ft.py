"""Theorem 15: fault-tolerant spanners in the CONGEST model.

The construction composes the [DK11] sampling reduction with the
Theorem 14 CONGEST Baswana-Sen protocol:

* **Phase 1 (iteration exchange).**  Each vertex independently selects
  each of the ``N = O(f^3 log n)`` Dinitz-Krauthgamer iterations with
  probability ``1/f`` and sends its selection list to every neighbor.
  Whp each list has ``O(f^2 log n)`` entries; since an iteration index
  needs only ``O(log f + log log n)`` bits, ``Theta(log n / (log f +
  log log n))`` indices pack into each O(log n)-bit message, giving
  ``O(f^2 (log f + log log n))`` rounds.
* **Phase 2 (pipelined Baswana-Sen).**  All N iterations run Baswana-Sen
  simultaneously; whp at most ``O(f log n)`` iterations contain both
  endpoints of any edge, so scheduling each Baswana-Sen time step in
  ``O(f log n)`` simulator rounds absorbs the congestion, for
  ``O(k^2 f log n)`` rounds total.

Simulation note (documented in DESIGN.md): the engine executes the N
Baswana-Sen instances *serially* -- each on the subgraph induced by that
iteration's participants -- and computes the pipelined schedule length
exactly as the paper's scheduler would realize it:

    ``phase2_rounds = (max rounds of any instance) * (max per-edge
    congestion, i.e. the largest number of iterations sharing an edge)``

Both factors are *measured*, not assumed, so the reported round count is
the honest schedule length of the parallel execution; Theorem 15
predicts it is ``O(k^2 f log n)`` whp.  Message sizes inside each
instance are still enforced by the CONGEST engine.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.spanner import FaultModel, SpannerResult
from repro.distributed.congest_bs import congest_baswana_sen
from repro.graph.graph import Graph, Node
from repro.registry import register_algorithm

RngLike = Union[int, random.Random, None]


def _instance_executor(g: Graph, k: int, congest_word_limit: int):
    """Executor factory for instance workers (substrate pool).

    Each worker holds the input graph and answers ``("bs", [(
    participants, seed), ...])`` jobs: run a contiguous slice of
    Baswana-Sen instances on their induced subgraphs and return each
    instance's measured costs plus its spanner edges *in the instance's
    own edge order*, so the parent's merge reproduces the serial loop's
    insertion order exactly.  One job per worker (not per instance)
    keeps the pipe round-trips independent of the instance count.
    """

    def executor(kind: str, payload):
        if kind != "bs":
            raise ValueError(f"unknown instance request kind {kind!r}")
        out = []
        for participants, inst_seed in payload:
            sub = g.subgraph(list(participants))
            result = congest_baswana_sen(
                sub, k, seed=inst_seed,
                congest_word_limit=congest_word_limit,
            )
            out.append(
                (
                    result.rounds or 0,
                    int(result.extra["max_message_words"]),
                    list(result.spanner.edges()),
                )
            )
        return out

    return executor


def _run_instances(
    g: Graph,
    k: int,
    congest_word_limit: int,
    instances: List[Tuple[Tuple[Node, ...], int]],
    workers: Optional[int],
) -> List[Tuple[int, int, List[Tuple[Node, Node]]]]:
    """Run the qualifying Baswana-Sen instances, serially or pooled.

    Instances are pure functions of ``(participants, seed)`` --
    idempotent, so the substrate's retry-on-worker-death semantics are
    sound -- and results come back in instance order either way, so the
    spanner union is bit-identical for every ``workers`` value.  The
    pooled path shards the instance list into one contiguous slice per
    worker (instances all have ~n/f participants, so contiguous slices
    are balanced) and reassembles the slices in order.
    """
    if workers is None:
        return _instance_executor(g, k, congest_word_limit)(
            "bs", instances
        )

    from repro.parallel.dispatch import Dispatcher, Job
    from repro.parallel.pool import WorkerPool

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not instances:
        return []
    shards = min(workers, len(instances))
    chunk = math.ceil(len(instances) / shards)
    slices = [
        instances[i:i + chunk] for i in range(0, len(instances), chunk)
    ]
    pool = WorkerPool(
        _instance_executor, (g, k, congest_word_limit), shards
    )
    try:
        pool.start()
        dispatcher = Dispatcher(pool, deadline=600.0, max_retries=2)
        jobs = [Job("bs", s, i) for i, s in enumerate(slices)]
        dispatcher.dispatch(jobs)
        out: List[Tuple[int, int, List[Tuple[Node, Node]]]] = []
        for job in jobs:
            out.extend(job.result)
        return out
    finally:
        pool.close()


@register_algorithm(
    "congest",
    summary="Theorem 15: pipelined DK11 x Baswana-Sen in CONGEST",
    guarantee="stretch 2k-1 w.h.p., O(f^3 k^2 log n) CONGEST rounds",
    fault_models=("vertex",),
    min_f=1,
    seedable=True,
    distributed=True,
)
def congest_ft_spanner(
    g: Graph,
    k: int,
    f: int,
    seed: RngLike = None,
    iterations: Optional[int] = None,
    iteration_constant: float = 1.0,
    congest_word_limit: int = 8,
    workers: Optional[int] = None,
) -> SpannerResult:
    """Run the Theorem 15 CONGEST fault-tolerant spanner construction.

    Parameters mirror :func:`repro.baselines.dinitz_krauthgamer.
    dk_fault_tolerant_spanner`; ``iterations`` defaults to
    ``ceil(iteration_constant * f^3 * ln n)``.

    Returns a :class:`SpannerResult` whose ``rounds`` is the pipelined
    schedule length (phase 1 + phase 2, see module docs) and whose
    ``extra`` carries every measured component: per-instance round
    maxima, realized edge congestion, selection-list maxima, and the
    packing factor.

    ``workers`` distributes the independent Baswana-Sen instances over
    that many substrate worker processes (the instances are the
    embarrassingly parallel axis of the construction).  Per-instance
    seeds are drawn up front in the serial loop's exact order, so the
    result is bit-identical to ``workers=None``.
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    if f < 1:
        raise ValueError(f"need f >= 1, got {f}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = g.num_nodes
    if n == 0:
        return SpannerResult(
            spanner=g.spanning_skeleton(),
            k=k,
            f=f,
            fault_model=FaultModel.VERTEX,
            algorithm="congest-ft",
            rounds=0,
        )
    if iterations is None:
        iterations = max(
            1, math.ceil(iteration_constant * f ** 3 * math.log(max(n, 2)))
        )
    p = 1.0 / f if f > 1 else 0.5

    # --- Phase 1: per-node iteration selection + exchange cost. --------
    nodes = sorted(g.nodes(), key=repr)
    selections: Dict[Node, Set[int]] = {
        v: {i for i in range(iterations) if rng.random() < p} for v in nodes
    }
    max_list = max((len(s) for s in selections.values()), default=0)
    # Bit packing: an index into [iterations] costs ceil(log2 N) bits; a
    # CONGEST word is Theta(log2 n) bits; a message is
    # `congest_word_limit` words.
    index_bits = max(1, math.ceil(math.log2(max(iterations, 2))))
    word_bits = max(1, math.ceil(math.log2(max(n, 2))))
    per_message = max(1, (congest_word_limit * word_bits) // index_bits)
    phase1_rounds = math.ceil(max_list / per_message) if max_list else 0

    # --- Phase 2: run every iteration's Baswana-Sen instance. ----------
    # Qualifying instances and their seeds are materialized first, with
    # the seed drawn in the serial loop's exact order (only qualifying
    # instances consume one), so the pooled path replays the identical
    # randomness.
    instances: List[Tuple[Tuple[Node, ...], int]] = []
    for i in range(iterations):
        participants = [v for v in nodes if i in selections[v]]
        if len(participants) < 2:
            continue
        sub = g.subgraph(participants)
        if sub.num_edges == 0:
            continue
        instances.append((tuple(participants), rng.getrandbits(32)))

    h = g.spanning_skeleton()
    max_instance_rounds = 0
    max_message_words = 0
    instance_count = len(instances)
    for rounds, words, edges in _run_instances(
        g, k, congest_word_limit, instances, workers
    ):
        max_instance_rounds = max(max_instance_rounds, rounds)
        max_message_words = max(max_message_words, words)
        for u, v in edges:
            if not h.has_edge(u, v):
                h.add_edge(u, v, weight=g.weight(u, v))

    # Realized per-edge congestion: iterations sharing both endpoints.
    congestion = 0
    for u, v in g.edges():
        shared = len(selections[u] & selections[v])
        congestion = max(congestion, shared)
    phase2_rounds = max_instance_rounds * max(congestion, 1)

    total_rounds = phase1_rounds + phase2_rounds
    return SpannerResult(
        spanner=h,
        k=k,
        f=f,
        fault_model=FaultModel.VERTEX,
        algorithm="congest-ft",
        rounds=total_rounds,
        extra={
            "iterations": float(iterations),
            "instances_run": float(instance_count),
            "phase1_rounds": float(phase1_rounds),
            "phase2_rounds": float(phase2_rounds),
            "max_instance_rounds": float(max_instance_rounds),
            "edge_congestion": float(congestion),
            "max_selection_list": float(max_list),
            "indices_per_message": float(per_message),
            "max_message_words": float(max_message_words),
        },
    )
