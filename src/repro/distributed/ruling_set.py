"""Deterministic ruling sets and network decomposition (CONGEST).

The padded decomposition of Theorem 11 is randomized (exponential
shifts).  Derandomizing such clustering is exactly the problem solved
by the deterministic network-decomposition line of work -- Rozhon and
Ghaffari's poly(log n)-round construction (arXiv:1907.10937) and its
CONGEST ruling-set refinements by Pai and Pemmaraju (arXiv:2205.12686).
This module implements the classic building block those papers
bootstrap from, as an honest CONGEST protocol on the simulator:

**(2, beta)-ruling set by ID-bit merging** (the [AGLP89]-style
construction, beta = ceil(log2 n)): every node starts as a ruler; in
step t = 1..beta, two ruler sets that agree on ID bits >= t merge, and
a ruler whose bit t-1 is 1 drops out iff it is adjacent to a surviving
ruler of the same merged class whose bit t-1 is 0.  Inductively each
merged class's rulers stay pairwise non-adjacent, so after beta steps
the survivors form an independent set; a node that dropped at step t
is one hop from a ruler that survived step t, so chasing drops gives
every node a ruler within beta hops.  Each step is one CONGEST round
(rulers announce ``(tag, id)``: two words).

**Voronoi claim flood**: surviving rulers then flood claims
``(distance, ruler_id)`` for beta rounds; every node adopts the
lexicographically smallest claim it hears and remembers the neighbor
it came from.  Consistent tie-breaking makes every cell a connected
cluster of hop radius <= beta with a BFS-style tree toward its ruler
-- the same interface the randomized decomposition exposes.

**Deterministic decomposition** iterates that clustering on the
subgraph of still-uncovered edges: every node with an uncovered
incident edge covers its tree-parent edge, so each partition strictly
shrinks the uncovered set and the loop terminates.  Leftover uncovered
edges (when the partition budget runs out first) are reported to the
caller, which adds them to the spanner directly -- a stretch-1 edge
never weakens the (2k-1) guarantee, so the fault-tolerance claim
survives derandomization unconditionally.

Node IDs are ranks in the engine's sorted node order -- the standard
unique-O(log n)-bit-ID assumption, handed to each protocol instance at
construction time like the decomposition rows in
:mod:`repro.distributed.local_spanner`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.distributed.decomposition import Decomposition
from repro.distributed.runtime import (
    Message,
    NodeContext,
    NodeProtocol,
    RunStats,
    SyncNetwork,
)
from repro.graph.graph import Graph, Node

__all__ = [
    "RulingSet",
    "deterministic_decomposition",
    "deterministic_ruling_set",
    "verify_ruling_set",
]


@dataclass
class RulingSet:
    """A (2, ``radius_bound``)-ruling set with its Voronoi clustering.

    ``rulers`` are pairwise non-adjacent; every node's ``assignment``
    points to a ruler within ``radius_bound`` hops, reachable by
    following ``parent`` pointers (``None`` at the ruler itself,
    ``depth`` hops in total).
    """

    rulers: Tuple[Node, ...]
    assignment: Dict[Node, Node]
    parent: Dict[Node, Optional[Node]]
    depth: Dict[Node, int]
    radius_bound: int
    rounds: int


class _RulingSetProtocol(NodeProtocol):
    """Node-local merge steps + claim flood, driven by the round number.

    Rounds 1..beta run the ID-bit merge (messages ``('r', id)``); at
    round beta the survivors open the claim flood (``('c', dist, id)``)
    which runs through round ``2 * beta``; everyone halts after that.
    All messages are at most three words -- CONGEST-compatible, and the
    engine enforces it.
    """

    def __init__(self, my_id: int, beta: int) -> None:
        self.my_id = my_id
        self.beta = beta
        self.ruler = True
        # Best claim seen: (distance, ruler_id, via-neighbor).
        self.best: Optional[Tuple[int, int, Optional[Node]]] = None

    def init(self, ctx: NodeContext) -> None:
        ctx.broadcast(("r", self.my_id))

    def receive(self, ctx: NodeContext, messages: List[Message]) -> None:
        t = ctx.round
        if t <= self.beta:
            self._merge_step(ctx, t, messages)
        else:
            self._flood_step(ctx, messages)
        if t >= 2 * self.beta + 1:
            ctx.halt()

    def _merge_step(
        self, ctx: NodeContext, t: int, messages: List[Message]
    ) -> None:
        # Announcements reflect ruler status after step t-1 (init is
        # step 0): exactly what merge step t needs.
        if self.ruler and (self.my_id >> (t - 1)) & 1:
            for msg in messages:
                if msg.payload[0] != "r":
                    continue
                other = msg.payload[1]
                if other >> t == self.my_id >> t and not (
                    (other >> (t - 1)) & 1
                ):
                    self.ruler = False
                    break
        if t < self.beta:
            if self.ruler:
                ctx.broadcast(("r", self.my_id))
        else:
            # Merge finished: survivors seed the Voronoi claim flood.
            if self.ruler:
                self.best = (0, self.my_id, None)
                ctx.broadcast(("c", 1, self.my_id))

    def _flood_step(self, ctx: NodeContext, messages: List[Message]) -> None:
        improved = False
        for msg in messages:
            if msg.payload[0] != "c":
                continue
            _, dist, rid = msg.payload
            if self.best is None or (dist, rid) < self.best[:2]:
                self.best = (dist, rid, msg.sender)
                improved = True
        if improved and self.best[0] + 1 <= self.beta:
            ctx.broadcast(("c", self.best[0] + 1, self.best[1]))

    def output(self):
        dist, rid, via = self.best if self.best is not None else (-1, -1, None)
        return (self.ruler, rid, dist, via)


class _RulingSetFactory:
    """Module-level factory (spawn-safe): hands each node its rank ID."""

    def __init__(self, ids: Dict[Node, int], beta: int) -> None:
        self.ids = ids
        self.beta = beta

    def __call__(self, node: Node) -> _RulingSetProtocol:
        return _RulingSetProtocol(self.ids[node], self.beta)


def deterministic_ruling_set(
    g: Graph,
    congest_word_limit: int = 8,
    workers: Optional[int] = None,
) -> Tuple[RulingSet, RunStats]:
    """Compute a (2, ceil(log2 n))-ruling set of ``g`` on the simulator.

    Fully deterministic: no node draws randomness, so the output is a
    pure function of the graph.  Runs in ``2 * ceil(log2 n) + 1``
    CONGEST rounds with <= 3-word messages (engine-enforced).
    ``workers`` runs the rounds on the parallel substrate
    (bit-identical, like every engine protocol).
    """
    n = g.num_nodes
    if n == 0:
        return RulingSet((), {}, {}, {}, radius_bound=0, rounds=0), RunStats()
    nodes = sorted(g.nodes(), key=repr)
    ids = {v: i for i, v in enumerate(nodes)}
    beta = max(1, math.ceil(math.log2(max(n, 2))))
    network = SyncNetwork(
        g, model="CONGEST", congest_word_limit=congest_word_limit, seed=0
    )
    outputs = network.run(
        _RulingSetFactory(ids, beta),
        max_rounds=2 * beta + 4,
        workers=workers,
    )
    by_id = {ids[v]: v for v in nodes}
    rulers = tuple(v for v in nodes if outputs[v][0])
    assignment: Dict[Node, Node] = {}
    parent: Dict[Node, Optional[Node]] = {}
    depth: Dict[Node, int] = {}
    for v in nodes:
        _is_ruler, rid, dist, via = outputs[v]
        if rid < 0:
            # Unreachable within beta hops cannot happen (the drop
            # chain has length <= beta), but keep the accounting total.
            raise RuntimeError(
                f"node {v!r} received no ruling-set claim within "
                f"{beta} hops"
            )
        assignment[v] = by_id[rid]
        parent[v] = via
        depth[v] = dist
    return (
        RulingSet(
            rulers=rulers,
            assignment=assignment,
            parent=parent,
            depth=depth,
            radius_bound=beta,
            rounds=network.stats.rounds,
        ),
        network.stats,
    )


def verify_ruling_set(g: Graph, rs: RulingSet) -> List[str]:
    """Check the (2, beta)-ruling-set properties; return violations."""
    problems: List[str] = []
    rulers = set(rs.rulers)
    for u, v in g.edges():
        if u in rulers and v in rulers:
            problems.append(f"rulers {u!r} and {v!r} are adjacent")
    for v in g.nodes():
        center = rs.assignment.get(v)
        if center is None:
            problems.append(f"node {v!r} has no assignment")
            continue
        if center not in rulers:
            problems.append(f"node {v!r} assigned to non-ruler {center!r}")
            continue
        # Walk the tree: must reach the ruler in depth[v] <= beta hops.
        cur, hops = v, 0
        while rs.parent[cur] is not None and hops <= rs.radius_bound:
            cur = rs.parent[cur]
            hops += 1
        if cur != center:
            problems.append(
                f"node {v!r}: parent chain ends at {cur!r}, not its "
                f"ruler {center!r}"
            )
        elif hops != rs.depth[v]:
            problems.append(
                f"node {v!r}: depth {rs.depth[v]} but chain length {hops}"
            )
        elif hops > rs.radius_bound:
            problems.append(
                f"node {v!r} is {hops} > {rs.radius_bound} hops from "
                f"its ruler"
            )
    return problems


def deterministic_decomposition(
    g: Graph,
    num_partitions: Optional[int] = None,
    congest_word_limit: int = 8,
    workers: Optional[int] = None,
) -> Tuple[Decomposition, List[Tuple[Node, Node]], RunStats]:
    """Deterministic replacement for :func:`padded_decomposition`.

    Iterates the ruling-set Voronoi clustering: partition 0 clusters the
    whole graph; partition i + 1 clusters the subgraph of edges no
    earlier partition covered.  Every node incident to an uncovered
    edge covers its tree-parent edge, so the uncovered set strictly
    shrinks each partition and the loop terminates on its own; the
    partition budget (default ``2 * ceil(2 log2 n) + 2``, twice the
    randomized default) is a cost cap, not a correctness requirement.

    Returns ``(decomposition, uncovered, stats)``: a
    :class:`~repro.distributed.decomposition.Decomposition` with the
    exact interface of the randomized one, the edges still uncovered
    when the budget ran out (the caller adds them to its spanner
    directly -- stretch 1 preserves every guarantee), and the merged
    engine statistics (rounds are summed: the partitions run
    sequentially, each on the clustered remainder of the last).
    """
    n = g.num_nodes
    stats = RunStats()
    if n == 0:
        return Decomposition(0, [], [], [], radius_bound=0, rounds=0), [], stats
    if num_partitions is None:
        num_partitions = 2 * max(1, math.ceil(2 * math.log2(max(n, 2)))) + 2
    assignment: List[Dict[Node, Node]] = []
    parent: List[Dict[Node, Optional[Node]]] = []
    depth: List[Dict[Node, int]] = []
    radius_bound = 0
    uncovered = sorted(g.edges(), key=repr)
    current = g
    while uncovered and len(assignment) < num_partitions:
        rs, run_stats = deterministic_ruling_set(
            current, congest_word_limit=congest_word_limit, workers=workers
        )
        stats.rounds += run_stats.rounds
        stats.messages += run_stats.messages
        stats.total_words += run_stats.total_words
        stats.max_message_words = max(
            stats.max_message_words, run_stats.max_message_words
        )
        assignment.append(rs.assignment)
        parent.append(rs.parent)
        depth.append(rs.depth)
        radius_bound = max(radius_bound, rs.radius_bound)
        still = [
            (u, v)
            for u, v in uncovered
            if rs.assignment[u] != rs.assignment[v]
        ]
        if len(still) == len(uncovered):  # cannot happen; belt and braces
            break
        uncovered = still
        nxt = g.spanning_skeleton()
        for u, v in uncovered:
            nxt.add_edge(u, v, weight=g.weight(u, v))
        current = nxt
    decomposition = Decomposition(
        num_partitions=len(assignment),
        assignment=assignment,
        parent=parent,
        depth=depth,
        radius_bound=radius_bound,
        rounds=stats.rounds,
    )
    return decomposition, uncovered, stats
