"""Synchronous message-passing simulator for LOCAL and CONGEST.

The paper's distributed results are statements about *rounds* and
*message sizes* in the standard synchronous models [Pel00]:

* LOCAL: per round, each node may send one arbitrarily large message on
  each incident edge; unlimited local computation.
* CONGEST: identical, but each message is at most O(log n) bits -- i.e.
  O(1) "words", where a word holds a node ID or an edge weight.

This engine runs protocols honestly under either model:

* A protocol is a :class:`NodeProtocol` subclass.  Each node instance
  sees only its node ID, its local neighborhood (incident edges +
  weights), the global parameters the model grants (n, and the protocol's
  public parameters), and the messages it receives.
* Rounds are fully synchronous: messages sent in round r arrive at the
  start of round r + 1.
* Message sizes are measured in words via :func:`message_words`; in
  CONGEST mode a message exceeding ``congest_word_limit`` raises
  :class:`CongestViolation` -- the simulator *enforces* the model rather
  than trusting the implementation.
* The engine reports :class:`RunStats`: rounds used, message count,
  total words, and the maximum single-message size.

Determinism: protocols receive a ``random.Random`` seeded per node from
the engine seed, so runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph, Node


class CongestViolation(RuntimeError):
    """A protocol sent a message larger than the CONGEST budget."""


@dataclass(frozen=True)
class Message:
    """A message in flight: ``sender -> receiver`` with a payload.

    Payloads must be built from ints, floats, strings, booleans, None,
    tuples and frozensets thereof -- things whose "word count" is
    well-defined by :func:`message_words`.
    """

    sender: Node
    receiver: Node
    payload: Any


def message_words(payload: Any) -> int:
    """Size of a payload in words (1 word = 1 ID / weight / small int).

    The accounting convention: atoms cost one word each; containers cost
    the sum of their elements.  A CONGEST message must fit in O(1) words;
    the engine's default limit is 8 (enough for a tag, an iteration
    number, a couple of IDs and a weight -- what Theorem 15's messages
    need).
    """
    if payload is None or isinstance(payload, (int, float, bool)):
        return 1
    if isinstance(payload, str):
        # A short tag is one word; long strings are charged per 8 chars.
        return max(1, (len(payload) + 7) // 8)
    if isinstance(payload, (tuple, list, frozenset, set)):
        return sum(message_words(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            message_words(k) + message_words(v) for k, v in payload.items()
        )
    # Opaque objects (used by LOCAL protocols, where size is unlimited):
    # charged generously so CONGEST mode rejects them.
    return 1 << 20


class NodeProtocol:
    """Base class for node-local protocol logic.

    Lifecycle per node::

        init(ctx)                 # round 0, before any communication
        receive(ctx, messages)    # once per round, with that round's inbox

    Both hooks communicate by calling ``ctx.send(neighbor, payload)`` and
    finish by ``ctx.halt()`` when the node is done.  The run ends when
    every node has halted or ``max_rounds`` is hit.

    Implementations must only use ``ctx`` and their own attributes --
    the engine gives them no access to other nodes or the global graph.
    """

    def init(self, ctx: "NodeContext") -> None:
        """Called once before round 1.  Override to send initial messages."""

    def receive(self, ctx: "NodeContext", messages: List[Message]) -> None:
        """Called every round with the messages delivered this round."""
        raise NotImplementedError

    def output(self) -> Any:
        """The node's local output after the run (protocol-specific)."""
        return None


class NodeContext:
    """What a node is allowed to see and do.

    Attributes
    ----------
    node:
        This node's ID.
    n:
        Number of nodes in the network (standard assumption: n, or a
        polynomial upper bound on it, is global knowledge).
    neighbors:
        Tuple of neighbor IDs.
    edge_weights:
        Mapping neighbor -> weight of the connecting edge.
    rng:
        Private randomness (seeded deterministically per node).
    round:
        Current round number (0 during init).
    """

    __slots__ = (
        "node",
        "n",
        "neighbors",
        "edge_weights",
        "rng",
        "round",
        "_outbox",
        "_halted",
        "_network",
    )

    def __init__(
        self,
        node: Node,
        n: int,
        neighbors: Tuple[Node, ...],
        edge_weights: Dict[Node, float],
        rng: random.Random,
        network: "SyncNetwork",
    ) -> None:
        self.node = node
        self.n = n
        self.neighbors = neighbors
        self.edge_weights = edge_weights
        self.rng = rng
        self.round = 0
        self._outbox: List[Message] = []
        self._halted = False
        self._network = network

    def send(self, neighbor: Node, payload: Any) -> None:
        """Queue a message to ``neighbor`` for delivery next round."""
        if neighbor not in self.edge_weights:
            raise ValueError(
                f"node {self.node!r} has no edge to {neighbor!r}"
            )
        self._network._check_size(payload)
        self._outbox.append(Message(self.node, neighbor, payload))

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every neighbor."""
        for v in self.neighbors:
            self.send(v, payload)

    def halt(self) -> None:
        """Declare this node finished (it still receives messages)."""
        self._halted = True

    @property
    def halted(self) -> bool:
        return self._halted


@dataclass
class RunStats:
    """Cost metrics of a protocol run."""

    rounds: int = 0
    messages: int = 0
    total_words: int = 0
    max_message_words: int = 0

    def record(self, payload: Any) -> None:
        words = message_words(payload)
        self.messages += 1
        self.total_words += words
        self.max_message_words = max(self.max_message_words, words)


class SyncNetwork:
    """The synchronous engine.

    Parameters
    ----------
    graph:
        The communication topology (also the algorithms' input graph).
    model:
        ``'LOCAL'`` (unbounded messages) or ``'CONGEST'`` (enforced word
        budget per message).
    congest_word_limit:
        Per-message budget in words for CONGEST mode.
    seed:
        Engine seed; node RNGs derive from it deterministically.
    """

    def __init__(
        self,
        graph: Graph,
        model: str = "LOCAL",
        congest_word_limit: int = 8,
        seed: Optional[int] = None,
    ) -> None:
        if model not in ("LOCAL", "CONGEST"):
            raise ValueError(f"unknown model {model!r}")
        self.graph = graph
        self.model = model
        self.congest_word_limit = congest_word_limit
        self.seed = seed
        self.stats = RunStats()
        self._contexts: Dict[Node, NodeContext] = {}
        self._protocols: Dict[Node, NodeProtocol] = {}

    def _check_size(self, payload: Any) -> None:
        if self.model == "CONGEST":
            words = message_words(payload)
            if words > self.congest_word_limit:
                raise CongestViolation(
                    f"message of {words} words exceeds the CONGEST budget "
                    f"of {self.congest_word_limit}"
                )

    def run(
        self,
        protocol_factory,
        max_rounds: int = 10_000,
    ) -> Dict[Node, Any]:
        """Execute the protocol until all nodes halt (or ``max_rounds``).

        ``protocol_factory`` is called once per node (with no arguments)
        to create that node's :class:`NodeProtocol` instance.  Returns
        each node's ``output()``; cost metrics land in ``self.stats``.
        """
        g = self.graph
        n = g.num_nodes
        base = random.Random(self.seed)
        nodes = sorted(g.nodes(), key=repr)
        # Per-node deterministic sub-seeds (independent of dict order).
        node_seeds = {v: base.getrandbits(64) for v in nodes}
        self._contexts = {}
        self._protocols = {}
        for v in nodes:
            ctx = NodeContext(
                node=v,
                n=n,
                neighbors=tuple(sorted(g.neighbors(v), key=repr)),
                edge_weights=dict(g.neighbor_items(v)),
                rng=random.Random(node_seeds[v]),
                network=self,
            )
            self._contexts[v] = ctx
            self._protocols[v] = protocol_factory()

        for v in nodes:
            self._protocols[v].init(self._contexts[v])

        self.stats = RunStats()
        for round_no in range(1, max_rounds + 1):
            inboxes: Dict[Node, List[Message]] = {v: [] for v in nodes}
            any_message = False
            for v in nodes:
                ctx = self._contexts[v]
                for msg in ctx._outbox:
                    self.stats.record(msg.payload)
                    inboxes[msg.receiver].append(msg)
                    any_message = True
                ctx._outbox = []
            if not any_message and all(
                self._contexts[v]._halted for v in nodes
            ):
                break
            self.stats.rounds = round_no
            for v in nodes:
                ctx = self._contexts[v]
                ctx.round = round_no
                # Halted nodes still receive (a neighbor may not know they
                # halted), but their receive hook is not invoked.
                if not ctx._halted:
                    self._protocols[v].receive(ctx, inboxes[v])
            if all(self._contexts[v]._halted for v in nodes) and not any(
                self._contexts[v]._outbox for v in nodes
            ):
                break
        else:
            raise RuntimeError(
                f"protocol did not terminate within {max_rounds} rounds"
            )
        return {v: self._protocols[v].output() for v in nodes}

    def collect_spanner(self, outputs: Dict[Node, Any]) -> Graph:
        """Union per-node edge outputs into a spanning subgraph.

        Convention: each node outputs an iterable of (u, v) edges it knows
        belong to the spanner (both endpoints may report the same edge).
        """
        h = self.graph.spanning_skeleton()
        for edges in outputs.values():
            if not edges:
                continue
            for u, v in edges:
                if not h.has_edge(u, v):
                    h.add_edge(u, v, weight=self.graph.weight(u, v))
        return h
