"""Synchronous message-passing simulator for LOCAL and CONGEST.

The paper's distributed results are statements about *rounds* and
*message sizes* in the standard synchronous models [Pel00]:

* LOCAL: per round, each node may send one arbitrarily large message on
  each incident edge; unlimited local computation.
* CONGEST: identical, but each message is at most O(log n) bits -- i.e.
  O(1) "words", where a word holds a node ID or an edge weight.

This engine runs protocols honestly under either model:

* A protocol is a :class:`NodeProtocol` subclass.  Each node instance
  sees only its node ID, its local neighborhood (incident edges +
  weights), the global parameters the model grants (n, and the protocol's
  public parameters), and the messages it receives.
* Rounds are fully synchronous: messages sent in round r arrive at the
  start of round r + 1.
* Message sizes are measured in words via :func:`message_words`; in
  CONGEST mode a message exceeding ``congest_word_limit`` raises
  :class:`CongestViolation` -- the simulator *enforces* the model rather
  than trusting the implementation.
* The engine reports :class:`RunStats`: rounds used, message count,
  total words, and the maximum single-message size.

Determinism: each node's ``random.Random`` is seeded from a **stable
hash of (engine seed, node ID)** (:func:`node_seed`), not from the
engine's iteration order.  Two consequences: a node's random stream is
unaffected by unrelated nodes joining the graph, and any process can
derive any node's seed independently -- which is what makes the
parallel execution path below bit-identical to the sequential one.

Parallel execution (PR 10)
--------------------------
``SyncNetwork.run(..., workers=W)`` executes every round across ``W``
worker processes on the shared substrate (:mod:`repro.parallel`).  The
sorted node order is split into ``W`` contiguous partitions; each
worker owns its partition's contexts and protocol instances for the
whole run.  At the round barrier, messages between partitions travel as
pre-pickled per-destination bundles routed (opaquely) through the
parent, while intra-partition messages never leave their worker.
Inboxes are reassembled in the sequential engine's exact delivery
order -- senders ascending in global sorted order, each sender's
outbox in send order -- because partitions are contiguous slices of
that same order.  :class:`RunStats` merges canonically (sums and
maxes, which are partition-order independent), and the halting
conditions are evaluated globally by the parent, so outputs *and*
stats are bit-identical to ``workers=None`` for every worker count
(``tests/test_parallel_distributed.py`` pins the full protocol x
worker-count matrix).
"""

from __future__ import annotations

import hashlib
import inspect
import pickle
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph, Node


class CongestViolation(RuntimeError):
    """A protocol sent a message larger than the CONGEST budget."""


@dataclass(frozen=True)
class Message:
    """A message in flight: ``sender -> receiver`` with a payload.

    Payloads must be built from ints, floats, strings, booleans, None,
    tuples and frozensets thereof -- things whose "word count" is
    well-defined by :func:`message_words`.
    """

    sender: Node
    receiver: Node
    payload: Any


def message_words(payload: Any) -> int:
    """Size of a payload in words (1 word = 1 ID / weight / small int).

    The accounting convention: atoms cost one word each; containers cost
    the sum of their elements.  A CONGEST message must fit in O(1) words;
    the engine's default limit is 8 (enough for a tag, an iteration
    number, a couple of IDs and a weight -- what Theorem 15's messages
    need).
    """
    if payload is None or isinstance(payload, (int, float, bool)):
        return 1
    if isinstance(payload, str):
        # A short tag is one word; long strings are charged per 8 chars.
        return max(1, (len(payload) + 7) // 8)
    if isinstance(payload, (tuple, list, frozenset, set)):
        return sum(message_words(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            message_words(k) + message_words(v) for k, v in payload.items()
        )
    # Opaque objects (used by LOCAL protocols, where size is unlimited):
    # charged generously so CONGEST mode rejects them.
    return 1 << 20


def node_seed(engine_seed: int, node: Node) -> int:
    """Stable 64-bit RNG seed for one node under one engine seed.

    Derived by hashing ``(engine_seed, repr(node))`` with blake2b --
    *not* Python's salted ``hash()`` -- so the value is identical
    across processes, interpreter runs, and ``PYTHONHASHSEED`` values.
    Because the seed depends only on the pair, a node's random stream
    is independent of iteration order and of which other nodes exist,
    and any partition worker can derive it locally.
    """
    digest = hashlib.blake2b(
        f"{engine_seed}:{node!r}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class NodeProtocol:
    """Base class for node-local protocol logic.

    Lifecycle per node::

        init(ctx)                 # round 0, before any communication
        receive(ctx, messages)    # once per round, with that round's inbox

    Both hooks communicate by calling ``ctx.send(neighbor, payload)`` and
    finish by ``ctx.halt()`` when the node is done.  The run ends when
    every node has halted or ``max_rounds`` is hit.

    Implementations must only use ``ctx`` and their own attributes --
    the engine gives them no access to other nodes or the global graph.
    """

    def init(self, ctx: "NodeContext") -> None:
        """Called once before round 1.  Override to send initial messages."""

    def receive(self, ctx: "NodeContext", messages: List[Message]) -> None:
        """Called every round with the messages delivered this round."""
        raise NotImplementedError

    def output(self) -> Any:
        """The node's local output after the run (protocol-specific)."""
        return None


class NodeContext:
    """What a node is allowed to see and do.

    Attributes
    ----------
    node:
        This node's ID.
    n:
        Number of nodes in the network (standard assumption: n, or a
        polynomial upper bound on it, is global knowledge).
    neighbors:
        Tuple of neighbor IDs.
    edge_weights:
        Mapping neighbor -> weight of the connecting edge.
    rng:
        Private randomness (seeded deterministically per node from
        :func:`node_seed`).
    round:
        Current round number (0 during init).
    """

    __slots__ = (
        "node",
        "n",
        "neighbors",
        "edge_weights",
        "rng",
        "round",
        "_outbox",
        "_halted",
        "_network",
    )

    def __init__(
        self,
        node: Node,
        n: int,
        neighbors: Tuple[Node, ...],
        edge_weights: Dict[Node, float],
        rng: random.Random,
        network,
    ) -> None:
        self.node = node
        self.n = n
        self.neighbors = neighbors
        self.edge_weights = edge_weights
        self.rng = rng
        self.round = 0
        self._outbox: List[Message] = []
        self._halted = False
        # Anything with a _check_size method: the SyncNetwork in
        # sequential runs, a _SizeChecker inside partition workers.
        self._network = network

    def send(self, neighbor: Node, payload: Any) -> None:
        """Queue a message to ``neighbor`` for delivery next round."""
        if neighbor not in self.edge_weights:
            raise ValueError(
                f"node {self.node!r} has no edge to {neighbor!r}"
            )
        self._network._check_size(payload)
        self._outbox.append(Message(self.node, neighbor, payload))

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every neighbor."""
        for v in self.neighbors:
            self.send(v, payload)

    def halt(self) -> None:
        """Declare this node finished (it still receives messages)."""
        self._halted = True

    @property
    def halted(self) -> bool:
        return self._halted


@dataclass
class RunStats:
    """Cost metrics of a protocol run."""

    rounds: int = 0
    messages: int = 0
    total_words: int = 0
    max_message_words: int = 0

    def record(self, payload: Any) -> None:
        words = message_words(payload)
        self.messages += 1
        self.total_words += words
        self.max_message_words = max(self.max_message_words, words)


class _SizeChecker:
    """CONGEST budget enforcement detached from the engine object.

    Partition workers hold no :class:`SyncNetwork`; their contexts
    check message sizes through one of these instead (same logic, same
    exception).
    """

    __slots__ = ("model", "congest_word_limit")

    def __init__(self, model: str, congest_word_limit: int) -> None:
        self.model = model
        self.congest_word_limit = congest_word_limit

    def _check_size(self, payload: Any) -> None:
        if self.model == "CONGEST":
            words = message_words(payload)
            if words > self.congest_word_limit:
                raise CongestViolation(
                    f"message of {words} words exceeds the CONGEST budget "
                    f"of {self.congest_word_limit}"
                )


def _accepts_node(protocol_factory) -> bool:
    """Whether the factory takes the node ID as a positional argument.

    Zero-argument factories (``lambda: Proto(k)``) are called bare;
    factories with a positional parameter receive the node -- how
    per-node protocols (e.g. the LOCAL gather/compute phase) learn
    their identity without relying on engine call order.
    """
    try:
        sig = inspect.signature(protocol_factory)
    except (TypeError, ValueError):  # builtins / odd callables
        return False
    for p in sig.parameters.values():
        if p.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.VAR_POSITIONAL,
        ):
            return True
    return False


def _partition_bounds(n: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal slices of ``range(n)`` (sharding rule)."""
    base, extra = divmod(n, workers)
    bounds: List[Tuple[int, int]] = []
    pos = 0
    for i in range(workers):
        size = base + (1 if i < extra else 0)
        bounds.append((pos, pos + size))
        pos += size
    return bounds


class _PartitionExecutor:
    """The per-worker executor of the parallel round engine.

    Built once inside each worker process by the substrate pool
    (:mod:`repro.parallel.pool`); owns one contiguous partition of the
    sorted node order -- contexts, protocol instances, and the
    intra-partition messages that never cross a process boundary.

    Request kinds:

    * ``"init"`` -- run every owned node's ``init`` hook; returns the
      first round report.
    * ``"round"`` -- payload ``(round_no, bundles)`` where ``bundles``
      is one pre-pickled message bundle (or None) per *source* worker;
      delivers inboxes, runs ``receive`` on non-halted nodes, returns
      the round report.
    * ``"collect"`` -- each owned node's ``output()``.

    A round report is ``(bundles_out, sent_any, all_halted, stats)``:
    per-destination-worker pre-pickled bundles of the messages this
    partition just sent across partitions, whether it sent anything at
    all, whether all its nodes have halted, and its
    (messages, words, max_words) deltas for the canonical merge.
    """

    def __init__(
        self,
        graph: Graph,
        model: str,
        congest_word_limit: int,
        engine_seed: int,
        protocol_factory,
        num_workers: int,
        index: int,
    ) -> None:
        self.num_workers = num_workers
        self.index = index
        nodes = sorted(graph.nodes(), key=repr)
        bounds = _partition_bounds(len(nodes), num_workers)
        lo, hi = bounds[index]
        self.mine: List[Node] = nodes[lo:hi]
        self.owner: Dict[Node, int] = {}
        for w, (wlo, whi) in enumerate(bounds):
            for v in nodes[wlo:whi]:
                self.owner[v] = w
        checker = _SizeChecker(model, congest_word_limit)
        n = graph.num_nodes
        with_node = _accepts_node(protocol_factory)
        self.contexts: Dict[Node, NodeContext] = {}
        self.protocols: Dict[Node, NodeProtocol] = {}
        for v in self.mine:
            self.contexts[v] = NodeContext(
                node=v,
                n=n,
                neighbors=tuple(sorted(graph.neighbors(v), key=repr)),
                edge_weights=dict(graph.neighbor_items(v)),
                rng=random.Random(node_seed(engine_seed, v)),
                network=checker,
            )
            self.protocols[v] = (
                protocol_factory(v) if with_node else protocol_factory()
            )
        # Intra-partition messages awaiting next-round delivery.
        self.local_pending: List[Message] = []

    def __call__(self, kind: str, payload):
        if kind == "init":
            for v in self.mine:
                self.protocols[v].init(self.contexts[v])
            return self._drain_outboxes()
        if kind == "round":
            round_no, bundles = payload
            self._deliver(round_no, bundles)
            return self._drain_outboxes()
        if kind == "collect":
            return {v: self.protocols[v].output() for v in self.mine}
        raise ValueError(f"unknown round-engine request kind {kind!r}")

    def _deliver(self, round_no: int, bundles: List[Optional[bytes]]) -> None:
        inboxes: Dict[Node, List[Message]] = {v: [] for v in self.mine}
        # Source workers ascending == senders ascending in global sorted
        # order (partitions are contiguous slices of it), so this merge
        # reproduces the sequential engine's inbox order exactly.
        for w in range(self.num_workers):
            if w == self.index:
                for msg in self.local_pending:
                    inboxes[msg.receiver].append(msg)
                continue
            blob = bundles[w]
            if blob is None:
                continue
            for sender, receiver, payload in pickle.loads(blob):
                inboxes[receiver].append(Message(sender, receiver, payload))
        self.local_pending = []
        for v in self.mine:
            ctx = self.contexts[v]
            ctx.round = round_no
            # Halted nodes still receive (a neighbor may not know they
            # halted), but their receive hook is not invoked.
            if not ctx._halted:
                self.protocols[v].receive(ctx, inboxes[v])

    def _drain_outboxes(self):
        stats = RunStats()
        outgoing: Dict[int, List[Tuple[Node, Node, Any]]] = {}
        sent_any = False
        for v in self.mine:
            ctx = self.contexts[v]
            for msg in ctx._outbox:
                stats.record(msg.payload)
                sent_any = True
                dest = self.owner[msg.receiver]
                if dest == self.index:
                    self.local_pending.append(msg)
                else:
                    outgoing.setdefault(dest, []).append(
                        (msg.sender, msg.receiver, msg.payload)
                    )
            ctx._outbox = []
        # Pre-pickle per-destination bundles so the parent routes opaque
        # bytes instead of re-pickling every message twice per hop.
        bundles_out = {
            dest: pickle.dumps(triples, pickle.HIGHEST_PROTOCOL)
            for dest, triples in outgoing.items()
        }
        all_halted = all(self.contexts[v]._halted for v in self.mine)
        return (
            bundles_out,
            sent_any,
            all_halted,
            (stats.messages, stats.total_words, stats.max_message_words),
        )


class SyncNetwork:
    """The synchronous engine.

    Parameters
    ----------
    graph:
        The communication topology (also the algorithms' input graph).
    model:
        ``'LOCAL'`` (unbounded messages) or ``'CONGEST'`` (enforced word
        budget per message).
    congest_word_limit:
        Per-message budget in words for CONGEST mode.
    seed:
        Engine seed; node RNGs derive from it via :func:`node_seed`.
        ``None`` draws a fresh engine seed per run (nondeterministic),
        but the per-node derivation below it is always the stable hash.
    """

    def __init__(
        self,
        graph: Graph,
        model: str = "LOCAL",
        congest_word_limit: int = 8,
        seed: Optional[int] = None,
    ) -> None:
        if model not in ("LOCAL", "CONGEST"):
            raise ValueError(f"unknown model {model!r}")
        self.graph = graph
        self.model = model
        self.congest_word_limit = congest_word_limit
        self.seed = seed
        self.stats = RunStats()
        self._contexts: Dict[Node, NodeContext] = {}
        self._protocols: Dict[Node, NodeProtocol] = {}

    def _check_size(self, payload: Any) -> None:
        if self.model == "CONGEST":
            words = message_words(payload)
            if words > self.congest_word_limit:
                raise CongestViolation(
                    f"message of {words} words exceeds the CONGEST budget "
                    f"of {self.congest_word_limit}"
                )

    def run(
        self,
        protocol_factory,
        max_rounds: int = 10_000,
        workers: Optional[int] = None,
    ) -> Dict[Node, Any]:
        """Execute the protocol until all nodes halt (or ``max_rounds``).

        ``protocol_factory`` is called once per node to create that
        node's :class:`NodeProtocol` instance -- with the node ID as
        its argument when the factory takes one positional parameter,
        bare otherwise.  Returns each node's ``output()``; cost metrics
        land in ``self.stats``.

        ``workers=W`` runs the identical protocol across ``W`` worker
        processes over contiguous node partitions (see module docs);
        outputs and stats are bit-identical to ``workers=None``.
        """
        engine_seed = (
            self.seed if self.seed is not None else random.getrandbits(64)
        )
        if workers is not None:
            return self._run_parallel(
                protocol_factory, max_rounds, workers, engine_seed
            )
        g = self.graph
        n = g.num_nodes
        nodes = sorted(g.nodes(), key=repr)
        with_node = _accepts_node(protocol_factory)
        self._contexts = {}
        self._protocols = {}
        for v in nodes:
            ctx = NodeContext(
                node=v,
                n=n,
                neighbors=tuple(sorted(g.neighbors(v), key=repr)),
                edge_weights=dict(g.neighbor_items(v)),
                rng=random.Random(node_seed(engine_seed, v)),
                network=self,
            )
            self._contexts[v] = ctx
            self._protocols[v] = (
                protocol_factory(v) if with_node else protocol_factory()
            )

        for v in nodes:
            self._protocols[v].init(self._contexts[v])

        self.stats = RunStats()
        for round_no in range(1, max_rounds + 1):
            inboxes: Dict[Node, List[Message]] = {v: [] for v in nodes}
            any_message = False
            for v in nodes:
                ctx = self._contexts[v]
                for msg in ctx._outbox:
                    self.stats.record(msg.payload)
                    inboxes[msg.receiver].append(msg)
                    any_message = True
                ctx._outbox = []
            if not any_message and all(
                self._contexts[v]._halted for v in nodes
            ):
                break
            self.stats.rounds = round_no
            for v in nodes:
                ctx = self._contexts[v]
                ctx.round = round_no
                # Halted nodes still receive (a neighbor may not know they
                # halted), but their receive hook is not invoked.
                if not ctx._halted:
                    self._protocols[v].receive(ctx, inboxes[v])
            if all(self._contexts[v]._halted for v in nodes) and not any(
                self._contexts[v]._outbox for v in nodes
            ):
                break
        else:
            raise RuntimeError(
                f"protocol did not terminate within {max_rounds} rounds"
            )
        return {v: self._protocols[v].output() for v in nodes}

    # ------------------------------------------------------------- #
    # Parallel round execution on the shared substrate
    # ------------------------------------------------------------- #

    def _run_parallel(
        self,
        protocol_factory,
        max_rounds: int,
        workers: int,
        engine_seed: int,
    ) -> Dict[Node, Any]:
        from repro.parallel.errors import WorkerCrashed
        from repro.parallel.pool import WorkerPool

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._contexts = {}
        self._protocols = {}
        self.stats = RunStats()
        nodes = sorted(self.graph.nodes(), key=repr)
        pools: List[WorkerPool] = []
        msg_counter = 0

        def ask(kind: str, payloads: List[Any]) -> List[Any]:
            # Lockstep request/reply to every partition worker: all
            # sends go out first, so workers compute concurrently.
            nonlocal msg_counter
            sent = []
            for pool, payload in zip(pools, payloads):
                worker = pool.workers[0]
                msg_counter += 1
                try:
                    worker.conn.send((msg_counter, kind, payload, None))
                except (BrokenPipeError, OSError) as exc:
                    raise WorkerCrashed(
                        f"round worker {pools.index(pool)} died before "
                        f"{kind!r}"
                    ) from exc
                sent.append((worker, msg_counter))
            replies = []
            for i, (worker, msg_id) in enumerate(sent):
                try:
                    reply = worker.conn.recv()
                except (EOFError, OSError) as exc:
                    raise WorkerCrashed(
                        f"round worker {i} died during {kind!r} (round "
                        f"state is not recoverable; rerun)"
                    ) from exc
                rid, status, value = reply
                if status != "ok":
                    raise value
                assert rid == msg_id  # lockstep: no stale replies
                replies.append(value)
            return replies

        try:
            for i in range(workers):
                pool = WorkerPool(
                    _PartitionExecutor,
                    (
                        self.graph,
                        self.model,
                        self.congest_word_limit,
                        engine_seed,
                        protocol_factory,
                        workers,
                        i,
                    ),
                    1,
                )
                pools.append(pool)
                # Health-checked spawn (handshake + backoff) from the
                # substrate; a worker that dies building its partition
                # never receives a round.
                pool.workers.append(pool.spawn())

            reports = ask("init", [None] * workers)
            for bundles, _sent, _halted, (m, w, mx) in reports:
                self.stats.messages += m
                self.stats.total_words += w
                self.stats.max_message_words = max(
                    self.stats.max_message_words, mx
                )
            for round_no in range(1, max_rounds + 1):
                any_message = any(r[1] for r in reports)
                all_halted = all(r[2] for r in reports)
                if not any_message and all_halted:
                    break
                self.stats.rounds = round_no
                payloads = []
                for dest in range(workers):
                    payloads.append(
                        (
                            round_no,
                            [reports[src][0].get(dest) for src in range(workers)],
                        )
                    )
                reports = ask("round", payloads)
                for bundles, _sent, _halted, (m, w, mx) in reports:
                    self.stats.messages += m
                    self.stats.total_words += w
                    self.stats.max_message_words = max(
                        self.stats.max_message_words, mx
                    )
                if all(r[2] for r in reports) and not any(
                    r[1] for r in reports
                ):
                    break
            else:
                raise RuntimeError(
                    f"protocol did not terminate within {max_rounds} rounds"
                )
            merged: Dict[Node, Any] = {}
            for out in ask("collect", [None] * workers):
                merged.update(out)
        finally:
            for pool in pools:
                pool.close()
        # Reassemble in global sorted order so downstream consumers
        # (e.g. collect_spanner's union) iterate identically to the
        # sequential engine.
        return {v: merged[v] for v in nodes}

    def collect_spanner(self, outputs: Dict[Node, Any]) -> Graph:
        """Union per-node edge outputs into a spanning subgraph.

        Convention: each node outputs an iterable of (u, v) edges it knows
        belong to the spanner (both endpoints may report the same edge).
        """
        h = self.graph.spanning_skeleton()
        for edges in outputs.values():
            if not edges:
                continue
            for u, v in edges:
                if not h.has_edge(u, v):
                    h.add_edge(u, v, weight=self.graph.weight(u, v))
        return h
