"""Theorem 12: fault-tolerant spanners in the LOCAL model.

The paper's LOCAL algorithm, run end to end on the simulator:

1. Build the Theorem 11 padded decomposition (O(log n) rounds,
   :mod:`repro.distributed.decomposition`).
2. In every cluster (all partitions in parallel -- LOCAL messages are
   unbounded), *gather* the cluster's induced subgraph at the center by
   convergecast along the flood tree: each round, every node forwards all
   cluster edges it has learned to its tree parent.  After ``radius``
   rounds the center knows G[C].
3. The center locally computes an f-FT (2k-1)-spanner of G[C] with the
   greedy algorithm and *floods the chosen edge set back down* the tree
   (another ``radius`` rounds).
4. Every node outputs the chosen edges incident to it; the final spanner
   is the union over all clusters (Theorem 12: whp an f-VFT
   (2k-1)-spanner with O(f^(1-1/k) n^(1+1/k) log n) edges, O(log n)
   rounds).

Substitution note: the paper's cluster centers run the *exponential*
greedy (Algorithm 1).  That is infeasible beyond toy clusters, so by
default centers run the paper's own polynomial modified greedy
(Algorithm 3/4), which costs one extra factor k in the size bound --
exactly the trade the paper itself makes in the centralized setting.
``use_exact_greedy=True`` restores Algorithm 1 for small inputs.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.core.greedy_exact import exponential_greedy_spanner
from repro.core.greedy_modified import fault_tolerant_spanner
from repro.core.spanner import FaultModel, SpannerResult
from repro.distributed.decomposition import Decomposition, padded_decomposition
from repro.distributed.ruling_set import deterministic_decomposition
from repro.distributed.runtime import (
    Message,
    NodeContext,
    NodeProtocol,
    SyncNetwork,
)
from repro.graph.graph import Graph, Node, edge_key
from repro.registry import register_algorithm


class _GatherComputeProtocol(NodeProtocol):
    """Phases 2-4: convergecast G[C] to centers, compute, flood back.

    Construction-time closure hands each node its per-partition cluster
    assignment (center / parent / depth) -- information the node itself
    computed during the decomposition flood, so locality is respected.
    """

    def __init__(
        self,
        node: Node,
        decomposition: Decomposition,
        radius: int,
        k: int,
        f: int,
        fault_model: FaultModel,
        use_exact_greedy: bool,
    ) -> None:
        self.node = node
        self.decomposition = decomposition
        self.radius = radius
        self.k = k
        self.f = f
        self.fault_model = fault_model
        self.use_exact_greedy = use_exact_greedy
        # Per partition: known intra-cluster edges (u, v, w), grown by
        # convergecast; and chosen spanner edges flowing back down.
        self.known: List[Set[Tuple[Node, Node, float]]] = []
        self.sent_up: List[Set[Tuple[Node, Node, float]]] = []
        self.chosen: Set[Tuple[Node, Node]] = set()
        self.sent_down: List[Set[Tuple[Node, Node]]] = []

    # ------------------------------------------------------------- #

    def init(self, ctx: NodeContext) -> None:
        num = self.decomposition.num_partitions
        self.known = [set() for _ in range(num)]
        self.sent_up = [set() for _ in range(num)]
        self.sent_down = [set() for _ in range(num)]
        for i in range(num):
            center = self.decomposition.assignment[i][self.node]
            for v, w in ctx.edge_weights.items():
                if self.decomposition.assignment[i].get(v) == center:
                    u1, u2 = edge_key(self.node, v)
                    self.known[i].add((u1, u2, w))
        self._push_up(ctx)

    def receive(self, ctx: NodeContext, messages: List[Message]) -> None:
        for msg in messages:
            tag, i, payload = msg.payload
            if tag == "up":
                self.known[i] |= set(payload)
            elif tag == "down":
                self._absorb_down(i, set(payload))
        if ctx.round < self.radius + 1:
            self._push_up(ctx)
        elif ctx.round == self.radius + 1:
            # Gather is complete at centers: compute cluster spanners.
            self._compute_at_centers(ctx)
            self._push_down(ctx)
        elif ctx.round <= 2 * (self.radius + 1):
            self._push_down(ctx)
        else:
            ctx.halt()

    # ------------------------------------------------------------- #

    def _push_up(self, ctx: NodeContext) -> None:
        """Forward newly learned cluster edges to the tree parent."""
        for i in range(self.decomposition.num_partitions):
            parent = self.decomposition.parent[i][self.node]
            if parent is None:
                continue
            fresh = self.known[i] - self.sent_up[i]
            if fresh:
                ctx.send(parent, ("up", i, frozenset(fresh)))
                self.sent_up[i] |= fresh

    def _compute_at_centers(self, ctx: NodeContext) -> None:
        """If this node centers a cluster, build its FT spanner locally."""
        for i in range(self.decomposition.num_partitions):
            if self.decomposition.assignment[i][self.node] != self.node:
                continue
            cluster_graph = Graph()
            cluster_graph.add_node(self.node)
            for u, v, w in self.known[i]:
                cluster_graph.add_edge(u, v, weight=w)
            if cluster_graph.num_edges == 0:
                continue
            if self.use_exact_greedy:
                result = exponential_greedy_spanner(
                    cluster_graph, self.k, self.f, self.fault_model
                )
            else:
                result = fault_tolerant_spanner(
                    cluster_graph, self.k, self.f, self.fault_model
                )
            picked = frozenset(
                edge_key(u, v) for u, v in result.spanner.edges()
            )
            self._absorb_down(i, set(picked))

    def _absorb_down(self, i: int, edges: Set[Tuple[Node, Node]]) -> None:
        for u, v in edges:
            if self.node in (u, v):
                self.chosen.add(edge_key(u, v))
        self.sent_down[i] |= set()  # touched lazily in _push_down
        self._pending_down = getattr(self, "_pending_down", {})
        self._pending_down.setdefault(i, set()).update(edges)

    def _push_down(self, ctx: NodeContext) -> None:
        """Flood chosen edges away from the center along cluster edges."""
        pending = getattr(self, "_pending_down", {})
        for i in range(self.decomposition.num_partitions):
            fresh = pending.get(i, set()) - self.sent_down[i]
            if not fresh:
                continue
            center = self.decomposition.assignment[i][self.node]
            for v in ctx.neighbors:
                if self.decomposition.assignment[i].get(v) == center:
                    ctx.send(v, ("down", i, frozenset(fresh)))
            self.sent_down[i] |= fresh

    def output(self) -> FrozenSet[Tuple[Node, Node]]:
        return frozenset(self.chosen)


@register_algorithm(
    "local",
    summary="Theorem 12: LOCAL-model decomposition + per-cluster greedy",
    guarantee="stretch 2k-1, O(log n) LOCAL rounds, unbounded messages",
    fault_models=("vertex", "edge"),
    seedable=True,
    distributed=True,
)
def local_ft_spanner(
    g: Graph,
    k: int,
    f: int,
    fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
    beta: float = 0.25,
    num_partitions: Optional[int] = None,
    seed: Optional[int] = None,
    use_exact_greedy: bool = False,
    workers: Optional[int] = None,
    deterministic: bool = False,
) -> SpannerResult:
    """Run the Theorem 12 LOCAL fault-tolerant spanner end to end.

    Returns a :class:`SpannerResult` whose ``rounds`` field is the *total*
    simulator rounds (decomposition + gather + compute + flood-down) and
    whose ``extra`` carries the decomposition statistics.

    ``deterministic=True`` swaps the randomized padded decomposition for
    the ruling-set-based deterministic one
    (:func:`~repro.distributed.ruling_set.deterministic_decomposition`,
    after Rozhon-Ghaffari arXiv:1907.10937 / Pai-Pemmaraju
    arXiv:2205.12686): the whole construction then draws no randomness
    (``seed`` becomes irrelevant), and any edge the partition budget
    left uncovered is added to the spanner directly at stretch 1, so
    the f-FT (2k-1) guarantee holds *unconditionally* rather than whp.
    ``workers`` runs every simulator phase on the parallel substrate
    (bit-identical to sequential execution).
    """
    model = FaultModel.coerce(fault_model)
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    if f < 0:
        raise ValueError(f"need f >= 0, got {f}")
    uncovered: List[Tuple[Node, Node]] = []
    if deterministic:
        decomposition, uncovered, decomp_stats = deterministic_decomposition(
            g, num_partitions=num_partitions, workers=workers
        )
    else:
        decomposition, decomp_stats = padded_decomposition(
            g, beta=beta, num_partitions=num_partitions, seed=seed,
            workers=workers,
        )
    if g.num_nodes == 0:
        return SpannerResult(
            spanner=g.spanning_skeleton(),
            k=k,
            f=f,
            fault_model=model,
            algorithm="local-ft",
            rounds=0,
        )
    # Effective radius: the deepest tree depth actually realized (the
    # theoretical bound decomposition.radius_bound is very loose).
    realized = max(
        (
            max(depths.values(), default=0)
            for depths in decomposition.depth
        ),
        default=0,
    )
    radius = max(1, realized)
    network = SyncNetwork(g, model="LOCAL", seed=None if seed is None else seed + 1)
    outputs = network.run(
        lambda_factory(decomposition, radius, k, f, model, use_exact_greedy, g),
        max_rounds=2 * radius + 8,
        workers=workers,
    )
    spanner = network.collect_spanner(outputs)
    for u, v in uncovered:
        # Budget-exhausted leftovers ride along at stretch 1 (they are
        # their own fault-tolerant spanner path).
        if not spanner.has_edge(u, v):
            spanner.add_edge(u, v, weight=g.weight(u, v))
    total_rounds = decomposition.rounds + network.stats.rounds
    extra = {
        "decomposition_rounds": float(decomposition.rounds),
        "gather_rounds": float(network.stats.rounds),
        "num_partitions": float(decomposition.num_partitions),
        "messages": float(
            network.stats.messages + decomp_stats.messages
        ),
    }
    if deterministic:
        extra["deterministic"] = 1.0
        extra["uncovered_direct"] = float(len(uncovered))
    return SpannerResult(
        spanner=spanner,
        k=k,
        f=f,
        fault_model=model,
        algorithm="local-ft",
        rounds=total_rounds,
        extra=extra,
    )


class _GatherComputeFactory:
    """Per-node protocol factory: the engine hands it each node ID.

    Replaces the old shared-iterator closure, which leaned on the
    engine calling the factory *exactly once per node in sorted order*
    -- an invariant no partitioned execution could keep.  The engine
    now passes the node to any factory with a positional parameter, so
    this works identically (and spawn-safely) on every execution path.
    """

    def __init__(self, decomposition, radius, k, f, model, use_exact) -> None:
        self.decomposition = decomposition
        self.radius = radius
        self.k = k
        self.f = f
        self.model = model
        self.use_exact = use_exact

    def __call__(self, node: Node) -> _GatherComputeProtocol:
        return _GatherComputeProtocol(
            node=node,
            decomposition=self.decomposition,
            radius=self.radius,
            k=self.k,
            f=self.f,
            fault_model=self.model,
            use_exact_greedy=self.use_exact,
        )


def lambda_factory(decomposition, radius, k, f, model, use_exact, g=None):
    """Per-node protocol factory closing over node-local knowledge.

    Kept as the historical entry point; the returned factory now takes
    the node ID from the engine (see :class:`_GatherComputeFactory`)
    instead of replaying the engine's iteration order from a shared
    iterator.  ``g`` is accepted for signature compatibility and
    unused.
    """
    return _GatherComputeFactory(decomposition, radius, k, f, model, use_exact)
