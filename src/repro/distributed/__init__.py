"""Distributed algorithms (Section 5 of the paper) and their substrate.

The paper's LOCAL and CONGEST algorithms are implemented as genuinely
node-local protocols on a synchronous message-passing simulator
(:mod:`~repro.distributed.runtime`):

* every node runs the same :class:`~repro.distributed.runtime.NodeProtocol`
  with access only to its own ID, its incident edges, and received
  messages;
* the engine delivers messages in synchronous rounds, counts them, and
  measures per-message size in words so CONGEST's O(log n)-bit budget is
  an *observable*, not an assumption.

Algorithms:

* :func:`~repro.distributed.local_spanner.local_ft_spanner` -- Theorem 12:
  padded decomposition (Theorem 11, built on MPX-style random shifts in
  :mod:`~repro.distributed.decomposition`), greedy per cluster, union.
* :func:`~repro.distributed.congest_bs.congest_baswana_sen` -- Theorem 14:
  Baswana-Sen as a CONGEST protocol, O(k^2) rounds, O(1)-word messages.
* :func:`~repro.distributed.congest_ft.congest_ft_spanner` -- Theorem 15:
  the pipelined DK11 x Baswana-Sen fault-tolerant construction.
* :func:`~repro.distributed.ruling_set.deterministic_ruling_set` /
  :func:`~repro.distributed.ruling_set.deterministic_decomposition` --
  the deterministic (2, O(log n))-ruling-set clustering (after
  Rozhon-Ghaffari / Pai-Pemmaraju) behind ``local_ft_spanner``'s
  ``deterministic=True`` mode.

Every entry point takes ``workers=`` to run its simulator rounds across
that many processes on the shared parallel substrate
(:mod:`repro.parallel`) with bit-identical outputs and statistics.
"""

from repro.distributed.runtime import (
    CongestViolation,
    Message,
    NodeProtocol,
    RunStats,
    SyncNetwork,
)
from repro.distributed.decomposition import (
    Cluster,
    Decomposition,
    padded_decomposition,
    verify_decomposition,
)
from repro.distributed.local_spanner import local_ft_spanner
from repro.distributed.congest_bs import congest_baswana_sen
from repro.distributed.congest_ft import congest_ft_spanner
from repro.distributed.ruling_set import (
    RulingSet,
    deterministic_decomposition,
    deterministic_ruling_set,
    verify_ruling_set,
)

__all__ = [
    "CongestViolation",
    "Message",
    "NodeProtocol",
    "RunStats",
    "SyncNetwork",
    "Cluster",
    "Decomposition",
    "padded_decomposition",
    "verify_decomposition",
    "local_ft_spanner",
    "congest_baswana_sen",
    "congest_ft_spanner",
    "RulingSet",
    "deterministic_decomposition",
    "deterministic_ruling_set",
    "verify_ruling_set",
]
