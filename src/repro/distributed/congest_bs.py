"""Theorem 14: Baswana-Sen in the CONGEST model.

A faithful node-local implementation of [BS07] under the CONGEST message
budget (every message here is a constant number of words; the simulator
*enforces* this).  The structure follows the sequential form in
:mod:`repro.baselines.baswana_sen`, phased onto a global round schedule
every node can compute from ``k`` alone:

Phase i (i = 1 .. k-1), occupying ``i + 3`` rounds:

1. **Announce** (1 round): every node tells its neighbors its current
   cluster token (or that it is unclustered).
2. **Survival flood** (i rounds): each cluster's coin is flipped by its
   center (probability ``n^(-1/k)``); the bit floods through the
   cluster, whose hop radius is < i at phase i, reaching every member
   within the i flood rounds.
3. **Status** (1 round): every clustered node announces
   ``(token, survived, depth)`` to its neighbors.
4. **Join** (1 round): every node in a non-surviving cluster picks the
   lightest incident edge into a surviving cluster and joins through it
   (adding the edge), also adding its lightest edge into every adjacent
   cluster offering a strictly lighter edge [BS07 join rule]; a node with
   no adjacent surviving cluster adds its lightest edge into every
   adjacent cluster and leaves the clustering.

Final phase (2 rounds): announce final tokens; every clustered node adds
its lightest edge into each adjacent foreign cluster.

Total rounds: ``sum_{i=1}^{k-1} (i + 3) + 2 = O(k^2)``; every message is
O(1) words -- matching Theorem 14.

Cluster identity travels as the center's ``repr`` string (one ID word for
the integer node labels used in experiments); nodes compare tokens only
for equality, never dereference them.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from repro.core.spanner import FaultModel, SpannerResult
from repro.distributed.runtime import (
    Message,
    NodeContext,
    NodeProtocol,
    SyncNetwork,
)
from repro.graph.graph import Graph, Node, edge_key
from repro.registry import register_algorithm

_UNCLUSTERED = "<none>"


def _phase_schedule(k: int) -> List[Tuple[int, int, str]]:
    """The global round schedule: (round, phase_index, step).

    Steps: 'announce', 'flood:<j>' x i, 'status', 'join' per phase
    i = 1..k-1, then 'final-announce' and 'final-join'.  Every node
    derives the identical schedule from k, so coordination is free.
    """
    schedule: List[Tuple[int, int, str]] = []
    r = 1
    for i in range(1, k):
        schedule.append((r, i, "announce"))
        r += 1
        for j in range(i):
            schedule.append((r, i, f"flood:{j}"))
            r += 1
        schedule.append((r, i, "status"))
        r += 1
        schedule.append((r, i, "join"))
        r += 1
    schedule.append((r, k, "final-announce"))
    r += 1
    schedule.append((r, k, "final-join"))
    return schedule


class _BaswanaSenProtocol(NodeProtocol):
    """Node-local Baswana-Sen logic driven by the global schedule."""

    def __init__(self, k: int) -> None:
        self.k = k
        self.token: Optional[str] = None  # own cluster token, None = left
        self.depth = 0
        self.survived = False
        self.flood_seen = False
        self.pending_bit: Optional[Tuple[str, bool]] = None
        self.neighbor_token: Dict[Node, str] = {}
        self.neighbor_status: Dict[Node, Tuple[str, bool, int]] = {}
        self.spanner_edges: Set[Tuple[Node, Node]] = set()
        self.schedule: Dict[int, Tuple[int, str]] = {}
        self.last_round = 0
        self.p = 1.0
        self.own_token = ""

    # ------------------------------------------------------------- #

    def init(self, ctx: NodeContext) -> None:
        self.own_token = repr(ctx.node)
        self.token = self.own_token
        self.p = ctx.n ** (-1.0 / self.k) if ctx.n > 1 else 1.0
        for r, i, step in _phase_schedule(self.k):
            self.schedule[r] = (i, step)
            self.last_round = max(self.last_round, r)

    def receive(self, ctx: NodeContext, messages: List[Message]) -> None:
        for msg in messages:
            tag = msg.payload[0]
            if tag == "center":
                self.neighbor_token[msg.sender] = msg.payload[1]
            elif tag == "bit":
                _, token, bit = msg.payload
                if self.token == token and not self.flood_seen:
                    self.survived = bool(bit)
                    self.flood_seen = True
                    self.pending_bit = (token, bool(bit))
            elif tag == "status":
                _, token, bit, depth = msg.payload
                self.neighbor_status[msg.sender] = (
                    token,
                    bool(bit),
                    int(depth),
                )

        entry = self.schedule.get(ctx.round)
        if entry is None:
            if ctx.round > self.last_round:
                ctx.halt()
            return
        _, step = entry
        if step in ("announce", "final-announce"):
            ctx.broadcast(
                ("center", self.token if self.token is not None else _UNCLUSTERED)
            )
            self.neighbor_status = {}
        elif step.startswith("flood:"):
            j = int(step.split(":", 1)[1])
            if j == 0 and self.token == self.own_token:
                # This node centers a live cluster: flip the coin.
                self.survived = ctx.rng.random() < self.p
                self.flood_seen = True
                self.pending_bit = (self.token, self.survived)
            if self.pending_bit is not None:
                token, bit = self.pending_bit
                for v in ctx.neighbors:
                    if self.neighbor_token.get(v) == token:
                        ctx.send(v, ("bit", token, bit))
                self.pending_bit = None
        elif step == "status":
            if self.token is not None:
                ctx.broadcast(
                    ("status", self.token, self.survived, self.depth)
                )
        elif step == "join":
            self._join_step(ctx)
            self.flood_seen = False
            self.pending_bit = None
        elif step == "final-join":
            self._final_join(ctx)
            ctx.halt()

    # ------------------------------------------------------------- #

    def _join_step(self, ctx: NodeContext) -> None:
        """Step 4 of a phase: the [BS07] join rule, locally decided."""
        if self.token is None or self.survived:
            return
        best = self._lightest_per_cluster(ctx)
        surviving = {
            token: (w, u, depth)
            for token, (w, u, depth, alive) in best.items()
            if alive
        }
        if surviving:
            join_token, (join_w, join_u, join_depth) = min(
                surviving.items(), key=lambda kv: (kv[1][0], kv[0])
            )
            self._add_edge(ctx.node, join_u)
            for token, (w, u, _depth, _alive) in best.items():
                if token != join_token and w < join_w:
                    self._add_edge(ctx.node, u)
            self.token = join_token
            self.depth = join_depth + 1
            self.survived = True  # now a member of a surviving cluster
        else:
            for token, (w, u, _depth, _alive) in best.items():
                self._add_edge(ctx.node, u)
            self.token = None
            self.depth = 0

    def _final_join(self, ctx: NodeContext) -> None:
        """Final phase: lightest edge into each adjacent foreign cluster."""
        if self.token is None:
            return
        best: Dict[str, Tuple[float, str, Node]] = {}
        for v in ctx.neighbors:
            token = self.neighbor_token.get(v)
            if token is None or token == _UNCLUSTERED or token == self.token:
                continue
            w = ctx.edge_weights[v]
            cand = (w, repr(v), v)
            if token not in best or cand[:2] < best[token][:2]:
                best[token] = cand
        for token, (_w, _r, u) in best.items():
            self._add_edge(ctx.node, u)

    def _lightest_per_cluster(
        self, ctx: NodeContext
    ) -> Dict[str, Tuple[float, Node, int, bool]]:
        """Per adjacent foreign cluster: (weight, endpoint, depth, alive)."""
        best: Dict[str, Tuple[float, Node, int, bool]] = {}
        for v, (token, alive, depth) in self.neighbor_status.items():
            if token == self.token:
                continue
            w = ctx.edge_weights[v]
            cur = best.get(token)
            if cur is None or (w, repr(v)) < (cur[0], repr(cur[1])):
                best[token] = (w, v, depth, alive)
        return best

    def _add_edge(self, u: Node, v: Node) -> None:
        self.spanner_edges.add(edge_key(u, v))

    def output(self) -> FrozenSet[Tuple[Node, Node]]:
        return frozenset(self.spanner_edges)


class _BaswanaSenFactory:
    """Module-level protocol factory (picklable for spawned workers)."""

    def __init__(self, k: int) -> None:
        self.k = k

    def __call__(self) -> _BaswanaSenProtocol:
        return _BaswanaSenProtocol(self.k)


@register_algorithm(
    "congest-bs",
    summary="Theorem 14: Baswana-Sen as a CONGEST protocol",
    guarantee="stretch 2k-1, O(k^2) CONGEST rounds, O(1)-word messages; "
              "no fault tolerance",
    seedable=True,
    distributed=True,
)
def congest_baswana_sen(
    g: Graph,
    k: int,
    seed: Optional[int] = None,
    congest_word_limit: int = 8,
    workers: Optional[int] = None,
) -> SpannerResult:
    """Run the Theorem 14 CONGEST Baswana-Sen protocol end to end.

    The returned ``rounds`` is the simulator's actual round count and
    ``extra['max_message_words']`` certifies the CONGEST budget was
    respected (the engine raises on violation; the stat shows headroom).
    ``workers`` executes the rounds across that many partition worker
    processes -- output and stats are bit-identical to ``workers=None``.
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    network = SyncNetwork(
        g, model="CONGEST", congest_word_limit=congest_word_limit, seed=seed
    )
    schedule_len = _phase_schedule(k)[-1][0]
    outputs = network.run(
        _BaswanaSenFactory(k), max_rounds=schedule_len + 4, workers=workers
    )
    spanner = network.collect_spanner(outputs)
    return SpannerResult(
        spanner=spanner,
        k=k,
        f=0,
        fault_model=FaultModel.VERTEX,
        algorithm="congest-baswana-sen",
        rounds=network.stats.rounds,
        extra={
            "messages": float(network.stats.messages),
            "max_message_words": float(network.stats.max_message_words),
            "schedule_rounds": float(schedule_len),
        },
    )
