"""Padded network decomposition (Theorem 11) in the LOCAL model.

The paper cites [DK11] (and implicitly [LS93, Bar96, MPX13, MPVX15]) for
an O(log n)-round LOCAL algorithm producing partitions P_1, ..., P_l of V
such that:

1. each P_i is a partition into clusters,
2. every cluster has hop diameter O(log n) and a designated center,
3. l = O(log n),
4. whp every edge is contained in some cluster of some partition.

We implement the Miller-Peng-Xu random-shift construction: in each
partition, every node u draws an exponential shift ``delta_u ~ Exp(beta)``
(truncated at R = O(log n / beta), which changes nothing whp) and joins
the node c maximizing ``delta_c - d_hop(u, c)``, ties broken by node ID.
A node's own candidacy (value ``delta_u >= 0``) guarantees the maximum is
non-negative, so offers only travel ``<= R`` hops and the flood runs in
R + 1 = O(log n) rounds.  Standard analysis: each cluster is connected
with hop radius <= R, and each edge is cut with probability
``<= 1 - e^(-beta) <= beta``; with ``l = O(log n)`` independent
partitions every edge is covered somewhere whp.

All ``l`` partitions are flooded **in parallel** in a single LOCAL
protocol (messages carry the partition index; LOCAL has no size limit),
so the whole decomposition costs O(log n) rounds total -- matching
Theorem 11.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.distributed.runtime import (
    Message,
    NodeContext,
    NodeProtocol,
    RunStats,
    SyncNetwork,
)
from repro.graph.graph import Graph, Node
from repro.graph.traversal import bfs_distances


@dataclass(frozen=True)
class Cluster:
    """One cluster of one partition."""

    partition: int
    center: Node
    members: Tuple[Node, ...]

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class Decomposition:
    """The output of :func:`padded_decomposition`.

    ``assignment[i][v]`` is the center of v's cluster in partition i;
    ``parent[i][v]`` is v's tree parent toward that center (None at the
    center itself); ``depth[i][v]`` the hop distance along that tree.
    """

    num_partitions: int
    assignment: List[Dict[Node, Node]]
    parent: List[Dict[Node, Optional[Node]]]
    depth: List[Dict[Node, int]]
    radius_bound: int
    rounds: int

    def clusters(self) -> List[Cluster]:
        """Materialize all clusters of all partitions."""
        out: List[Cluster] = []
        for i in range(self.num_partitions):
            groups: Dict[Node, List[Node]] = {}
            for v, c in self.assignment[i].items():
                groups.setdefault(c, []).append(v)
            for c, members in sorted(groups.items(), key=lambda kv: repr(kv[0])):
                out.append(
                    Cluster(
                        partition=i,
                        center=c,
                        members=tuple(sorted(members, key=repr)),
                    )
                )
        return out

    def covers_edge(self, u: Node, v: Node) -> bool:
        """Whether some partition places u and v in the same cluster."""
        return any(
            self.assignment[i][u] == self.assignment[i][v]
            for i in range(self.num_partitions)
        )


class _ShiftFloodProtocol(NodeProtocol):
    """Per-node logic: parallel shifted-BFS floods, one per partition.

    State per partition: the best offer ``(value, center, parent)`` seen,
    initialized to the node's own candidacy ``(delta_self, self, None)``.
    Each round the node broadcasts every offer that improved since its
    last broadcast, decremented by one hop.  After ``radius + 1`` quiet
    rounds... offers of value <= 0 are not forwarded, so the flood
    self-limits to ``radius`` hops; nodes halt at round ``radius + 1``.
    """

    def __init__(self, num_partitions: int, beta: float, radius: int) -> None:
        self.num_partitions = num_partitions
        self.beta = beta
        self.radius = radius
        self.best: List[Tuple[float, str, Node, Optional[Node]]] = []

    def init(self, ctx: NodeContext) -> None:
        for _ in range(self.num_partitions):
            delta = min(
                ctx.rng.expovariate(self.beta), float(self.radius)
            )
            # Tie-break by repr of the center so assignment is a function
            # of (value, center) alone -- consistency makes clusters
            # connected.
            self.best.append((delta, repr(ctx.node), ctx.node, None))
        self._announce(ctx, range(self.num_partitions))

    def receive(self, ctx: NodeContext, messages: List[Message]) -> None:
        improved = set()
        for msg in messages:
            i, value, center_repr, center = msg.payload
            offer = (value, center_repr, center, msg.sender)
            if self._better(offer, self.best[i]):
                self.best[i] = offer
                improved.add(i)
        if improved:
            self._announce(ctx, sorted(improved))
        if ctx.round >= self.radius + 1:
            ctx.halt()

    @staticmethod
    def _better(a, b) -> bool:
        """Lexicographic on (value, center-repr); higher value wins."""
        return (a[0], a[1]) > (b[0], b[1])

    def _announce(self, ctx: NodeContext, partitions) -> None:
        for i in partitions:
            value, center_repr, center, _ = self.best[i]
            if value - 1.0 <= 0.0:
                continue  # the decremented offer can never win anywhere
            ctx.broadcast((i, value - 1.0, center_repr, center))

    def output(self):
        return [
            (center, parent, value) for value, _, center, parent in self.best
        ]


class _ShiftFloodFactory:
    """Module-level protocol factory (picklable for spawned workers)."""

    def __init__(self, num_partitions: int, beta: float, radius: int) -> None:
        self.num_partitions = num_partitions
        self.beta = beta
        self.radius = radius

    def __call__(self) -> _ShiftFloodProtocol:
        return _ShiftFloodProtocol(self.num_partitions, self.beta, self.radius)


def padded_decomposition(
    g: Graph,
    beta: float = 0.25,
    num_partitions: Optional[int] = None,
    seed: Optional[int] = None,
    workers: Optional[int] = None,
) -> Tuple[Decomposition, RunStats]:
    """Run the Theorem 11 decomposition on the LOCAL simulator.

    Returns the decomposition plus the engine's round/message statistics.
    ``beta`` trades cluster radius (``O(log n / beta)``) against per-
    partition edge-cut probability (``<= beta``); ``num_partitions``
    defaults to ``ceil(2 * log2 n) + 1``.  ``workers`` runs the flood
    rounds on the parallel substrate (bit-identical output and stats).
    """
    if not 0.0 < beta < 1.0:
        raise ValueError(f"beta must be in (0, 1), got {beta}")
    n = g.num_nodes
    if n == 0:
        return (
            Decomposition(0, [], [], [], radius_bound=0, rounds=0),
            RunStats(),
        )
    if num_partitions is None:
        num_partitions = max(1, math.ceil(2 * math.log2(max(n, 2)))) + 1
    radius = max(1, math.ceil(2 * math.log(max(n, 2)) / beta))
    network = SyncNetwork(g, model="LOCAL", seed=seed)
    outputs = network.run(
        _ShiftFloodFactory(num_partitions, beta, radius),
        max_rounds=radius + 4,
        workers=workers,
    )
    assignment: List[Dict[Node, Node]] = [dict() for _ in range(num_partitions)]
    parent: List[Dict[Node, Optional[Node]]] = [
        dict() for _ in range(num_partitions)
    ]
    depth_maps: List[Dict[Node, int]] = [dict() for _ in range(num_partitions)]
    for v, per_partition in outputs.items():
        for i, (center, par, _value) in enumerate(per_partition):
            assignment[i][v] = center
            parent[i][v] = par
    for i in range(num_partitions):
        depth_maps[i] = _tree_depths(parent[i])
    decomposition = Decomposition(
        num_partitions=num_partitions,
        assignment=assignment,
        parent=parent,
        depth=depth_maps,
        radius_bound=radius,
        rounds=network.stats.rounds,
    )
    return decomposition, network.stats


def _tree_depths(parent: Dict[Node, Optional[Node]]) -> Dict[Node, int]:
    """Depths along parent pointers (centers have depth 0)."""
    depth: Dict[Node, int] = {}

    def resolve(v: Node) -> int:
        if v in depth:
            return depth[v]
        chain = []
        cur = v
        while cur not in depth and parent[cur] is not None:
            chain.append(cur)
            cur = parent[cur]
        base = depth.get(cur, 0)
        if cur not in depth:
            depth[cur] = 0
        for node in reversed(chain):
            base += 1
            depth[node] = base
        return depth[v]

    for v in parent:
        resolve(v)
    return depth


def verify_decomposition(
    g: Graph, decomposition: Decomposition, diameter_bound: Optional[int] = None
) -> List[str]:
    """Check the four Theorem 11 properties; return a list of violations.

    ``diameter_bound`` defaults to twice the construction's radius bound.
    Edge coverage is a whp property -- the caller decides whether a small
    number of uncovered edges is within tolerance; we report them all.
    """
    problems: List[str] = []
    if diameter_bound is None:
        diameter_bound = 2 * decomposition.radius_bound
    nodes = set(g.nodes())
    for i in range(decomposition.num_partitions):
        assigned = decomposition.assignment[i]
        if set(assigned) != nodes:
            problems.append(f"partition {i} does not cover V")
            continue
        groups: Dict[Node, List[Node]] = {}
        for v, c in assigned.items():
            groups.setdefault(c, []).append(v)
        for c, members in groups.items():
            if c not in members:
                problems.append(
                    f"partition {i}: center {c!r} outside its own cluster"
                )
            sub = g.subgraph(members)
            dist = bfs_distances(sub, c)
            if len(dist) != len(members):
                problems.append(
                    f"partition {i}: cluster of {c!r} is disconnected"
                )
                continue
            radius = max(dist.values(), default=0)
            if 2 * radius > diameter_bound:
                problems.append(
                    f"partition {i}: cluster of {c!r} has diameter "
                    f">= {2 * radius} > {diameter_bound}"
                )
    uncovered = [
        (u, v) for u, v in g.edges() if not decomposition.covers_edge(u, v)
    ]
    for u, v in uncovered:
        problems.append(f"edge ({u!r}, {v!r}) covered by no cluster")
    return problems
