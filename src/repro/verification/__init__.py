"""Verification: is this subgraph really an f-fault-tolerant t-spanner?

Fault-tolerant spanner verification is itself expensive -- there are
``C(n, f)`` vertex fault sets -- so this subpackage offers a spectrum:

* :func:`~repro.verification.spanner_check.verify_ft_spanner` --
  exhaustive over all fault sets up to a budget, else randomized with
  adversarial fault-set heuristics; returns a verdict plus a
  counterexample when one is found.
* :func:`~repro.verification.stretch.max_stretch` and friends -- measure
  the *actual* worst-case stretch (with or without faults), used by the
  experiments to report measured stretch against the 2k-1 guarantee.
* :mod:`~repro.verification.certificates` -- check LBC cut certificates
  and greedy addition decisions independently of the construction code,
  and produce/audit Menger disjoint-path certificates (the polynomial
  YES-side witnesses behind ``verify_ft_spanner(mode="witness")``).

Backends: the spanner check and the stretch sweeps run on the CSR
backend by default (``backend=`` keyword / ``REPRO_BACKEND``; identical
reports either way): graphs are snapshotted once per call and each
fault set is an O(|F|) mask re-stamp instead of a fresh view pair.
Sweep complexity is O(|fault sets| * m) hop-bounded BFS runs on
unit-weighted inputs, or truncated Dijkstras on weighted ones.  The
certificate checks are dict-only replays (one BFS per certificate).
"""

from repro.verification.spanner_check import (
    VERIFY_MODES,
    Counterexample,
    SweepBudgetExceeded,
    VerificationReport,
    is_spanner,
    verify_ft_spanner,
)
from repro.verification.stretch import (
    max_stretch,
    max_stretch_under_faults,
    pairwise_stretch,
    stretch_of_pair,
)
from repro.verification.certificates import (
    check_certificates,
    check_cut_certificate,
    check_disjoint_paths,
    disjoint_paths,
)

__all__ = [
    "VERIFY_MODES",
    "Counterexample",
    "SweepBudgetExceeded",
    "VerificationReport",
    "is_spanner",
    "verify_ft_spanner",
    "max_stretch",
    "max_stretch_under_faults",
    "pairwise_stretch",
    "stretch_of_pair",
    "check_certificates",
    "check_cut_certificate",
    "check_disjoint_paths",
    "disjoint_paths",
]
