"""Stretch measurement.

The stretch of a spanner H w.r.t. G (possibly after removing a fault set
F) is ``max over pairs u,v of d_{H\\F}(u, v) / d_{G\\F}(u, v)``.  By the
paper's Lemma 3 it suffices to range over pairs that are *edges of G*
whose weight is realized as the post-fault distance; we expose both the
edge-restricted measure (fast, what the proofs bound) and the full
all-pairs measure (what a user of the spanner experiences).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.graph.graph import Edge, Graph, Node
from repro.graph.traversal import dijkstra
from repro.graph.views import GraphView, fault_view

INFINITY = math.inf

GraphLike = Union[Graph, GraphView]


def stretch_of_pair(
    g: GraphLike, h: GraphLike, u: Node, v: Node
) -> float:
    """d_H(u, v) / d_G(u, v) for one pair.

    Conventions: 0/0 (same node) and inf/inf (disconnected in both) are
    stretch 1; finite/inf cannot happen for subgraphs of G; inf/finite is
    stretch inf (H lost the connection).
    """
    dg = dijkstra(g, u, target=v).get(v, INFINITY)
    dh = dijkstra(h, u, target=v).get(v, INFINITY)
    if dg == 0.0 or (math.isinf(dg) and math.isinf(dh)):
        return 1.0
    if math.isinf(dh):
        return INFINITY
    return dh / dg


def pairwise_stretch(
    g: GraphLike,
    h: GraphLike,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
) -> Dict[Tuple[Node, Node], float]:
    """Stretch for each pair (default: every edge of ``g``).

    Edge pairs are exactly the set Lemma 3 says suffices; full all-pairs
    measurement is available by passing explicit pairs.
    """
    if pairs is None:
        pairs = _edge_pairs(g)
    return {(u, v): stretch_of_pair(g, h, u, v) for u, v in pairs}


def max_stretch(
    g: GraphLike,
    h: GraphLike,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
) -> float:
    """Worst-case stretch of H over the given pairs (default: edges of G).

    For subgraphs H of G, maximizing over the edges of G provably equals
    maximizing over all pairs (the Lemma 3 argument: concatenate per-edge
    detours along a shortest path).
    """
    if pairs is None:
        pairs = _edge_pairs(g)
    worst = 1.0
    for u, v in pairs:
        s = stretch_of_pair(g, h, u, v)
        worst = max(worst, s)
        if math.isinf(worst):
            break
    return worst


def max_stretch_under_faults(
    g: Graph,
    h: Graph,
    faults: Iterable,
    fault_model: str = "vertex",
) -> float:
    """Worst-case stretch of ``H \\ F`` w.r.t. ``G \\ F``.

    ``faults`` is a vertex set or edge set per ``fault_model``.  Pairs
    range over the edges of ``G \\ F`` (sufficient by Lemma 3).
    """
    faults = list(faults)
    if fault_model == "vertex":
        gv = fault_view(g, vertex_faults=faults)
        hv = fault_view(h, vertex_faults=faults)
    elif fault_model == "edge":
        gv = fault_view(g, edge_faults=faults)
        hv = fault_view(h, edge_faults=faults)
    else:
        raise ValueError(f"unknown fault model {fault_model!r}")
    return max_stretch(gv, hv, pairs=_surviving_edge_pairs(g, gv))


def _edge_pairs(g: GraphLike) -> Iterable[Tuple[Node, Node]]:
    """Edge endpoints of a graph or view (views filter faulted edges)."""
    if isinstance(g, Graph):
        return list(g.edges())
    pairs = []
    seen = set()
    for u in g.nodes():
        for v in g.neighbors(u):
            if (v, u) not in seen:
                seen.add((u, v))
                pairs.append((u, v))
    return pairs


def _surviving_edge_pairs(g: Graph, view) -> Iterable[Tuple[Node, Node]]:
    """Edges of ``g`` that survive in ``view``."""
    return [
        (u, v) for u, v in g.edges() if view.has_node(u) and view.has_edge(u, v)
    ]
