"""Stretch measurement.

The stretch of a spanner H w.r.t. G (possibly after removing a fault set
F) is ``max over pairs u,v of d_{H\\F}(u, v) / d_{G\\F}(u, v)``.  By the
paper's Lemma 3 it suffices to range over pairs that are *edges of G*
whose weight is realized as the post-fault distance; we expose both the
edge-restricted measure (fast, what the proofs bound) and the full
all-pairs measure (what a user of the spanner experiences).

Execution backends
------------------
Measuring stretch is two Dijkstras per pair, so for concrete
:class:`~repro.graph.graph.Graph` inputs the sweep runs on the CSR
backend by default (``backend=`` keyword / ``REPRO_BACKEND``): both
graphs are snapshotted once over a shared
:class:`~repro.graph.index.NodeIndexer` and every pair is probed with
early-exit CSR Dijkstra through one reusable
:class:`~repro.graph.traversal.DijkstraWorkspace`;
:func:`max_stretch_under_faults` replaces the ``G \\ F`` / ``H \\ F``
views with generation-stamped fault masks.  Lazy
:class:`~repro.graph.views.GraphView` inputs always take the dict
reference path.  Both paths compute identical ratios.  Complexity:
O(|pairs|) Dijkstras either way; the CSR path just makes each one a
flat-array heap scan with zero per-pair allocation.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.core.spanner import resolve_backend
from repro.graph.graph import Edge, Graph, Node
from repro.graph.traversal import (
    DijkstraWorkspace,
    csr_weighted_distance,
    dijkstra,
)
from repro.graph.views import GraphView, fault_view
from repro.graph.snapshot import (
    DualCSRSnapshot,
    resolve_search,
    validate_search,
    weighted_pair_engine,
)

INFINITY = math.inf

GraphLike = Union[Graph, GraphView]


def stretch_of_pair(
    g: GraphLike, h: GraphLike, u: Node, v: Node
) -> float:
    """d_H(u, v) / d_G(u, v) for one pair.

    Conventions: 0/0 (same node) and inf/inf (disconnected in both) are
    stretch 1; finite/inf cannot happen for subgraphs of G; inf/finite is
    stretch inf (H lost the connection).
    """
    dg = dijkstra(g, u, target=v).get(v, INFINITY)
    dh = dijkstra(h, u, target=v).get(v, INFINITY)
    return _ratio(dg, dh)


def _ratio(dg: float, dh: float) -> float:
    """Apply the :func:`stretch_of_pair` conventions to two distances."""
    if dg == 0.0 or (math.isinf(dg) and math.isinf(dh)):
        return 1.0
    if math.isinf(dh):
        return INFINITY
    return dh / dg


class _CSRStretchSweep:
    """Shared flat-array state for one stretch measurement call.

    A :class:`DualCSRSnapshot` (G and H over one shared indexer) plus a
    single reusable workspace; per-pair probes are early-exit CSR
    Dijkstras, and optional fault masks stand in for the ``G \\ F`` /
    ``H \\ F`` views.

    ``search`` picks the probe engine per side (``'auto'`` resolves from
    each snapshot's weight profile: bidirectional Dijkstra on integral
    weights, the heap otherwise); ratios are identical on every legal
    engine.
    """

    __slots__ = (
        "snap", "ws", "use_vmask", "use_emasks", "eng_g", "eng_h",
        "mw_g", "mw_h",
    )

    def __init__(
        self, g: Graph, h: Graph, search: Optional[str] = None
    ) -> None:
        self.snap = DualCSRSnapshot(g, h)
        s = validate_search(
            search, self.snap.snap_g.profile, self.snap.snap_h.profile
        )
        self.eng_g = weighted_pair_engine(s, self.snap.snap_g.profile)
        self.eng_h = weighted_pair_engine(s, self.snap.snap_h.profile)
        self.mw_g = self.snap.snap_g.max_weight
        self.mw_h = self.snap.snap_h.max_weight
        self.ws = DijkstraWorkspace(len(self.snap.indexer))
        self.use_vmask = False
        self.use_emasks = False

    def set_vertex_faults(self, faults: Iterable[Node]) -> None:
        """Stamp a vertex fault set (shared index space: one mask)."""
        self.snap.set_vertex_faults(faults)
        self.use_vmask = True

    def set_edge_faults(self, faults: Iterable[Edge]) -> None:
        """Stamp an edge fault set into per-graph edge-id masks."""
        self.snap.set_edge_faults(faults)
        self.use_emasks = True

    def stretch(self, u: Node, v: Node) -> float:
        """Stretch of one pair under the currently-stamped faults.

        Mirrors the dict path's semantics for odd pairs: a source
        missing from either graph raises ``KeyError`` (as the dict
        Dijkstras do), while an unknown *target* is merely unreachable
        and falls into the usual ratio conventions.
        """
        snap = self.snap
        if not snap.g.has_node(u):
            raise KeyError(f"source {u!r} not in graph")
        if not snap.h.has_node(u):
            raise KeyError(f"source {u!r} not in graph")
        iu = snap.indexer.index(u)
        iv = snap.indexer.get(v)
        if iv is None:
            return _ratio(INFINITY, INFINITY)  # unreachable in both
        vmask = snap.vmask if self.use_vmask else None
        if iv >= snap.csr_g.num_nodes:
            # v exists only in H (indexed after csr_g was frozen): the
            # dict path treats it as unreachable in G.
            dg = INFINITY
        else:
            dg = csr_weighted_distance(
                snap.csr_g, iu, iv, workspace=self.ws, vertex_mask=vmask,
                edge_mask=snap.emask_g if self.use_emasks else None,
                search=self.eng_g, max_weight=self.mw_g,
            )
        dh = csr_weighted_distance(
            snap.csr_h, iu, iv, workspace=self.ws, vertex_mask=vmask,
            edge_mask=snap.emask_h if self.use_emasks else None,
            search=self.eng_h, max_weight=self.mw_h,
        )
        return _ratio(dg, dh)


def pairwise_stretch(
    g: GraphLike,
    h: GraphLike,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
    backend: Optional[str] = None,
    search: Optional[str] = None,
) -> Dict[Tuple[Node, Node], float]:
    """Stretch for each pair (default: every edge of ``g``).

    Edge pairs are exactly the set Lemma 3 says suffices; full all-pairs
    measurement is available by passing explicit pairs.  ``search``
    picks the CSR probe engine (identical ratios on every legal one).
    """
    if pairs is None:
        pairs = _edge_pairs(g)
    if _use_csr(g, h, backend):
        sweep = _CSRStretchSweep(g, h, search=search)
        return {(u, v): sweep.stretch(u, v) for u, v in pairs}
    resolve_search(search)  # validate the name even on the dict path
    return {(u, v): stretch_of_pair(g, h, u, v) for u, v in pairs}


def max_stretch(
    g: GraphLike,
    h: GraphLike,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
    backend: Optional[str] = None,
    search: Optional[str] = None,
) -> float:
    """Worst-case stretch of H over the given pairs (default: edges of G).

    For subgraphs H of G, maximizing over the edges of G provably equals
    maximizing over all pairs (the Lemma 3 argument: concatenate per-edge
    detours along a shortest path).
    """
    if pairs is None:
        pairs = _edge_pairs(g)
    if _use_csr(g, h, backend):
        probe = _CSRStretchSweep(g, h, search=search).stretch
    else:
        resolve_search(search)  # validate the name even on the dict path
        def probe(u, v):
            return stretch_of_pair(g, h, u, v)
    return _worst_ratio(probe, pairs)


def _worst_ratio(probe, pairs) -> float:
    """Max of ``probe`` over ``pairs``, short-circuiting at infinity."""
    worst = 1.0
    for u, v in pairs:
        worst = max(worst, probe(u, v))
        if math.isinf(worst):
            break
    return worst


def max_stretch_under_faults(
    g: Graph,
    h: Graph,
    faults: Iterable,
    fault_model: str = "vertex",
    backend: Optional[str] = None,
    search: Optional[str] = None,
) -> float:
    """Worst-case stretch of ``H \\ F`` w.r.t. ``G \\ F``.

    ``faults`` is a vertex set or edge set per ``fault_model``.  Pairs
    range over the edges of ``G \\ F`` (sufficient by Lemma 3).  On the
    CSR backend the fault set is a mask re-stamp instead of a pair of
    lazy views, and ``search`` picks the probe engine.
    """
    faults = list(faults)
    if fault_model not in ("vertex", "edge"):
        raise ValueError(f"unknown fault model {fault_model!r}")
    use_csr = _use_csr(g, h, backend)
    if not use_csr:
        resolve_search(search)  # validate the name even on the dict path
    if use_csr:
        sweep = _CSRStretchSweep(g, h, search=search)
        snap = sweep.snap
        index = snap.indexer.index
        if fault_model == "vertex":
            sweep.set_vertex_faults(faults)
            vstamp, vgen = snap.vmask.stamp, snap.vmask.gen
            pairs = [
                (u, v) for u, v in g.edges()
                if vstamp[index(u)] != vgen and vstamp[index(v)] != vgen
            ]
        else:
            sweep.set_edge_faults(faults)
            estamp, egen = snap.emask_g.stamp, snap.emask_g.gen
            pairs = [
                (u, v) for u, v in g.edges()
                if estamp[snap.csr_g.edge_id(index(u), index(v))] != egen
            ]
        return _worst_ratio(sweep.stretch, pairs)
    if fault_model == "vertex":
        gv = fault_view(g, vertex_faults=faults)
        hv = fault_view(h, vertex_faults=faults)
    else:
        gv = fault_view(g, edge_faults=faults)
        hv = fault_view(h, edge_faults=faults)
    return max_stretch(gv, hv, pairs=_surviving_edge_pairs(g, gv))


def _use_csr(g: GraphLike, h: GraphLike, backend: Optional[str]) -> bool:
    """CSR applies only to concrete Graphs (views stay on the dict path).

    The backend is resolved *before* the input-type check so a typo'd
    backend name is reported even for view inputs, not silently
    swallowed (same rule as the greedy family).
    """
    use = resolve_backend(backend) == "csr"
    return use and isinstance(g, Graph) and isinstance(h, Graph)


def _edge_pairs(g: GraphLike) -> Iterable[Tuple[Node, Node]]:
    """Edge endpoints of a graph or view (views filter faulted edges)."""
    if isinstance(g, Graph):
        return list(g.edges())
    pairs = []
    seen = set()
    for u in g.nodes():
        for v in g.neighbors(u):
            if (v, u) not in seen:
                seen.add((u, v))
                pairs.append((u, v))
    return pairs


def _surviving_edge_pairs(g: Graph, view) -> Iterable[Tuple[Node, Node]]:
    """Edges of ``g`` that survive in ``view``."""
    return [
        (u, v) for u, v in g.edges() if view.has_node(u) and view.has_edge(u, v)
    ]
