"""Fault-tolerant spanner verification.

``verify_ft_spanner`` decides (or samples) whether H is an f-FT
t-spanner of G.  For each fault set F it checks the Lemma 3 condition:
for every surviving edge {u, v} of G, ``d_{H\\F}(u, v) <= t * w(u, v)``
whenever ``d_{G\\F}(u, v) = w(u, v)``.  That per-fault-set check is
equivalent to the full definition but needs one Dijkstra per edge rather
than all-pairs distances.

Fault-set enumeration is exhaustive when ``C(n, f)`` (or ``C(m, f)``) is
within ``exhaustive_budget``; beyond the budget the caller must choose a
fallback explicitly (:class:`SweepBudgetExceeded` otherwise): pass
``samples=`` for a randomized adversary that draws fault sets biased
toward likely violations --

* uniform random sets (baseline),
* sets concentrated in the neighborhood of a random edge's endpoints
  (local separators are how spanner paths actually die),
* sets built by the LBC path-removal process itself (the strongest
  structured attack available in the library)

-- or ``mode="witness"`` for the polynomial certificate route.

Witness mode
------------
``mode="witness"`` replaces fault-set enumeration with per-pair
disjoint-path certificates (Menger's theorem): for each edge {u, v} of
G, f+1 pairwise disjoint u-v paths in H -- internally vertex-disjoint
under the vertex model, edge-disjoint under the edge model -- each of
weighted length at most ``t * w(u, v)``, certify that *no* fault set of
size <= f can break the pair: at most f of the paths can be hit, and a
surviving one bounds ``d_{H\\F}(u, v)``.  The certificates come from
the Dinic engine (:mod:`repro.flow.dinitz`) run on the ellipse-
restricted spanner, polynomial per pair with no ``C(n, f)`` term
anywhere.  An H-edge {u, v} within the length bound is a complete
witness by itself: fault sets that break it also break the pair's
relevance in G.

Length-bounded Menger is not exact (a pair can survive every fault set
without owning f+1 disjoint *short* paths), so a pair with no witness
falls back to the exact per-pair fault sweep -- exhaustive within
``exhaustive_budget``, else adversarially sampled.  The verdict
therefore always agrees with ``mode="sweep"``; witness mode is the
same decision computed with polynomial effort on every pair the flow
engine can certify.

Execution backends
------------------
The sweep is the library's most repetitive workload -- one distance
probe per surviving edge per fault set, ``O(|F-sets| * m)`` probes in
total -- so it runs on either backend (``backend=`` keyword, default
resolved from ``REPRO_BACKEND``):

* ``"csr"`` -- :class:`_CSRSweep` snapshots G and H into
  :class:`~repro.graph.csr.CSRGraph` form *once per verification call*
  (sharing one :class:`~repro.graph.index.NodeIndexer` so node indices
  agree), and reuses one workspace plus generation-stamped
  :class:`~repro.graph.csr.FaultMask` buffers across every fault set:
  moving to the next fault set is an O(|F|) mask re-stamp instead of
  re-materializing ``G \\ F`` / ``H \\ F`` views.  Unit-weighted inputs
  probe with hop-bounded CSR BFS, weighted inputs with truncated CSR
  Dijkstra.
* ``"dict"`` -- the reference path over lazy fault views, one fresh
  view pair per fault set.

Both backends check the same fault sets in the same order against the
same edges, so they return identical reports (including the
counterexample, when one exists).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.spanner import resolve_backend
from repro.flow.dinitz import DisjointPathNetwork, FlowWorkspace
from repro.graph.csr import FaultMask
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.traversal import (
    BFSWorkspace,
    DijkstraWorkspace,
    bounded_bfs_path,
    csr_bfs_distances,
    csr_bounded_bfs_path,
    csr_dijkstra,
    csr_weighted_distance,
    dijkstra,
)
from repro.graph.views import EdgeFaultView, VertexFaultView
from repro.lbc.approx import lbc_edge, lbc_vertex
from repro.graph.snapshot import (
    DualCSRSnapshot,
    resolve_search,
    validate_search,
    weighted_pair_engine,
)

INFINITY = math.inf

#: The verification modes ``verify_ft_spanner(mode=...)`` accepts, with
#: their cost/soundness contracts -- the capability surface the CLI
#: lists next to the algorithm registry.
VERIFY_MODES = {
    "sweep": "enumerate fault sets: exhaustive within exhaustive_budget "
             "(a proof), else adversarial sampling via samples= "
             "(evidence); cost grows as C(n, f)",
    "witness": "per-pair (f+1)-disjoint-short-path certificates from "
               "the Dinic max-flow engine (polynomial in n, m; no "
               "C(n, f) term); pairs without a witness fall back to "
               "the exact per-pair sweep -- verdict identical to "
               "mode='sweep'",
}


class SweepBudgetExceeded(ValueError):
    """The fault-set space exceeds the sweep budget and no fallback was
    requested.

    Raised by :func:`verify_ft_spanner` in ``mode="sweep"`` when the
    number of fault sets is larger than ``exhaustive_budget`` and the
    caller passed no ``samples=``: silently downgrading a proof to
    sampled evidence buries the distinction, so the caller must pick
    the fallback -- ``samples=`` for the adversarial sampler,
    ``mode="witness"`` for polynomial certificates, or a bigger
    ``exhaustive_budget``.
    """

    def __init__(
        self,
        total: int,
        budget: int,
        *,
        fault_sets_checked: int = 0,
        pairs_checked: int = 0,
        pairs_witnessed: int = 0,
    ) -> None:
        super().__init__(
            f"{total} fault sets exceed exhaustive_budget={budget} "
            f"(progress so far: {fault_sets_checked} fault set(s), "
            f"{pairs_checked} pair(s) checked, {pairs_witnessed} "
            f"witnessed); pass samples= to sample adversarially, "
            f"mode='witness' for disjoint-path certificates, or raise "
            f"the budget"
        )
        self.total = total
        self.budget = budget
        #: Partial progress at the moment the budget tripped.  Sweep
        #: mode fails fast before enumerating (all zeros); callers that
        #: interleave their own checking can re-raise with their counts.
        self.fault_sets_checked = fault_sets_checked
        self.pairs_checked = pairs_checked
        self.pairs_witnessed = pairs_witnessed


@dataclass(frozen=True)
class Counterexample:
    """A witness that H is *not* an f-FT t-spanner of G."""

    faults: FrozenSet
    pair: Tuple[Node, Node]
    graph_distance: float
    spanner_distance: float

    def __str__(self) -> str:
        u, v = self.pair
        return (
            f"pair ({u!r}, {v!r}) under faults {sorted(self.faults, key=repr)}: "
            f"d_G\\F = {self.graph_distance}, d_H\\F = {self.spanner_distance}"
        )


@dataclass
class VerificationReport:
    """Outcome of a fault-tolerant spanner verification.

    ``ok`` is the verdict over everything that was checked;
    ``exhaustive`` records whether the verdict is a proof -- the fault
    sets fully enumerated (sweep mode), or every pair either
    certificate-witnessed or exhaustively fallback-swept (witness mode)
    -- as opposed to sampled evidence.

    ``mode`` echoes the verification mode; in witness mode
    ``pairs_checked`` counts the pairs examined, ``pairs_witnessed``
    how many of them were settled by a disjoint-path certificate (the
    rest went through the per-pair fallback sweep, whose fault sets are
    what ``fault_sets_checked`` counts).
    """

    ok: bool
    exhaustive: bool
    fault_sets_checked: int
    counterexample: Optional[Counterexample] = None
    mode: str = "sweep"
    pairs_checked: int = 0
    pairs_witnessed: int = 0

    def __bool__(self) -> bool:
        return self.ok


def is_spanner(
    g: Graph,
    h: Graph,
    t: float,
    backend: Optional[str] = None,
    search: Optional[str] = None,
) -> bool:
    """Fault-free check: is H a t-spanner of G?

    Uses the Lemma 3 edge-sufficiency: it is enough that every edge of G
    has ``d_H(u, v) <= t * w(u, v)``.  ``search`` picks the CSR weighted
    engine (``'auto'``/``'heap'``/``'bucket'``/``'bidir'``; identical
    verdict on every legal engine).
    """
    unit = g.is_unit_weighted()
    if resolve_backend(backend) == "csr":
        return _CSRSweep(g, h, t, "vertex", unit, search=search).check(
            None
        ) is None
    resolve_search(search)  # validate the name even on the dict path
    return _check_fault_set(g, h, t, None, "vertex", unit) is None


def verify_ft_spanner(
    g: Graph,
    h: Graph,
    t: float,
    f: int,
    fault_model: str = "vertex",
    exhaustive_budget: int = 50_000,
    samples: Optional[int] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
    snapshot: Optional[DualCSRSnapshot] = None,
    search: Optional[str] = None,
    mode: str = "sweep",
    witness_pairs: Optional[int] = None,
) -> VerificationReport:
    """Verify that H is an f-fault-tolerant t-spanner of G.

    ``mode="sweep"`` (default) enumerates fault sets: exhaustive when
    the number of fault sets of size up to ``f`` is at most
    ``exhaustive_budget`` (subsets of smaller size are covered
    automatically: removing fewer faults only shrinks distances in both
    G and H... but not monotonically for the *ratio*, so smaller sizes
    are enumerated too when exhaustive).  Beyond the budget, ``samples``
    fault sets are drawn adversarially when ``samples=`` was given;
    with no ``samples=`` the call raises :class:`SweepBudgetExceeded`
    instead of silently downgrading the proof to sampled evidence.

    ``mode="witness"`` checks the same property via per-pair
    (f+1)-disjoint-short-path certificates from the Dinic max-flow
    engine -- polynomial in n and m, no ``C(n, f)`` enumeration; pairs
    the flow engine cannot certify fall back to the exact per-pair
    sweep (see the module docstring).  ``witness_pairs=N`` spot-checks
    ``N`` sampled pairs instead of every edge of G (the report is then
    non-exhaustive).

    ``backend`` selects the sweep engine (see the module docstring); the
    report is identical either way.  On the CSR backend, ``snapshot``
    may supply an already-frozen :class:`DualCSRSnapshot` of (G, H) --
    e.g. from a :class:`repro.session.SpannerSession` -- so the sweep
    re-stamps it instead of freezing its own, and ``search`` picks the
    weighted probe engine (``'auto'`` resolves from the snapshots'
    weight profiles; every legal engine yields the identical report).
    """
    if fault_model not in ("vertex", "edge"):
        raise ValueError(f"unknown fault model {fault_model!r}")
    if f < 0:
        raise ValueError(f"need f >= 0, got {f}")
    if mode not in VERIFY_MODES:
        raise ValueError(
            f"unknown verification mode {mode!r}; "
            f"expected one of {tuple(VERIFY_MODES)}"
        )
    if witness_pairs is not None and mode != "witness":
        raise ValueError("witness_pairs= requires mode='witness'")
    universe = _fault_universe(g, fault_model)
    unit = g.is_unit_weighted()
    backend_name = resolve_backend(backend)
    if backend_name != "csr" and snapshot is not None:
        raise ValueError("snapshot= requires the csr backend")
    total = sum(_comb(len(universe), size) for size in range(f + 1))
    if mode == "witness":
        return _verify_witness(
            g, h, t, f, fault_model, unit, universe, total,
            exhaustive_budget, samples, seed, backend_name, snapshot,
            search, witness_pairs,
        )
    if backend_name == "csr":
        check = _CSRSweep(
            g, h, t, fault_model, unit, snapshot=snapshot, search=search
        ).check
    else:
        resolve_search(search)  # validate the name even on the dict path
        def check(faults):
            return _check_fault_set(g, h, t, faults, fault_model, unit)
    checked = 0
    if total <= exhaustive_budget:
        for faults in _all_fault_sets(universe, f):
            checked += 1
            bad = check(faults)
            if bad is not None:
                return VerificationReport(
                    ok=False,
                    exhaustive=True,
                    fault_sets_checked=checked,
                    counterexample=bad,
                )
        return VerificationReport(
            ok=True, exhaustive=True, fault_sets_checked=checked
        )
    if samples is None:
        raise SweepBudgetExceeded(
            total, exhaustive_budget, fault_sets_checked=checked
        )
    rng = random.Random(seed)
    for faults in _adversarial_fault_sets(
        g, h, t, f, fault_model, rng, samples
    ):
        checked += 1
        bad = check(faults)
        if bad is not None:
            return VerificationReport(
                ok=False,
                exhaustive=False,
                fault_sets_checked=checked,
                counterexample=bad,
            )
    return VerificationReport(
        ok=True, exhaustive=False, fault_sets_checked=checked
    )


# --------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------- #


def _fault_universe(g: Graph, fault_model: str) -> List:
    if fault_model == "vertex":
        return sorted(g.nodes(), key=repr)
    return sorted(g.edges(), key=repr)


def _comb(n: int, r: int) -> int:
    if r > n:
        return 0
    return math.comb(n, r)


def _all_fault_sets(universe: List, f: int) -> Iterator[Tuple]:
    for size in range(f + 1):
        yield from itertools.combinations(universe, size)


def _check_fault_set(
    g: Graph,
    h: Graph,
    t: float,
    faults: Optional[Iterable],
    fault_model: str,
    unit: bool = False,
    edges: Optional[List[Edge]] = None,
) -> Optional[Counterexample]:
    """Check the Lemma 3 condition for one fault set; None when it holds.

    ``unit`` marks a unit-weighted input, enabling two fast paths: the
    surviving edge itself always realizes d_{G\\F}(u, v) = 1 (no Dijkstra
    needed on the G side), and the H side can use hop-bounded BFS.
    ``edges`` restricts the check to those edges of G (the witness
    mode's per-pair fallback); default is every edge.
    """
    fault_list = list(faults) if faults is not None else []
    candidates = list(g.edges()) if edges is None else edges
    if fault_model == "vertex":
        fault_set = set(fault_list)
        gv = VertexFaultView(g, fault_set) if fault_set else g
        hv = VertexFaultView(h, fault_set) if fault_set else h
        surviving = [
            (u, v)
            for u, v in candidates
            if u not in fault_set and v not in fault_set
        ]
    else:
        fault_set = {edge_key(u, v) for u, v in fault_list}
        gv = EdgeFaultView(g, fault_set) if fault_set else g
        hv = EdgeFaultView(h, fault_set) if fault_set else h
        surviving = [
            (u, v) for u, v in candidates
            if edge_key(u, v) not in fault_set
        ]
    frozen = frozenset(fault_set)
    for u, v in surviving:
        w = g.weight(u, v)
        if unit:
            # Unit weights: the surviving edge realizes the distance and
            # the spanner condition is a hop-bounded reachability query.
            if bounded_bfs_path(hv, u, v, max_hops=int(t)) is not None:
                continue
            dh = INFINITY
        else:
            # Lemma 3: only pairs realizing d_{G\F}(u, v) = w(u, v) matter.
            dg = dijkstra(gv, u, target=v, max_dist=w).get(v, INFINITY)
            if dg < w:
                continue  # a strictly shorter surviving route exists
            dh = dijkstra(hv, u, target=v, max_dist=t * w).get(v, INFINITY)
        if dh > t * w:
            dh_full = dijkstra(hv, u, target=v).get(v, INFINITY)
            return Counterexample(
                faults=frozen,
                pair=(u, v),
                graph_distance=w,
                spanner_distance=dh_full,
            )
    return None


class _CSRSweep:
    """Reusable flat-array state for one verification call.

    Built once per :func:`verify_ft_spanner` / :func:`is_spanner` call
    and then driven through every fault set: a
    :class:`~repro.graph.snapshot.DualCSRSnapshot` holds both
    graphs in one shared index space, the edge list of G is pre-resolved
    to ``(u, v, iu, iv, w, gid)`` rows, and one workspace plus the
    snapshot's three fault masks serve every subsequent probe.
    ``check(faults)`` therefore allocates nothing per fault set beyond
    the surviving-edge filter -- the mask-clear loop the dict backend's
    per-fault-set view construction is replaced by.

    Cost per fault set: O(|F|) re-stamping plus one hop-bounded BFS
    (unit weights) or up to two truncated Dijkstras (weighted) per
    surviving edge of G.

    ``search`` picks the weighted probe engine per side (resolved from
    each snapshot's weight profile under ``'auto'``): integral-weight
    inputs probe with bidirectional Dijkstra, float ones with the heap,
    and an explicit engine overrides both.  A non-``'auto'`` engine also
    replaces the unit BFS fast path, so every engine x weight cell of
    the parity matrix genuinely exercises its engine.
    """

    __slots__ = (
        "t", "fault_model", "unit", "snap", "ws", "edges",
        "search", "eng_g", "eng_h",
    )

    def __init__(
        self,
        g: Graph,
        h: Graph,
        t: float,
        fault_model: str,
        unit: bool,
        snapshot: Optional[DualCSRSnapshot] = None,
        search: Optional[str] = None,
    ) -> None:
        self.t = t
        self.fault_model = fault_model
        if snapshot is None:
            snapshot = DualCSRSnapshot(g, h)
        elif snapshot.g is not g or snapshot.h is not h:
            raise ValueError("snapshot does not freeze this (G, H) pair")
        self.snap = snapshot
        self.search = validate_search(
            search, snapshot.snap_g.profile, snapshot.snap_h.profile
        )
        self.unit = unit and self.search == "auto"
        self.eng_g = weighted_pair_engine(
            self.search, snapshot.snap_g.profile
        )
        self.eng_h = weighted_pair_engine(
            self.search, snapshot.snap_h.profile
        )
        n = len(self.snap.indexer)
        self.ws: Union[BFSWorkspace, DijkstraWorkspace] = (
            BFSWorkspace(n) if self.unit else DijkstraWorkspace(n)
        )
        index = self.snap.indexer.index
        self.edges = [
            (u, v, index(u), index(v), g.weight(u, v),
             self.snap.csr_g.edge_id(index(u), index(v)))
            for u, v in g.edges()
        ]

    def _stamp(self, fault_list: List, candidates: List) -> Tuple[
        FrozenSet, Optional[FaultMask], Optional[FaultMask],
        Optional[FaultMask], List,
    ]:
        """Stamp one fault set into the masks; list the surviving edges."""
        if self.fault_model == "vertex":
            frozen = frozenset(fault_list)
            vmask = self.snap.set_vertex_faults(fault_list)
            vstamp, vgen = vmask.stamp, vmask.gen
            surviving = [
                row for row in candidates
                if vstamp[row[2]] != vgen and vstamp[row[3]] != vgen
            ]
            return frozen, vmask, None, None, surviving
        frozen = frozenset(edge_key(u, v) for u, v in fault_list)
        emask_g, emask_h = self.snap.set_edge_faults(fault_list)
        gstamp, ggen = emask_g.stamp, emask_g.gen
        surviving = [row for row in candidates if gstamp[row[5]] != ggen]
        return frozen, None, emask_g, emask_h, surviving

    def check(
        self,
        faults: Optional[Iterable],
        edges: Optional[List] = None,
    ) -> Optional[Counterexample]:
        """CSR twin of :func:`_check_fault_set`; None when Lemma 3 holds.

        ``edges`` restricts the check to those pre-resolved rows (the
        witness mode's per-pair fallback); default is every edge of G.
        """
        fault_list = list(faults) if faults is not None else []
        candidates = self.edges if edges is None else edges
        frozen, vmask, emask_g, emask_h, surviving = self._stamp(
            fault_list, candidates
        )
        t = self.t
        csr_g, csr_h, ws = self.snap.csr_g, self.snap.csr_h, self.ws
        if self.unit:
            max_hops = int(t)
            for u, v, iu, iv, w, _ in surviving:
                if csr_bounded_bfs_path(
                    csr_h, iu, iv, max_hops, ws,
                    vertex_mask=vmask, edge_mask=emask_h,
                ) is not None:
                    continue
                # The dict backend reports the *weighted* H-distance in
                # the counterexample even on the unit fast path (H may
                # carry non-unit weights when verifying arbitrary
                # files).  This path is terminal, so a one-off Dijkstra
                # workspace is fine.
                dh_full = csr_weighted_distance(
                    csr_h, iu, iv,
                    workspace=DijkstraWorkspace(csr_h.num_nodes),
                    vertex_mask=vmask, edge_mask=emask_h,
                )
                return Counterexample(
                    faults=frozen, pair=(u, v),
                    graph_distance=w, spanner_distance=dh_full,
                )
        else:
            eng_g, eng_h = self.eng_g, self.eng_h
            mw_g = self.snap.snap_g.max_weight
            mw_h = self.snap.snap_h.max_weight
            for u, v, iu, iv, w, _ in surviving:
                dg = csr_weighted_distance(
                    csr_g, iu, iv, max_dist=w, workspace=ws,
                    vertex_mask=vmask, edge_mask=emask_g,
                    search=eng_g, max_weight=mw_g,
                )
                if dg < w:
                    continue  # a strictly shorter surviving route exists
                dh = csr_weighted_distance(
                    csr_h, iu, iv, max_dist=t * w, workspace=ws,
                    vertex_mask=vmask, edge_mask=emask_h,
                    search=eng_h, max_weight=mw_h,
                )
                if dh > t * w:
                    dh_full = csr_weighted_distance(
                        csr_h, iu, iv, workspace=ws,
                        vertex_mask=vmask, edge_mask=emask_h,
                        search=eng_h, max_weight=mw_h,
                    )
                    return Counterexample(
                        faults=frozen, pair=(u, v),
                        graph_distance=w, spanner_distance=dh_full,
                    )
        return None


def _verify_witness(
    g: Graph,
    h: Graph,
    t: float,
    f: int,
    fault_model: str,
    unit: bool,
    universe: List,
    total: int,
    exhaustive_budget: int,
    samples: Optional[int],
    seed: Optional[int],
    backend_name: str,
    snapshot: Optional[DualCSRSnapshot],
    search: Optional[str],
    witness_pairs: Optional[int],
) -> VerificationReport:
    """Witness-mode verification: disjoint-path certificates per pair.

    For each candidate edge {u, v} of G (every edge, or a
    ``witness_pairs``-sized sample), in order of increasing cost:

    1. *Trivial witness* -- {u, v} in H within the length bound.  Any
       fault set that removes it (the endpoints under the vertex model,
       the edge itself under the edge model) also removes the pair's
       G-edge, so nothing is required of those sets; every other set
       leaves the H-edge as the bounded path.
    2. *Flow witness* -- f+1 pairwise disjoint u-v paths in H, each of
       weighted length <= t*w, from the Dinic engine run on the
       ellipse restriction of H (edges on *some* length-<= t*w route;
       a cheap overapproximation that keeps the decomposed paths
       short).  At most f of the paths can be faulted, and under the
       vertex model the endpoints -- the only shared vertices -- cannot
       be, so a surviving path bounds d_{H\\F}(u, v) for every legal F.
    3. *Fallback* -- length-bounded Menger is not exact, so a missing
       witness is not a violation: the pair is decided by the exact
       per-pair fault sweep (exhaustive within ``exhaustive_budget``,
       else ``samples`` adversarial draws -- default 300 here, where
       sampling is a per-pair last resort rather than the whole
       verification).

    The flow engine and distance probes always run on the CSR substrate
    (that is the point of the subsystem); ``backend_name`` selects the
    engine for the fallback sweep, and the dict backend's report stays
    bit-identical to the CSR one because both fall back on exactly the
    same pairs against the same fault sets.
    """
    if backend_name == "csr":
        sweep = _CSRSweep(
            g, h, t, fault_model, unit, snapshot=snapshot, search=search
        )
        snap = sweep.snap
        rows: List = sweep.edges

        def check_rows(faults, subset):
            return sweep.check(faults, edges=subset)
    else:
        resolve_search(search)  # validate the name even on the dict path
        snap = DualCSRSnapshot(g, h)
        index = snap.indexer.index
        rows = [
            (u, v, index(u), index(v), g.weight(u, v))
            for u, v in g.edges()
        ]

        def check_rows(faults, subset):
            return _check_fault_set(
                g, h, t, faults, fault_model, unit,
                edges=[(r[0], r[1]) for r in subset],
            )
    rng = random.Random(seed)
    full_coverage = True
    if witness_pairs is not None and witness_pairs < len(rows):
        rows = rng.sample(rows, witness_pairs)
        full_coverage = False
    csr_h = snap.csr_h
    indexer = snap.indexer
    unit_h = h.is_unit_weighted()
    network = DisjointPathNetwork(csr_h, fault_model)
    flow_ws = FlowWorkspace(network.net.num_nodes)
    dist_ws: Union[BFSWorkspace, DijkstraWorkspace] = (
        BFSWorkspace(csr_h.num_nodes) if unit_h
        else DijkstraWorkspace(csr_h.num_nodes)
    )
    dist_cache: dict = {}

    def distances(i: int) -> dict:
        d = dist_cache.get(i)
        if d is None:
            if unit_h:
                d = csr_bfs_distances(csr_h, i, workspace=dist_ws)
            else:
                d = csr_dijkstra(csr_h, i, workspace=dist_ws)
            dist_cache[i] = d
        return d

    h_eu, h_ev, h_w = csr_h.edge_u, csr_h.edge_v, csr_h.weights
    m_h = csr_h.num_edges
    need = f + 1
    samples_eff = 300 if samples is None else samples
    checked = 0
    witnessed = 0
    sampled_fallback = False
    for row in rows:
        u, v, iu, iv, w = row[0], row[1], row[2], row[3], row[4]
        bound = t * w
        if h.has_edge(u, v) and h.weight(u, v) <= bound:
            witnessed += 1
            continue
        du = distances(iu)
        dv = distances(iv)
        certified = False
        if du.get(iv, INFINITY) <= bound:
            banned = [
                eid for eid in range(m_h)
                if min(
                    du.get(h_eu[eid], INFINITY) + h_w[eid]
                    + dv.get(h_ev[eid], INFINITY),
                    du.get(h_ev[eid], INFINITY) + h_w[eid]
                    + dv.get(h_eu[eid], INFINITY),
                ) > bound
            ]
            paths = network.disjoint_paths(
                iu, iv, workspace=flow_ws, banned_edges=banned
            )
            short = 0
            for path in paths:
                length = 0.0
                for a, b in zip(path, path[1:]):
                    length += h.weight(indexer.node(a), indexer.node(b))
                if length <= bound:
                    short += 1
                    if short >= need:
                        break
            certified = short >= need
        if certified:
            witnessed += 1
            continue
        if total <= exhaustive_budget:
            fault_iter: Iterable = _all_fault_sets(universe, f)
            exhaustive_here = True
        else:
            fault_iter = _adversarial_fault_sets(
                g, h, t, f, fault_model, rng, samples_eff
            )
            exhaustive_here = False
            sampled_fallback = True
        for faults in fault_iter:
            checked += 1
            bad = check_rows(faults, [row])
            if bad is not None:
                return VerificationReport(
                    ok=False,
                    exhaustive=exhaustive_here,
                    fault_sets_checked=checked,
                    counterexample=bad,
                    mode="witness",
                    pairs_checked=len(rows),
                    pairs_witnessed=witnessed,
                )
    return VerificationReport(
        ok=True,
        exhaustive=full_coverage and not sampled_fallback,
        fault_sets_checked=checked,
        mode="witness",
        pairs_checked=len(rows),
        pairs_witnessed=witnessed,
    )


def _adversarial_fault_sets(
    g: Graph,
    h: Graph,
    t: float,
    f: int,
    fault_model: str,
    rng: random.Random,
    samples: int,
) -> Iterator[FrozenSet]:
    """Yield ``samples`` fault sets mixing three adversarial strategies."""
    universe = _fault_universe(g, fault_model)
    if not universe or f == 0:
        yield frozenset()
        return
    edges = list(g.edges())
    produced = 0
    while produced < samples:
        strategy = produced % 3
        if strategy == 0:
            size = rng.randint(1, f)
            faults = frozenset(rng.sample(universe, min(size, len(universe))))
        elif strategy == 1:
            faults = _neighborhood_attack(g, f, fault_model, rng, edges)
        else:
            faults = _lbc_attack(g, h, t, f, fault_model, rng, edges)
        if fault_model == "vertex":
            # Never fault both endpoints of every edge trivially; any set
            # of <= f vertices is legal, so just yield.
            yield frozenset(list(faults)[:f])
        else:
            yield frozenset(list(faults)[:f])
        produced += 1


def _neighborhood_attack(
    g: Graph, f: int, fault_model: str, rng: random.Random, edges: List[Edge]
) -> FrozenSet:
    """Faults concentrated around a random edge's endpoints."""
    if not edges:
        return frozenset()
    u, v = rng.choice(edges)
    if fault_model == "vertex":
        pool = sorted(
            (set(g.neighbors(u)) | set(g.neighbors(v))) - {u, v}, key=repr
        )
        if not pool:
            return frozenset()
        return frozenset(rng.sample(pool, min(f, len(pool))))
    pool = [edge_key(u, x) for x in g.neighbors(u)] + [
        edge_key(v, x) for x in g.neighbors(v)
    ]
    pool = sorted(set(pool) - {edge_key(u, v)})
    if not pool:
        return frozenset()
    return frozenset(rng.sample(pool, min(f, len(pool))))


def _lbc_attack(
    g: Graph,
    h: Graph,
    t: float,
    f: int,
    fault_model: str,
    rng: random.Random,
    edges: List[Edge],
) -> FrozenSet:
    """Faults produced by running the LBC path-removal process on H.

    The LBC cut (capped at f elements) is the most structured separator
    the library can construct -- exactly the object the greedy defends
    against, so sampling near it probes the guarantee's boundary.
    """
    if not edges:
        return frozenset()
    u, v = rng.choice(edges)
    hops = max(int(t), 1)
    if fault_model == "vertex":
        if h.has_edge(u, v):
            return _neighborhood_attack(g, f, fault_model, rng, edges)
        result = lbc_vertex(h, u, v, hops, f)
    else:
        result = lbc_edge(h, u, v, hops, f)
    cut = sorted(result.cut, key=repr)
    if len(cut) > f:
        cut = rng.sample(cut, f)
    return frozenset(cut)
