"""Independent checks of the greedy's per-edge cut certificates.

When the modified greedy adds an edge {u, v}, the LBC run that triggered
the addition produced a fault set F_e that really does separate u and v
by more than 2k - 1 hops in the spanner-so-far.  Since the spanner only
grows, F_e remains a certificate against the *final* H minus the edge
itself... it does not (the final H contains {u, v} and possibly later
edges that restore short paths).  What the certificate *does* prove, and
what these checks verify, is:

1. F_e was a genuine length-(2k-1) cut at addition time.  We replay the
   construction to check this (``check_certificates(replay=True)``).
2. F_e has size at most (2k - 1) * f (Theorem 4's NO-side bound) and
   avoids the edge's endpoints -- the structural facts Lemma 6 needs.

Backend: dict only, deliberately.  These checks are the independent
auditor of the (CSR-produced) certificates, so they stay on the
reference path: one hop-bounded BFS per certificate over a lazy fault
view, O(|certificates| * (m' + n)) for a replay over a spanner with m'
edges.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.core.spanner import FaultModel, SpannerResult
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.traversal import bounded_bfs_path
from repro.graph.views import EdgeFaultView, VertexFaultView


def check_cut_certificate(
    h: Graph,
    u: Node,
    v: Node,
    t: int,
    cut: FrozenSet,
    fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
) -> bool:
    """Whether ``cut`` separates u, v by more than ``t`` hops in ``h``."""
    model = FaultModel.coerce(fault_model)
    if model is FaultModel.VERTEX:
        if u in cut or v in cut:
            raise ValueError("certificate may not contain a terminal")
        view = VertexFaultView(h, cut) if cut else h
    else:
        view = EdgeFaultView(h, cut) if cut else h
    return bounded_bfs_path(view, u, v, max_hops=t) is None


def check_certificates(
    g: Graph, result: SpannerResult, replay: bool = True
) -> List[str]:
    """Validate every certificate in a greedy result; return problems.

    An empty return list means all checks passed.  With ``replay=True``
    the greedy's edge additions are re-simulated in the order recorded so
    each certificate is checked against the spanner state at its own
    addition time (the sound check); with ``replay=False`` only the
    structural size/endpoint facts are checked (fast).
    """
    problems: List[str] = []
    t = result.stretch
    k = result.k
    f = result.f
    max_cut = (2 * k - 1) * f
    model = result.fault_model
    for e, cut in result.certificates.items():
        if len(cut) > max_cut:
            problems.append(
                f"certificate for {e} has size {len(cut)} > (2k-1)f = {max_cut}"
            )
        if model is FaultModel.VERTEX and (e[0] in cut or e[1] in cut):
            problems.append(f"certificate for {e} contains an endpoint")
    if not replay:
        return problems

    # Replay: rebuild H edge by edge in the construction order.  The
    # certificates dict is insertion-ordered (Python dict semantics) and
    # the greedy inserted one entry per added edge, so its key order *is*
    # the addition order.
    spanner_edges = {edge_key(u, v) for u, v in result.spanner.edges()}
    certified = set(result.certificates)
    for missing in sorted(spanner_edges - certified, key=repr):
        problems.append(f"spanner edge {missing} has no certificate")
    partial = g.spanning_skeleton()
    for key, cut in result.certificates.items():
        u, v = key
        if not check_cut_certificate(partial, u, v, t, cut, model):
            problems.append(
                f"certificate for {key} does not cut it at addition time"
            )
        partial.add_edge(u, v, weight=g.weight(u, v))
    return problems
