"""Independent checks of the greedy's per-edge cut certificates.

When the modified greedy adds an edge {u, v}, the LBC run that triggered
the addition produced a fault set F_e that really does separate u and v
by more than 2k - 1 hops in the spanner-so-far.  Since the spanner only
grows, F_e remains a certificate against the *final* H minus the edge
itself... it does not (the final H contains {u, v} and possibly later
edges that restore short paths).  What the certificate *does* prove, and
what these checks verify, is:

1. F_e was a genuine length-(2k-1) cut at addition time.  We replay the
   construction to check this (``check_certificates(replay=True)``).
2. F_e has size at most (2k - 1) * f (Theorem 4's NO-side bound) and
   avoids the edge's endpoints -- the structural facts Lemma 6 needs.

Backend: dict only, deliberately.  These checks are the independent
auditor of the (CSR-produced) certificates, so they stay on the
reference path: one hop-bounded BFS per certificate over a lazy fault
view, O(|certificates| * (m' + n)) for a replay over a spanner with m'
edges.

Disjoint-path certificates
--------------------------
Cut certificates are the NO side of fault tolerance (a fault set that
*breaks* a pair, justifying an edge addition); ``disjoint_paths`` is
the YES side: ``count`` pairwise disjoint u-v paths within a length
bound certify -- by Menger's theorem -- that no fault set smaller than
``count`` can break the pair.  Production runs on the CSR Dinic engine
(:mod:`repro.flow.dinitz`), but in keeping with this module's auditor
role every produced certificate is re-validated with
:func:`check_disjoint_paths` on the dict path before it is returned,
so a bug in the flow engine turns into a loud error here rather than a
silently wrong certificate.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.core.spanner import FaultModel, SpannerResult
from repro.flow.dinitz import DisjointPathNetwork
from repro.graph.csr import CSRGraph
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.traversal import bounded_bfs_path
from repro.graph.views import EdgeFaultView, VertexFaultView


def check_cut_certificate(
    h: Graph,
    u: Node,
    v: Node,
    t: int,
    cut: FrozenSet,
    fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
) -> bool:
    """Whether ``cut`` separates u, v by more than ``t`` hops in ``h``."""
    model = FaultModel.coerce(fault_model)
    if model is FaultModel.VERTEX:
        if u in cut or v in cut:
            raise ValueError("certificate may not contain a terminal")
        view = VertexFaultView(h, cut) if cut else h
    else:
        view = EdgeFaultView(h, cut) if cut else h
    return bounded_bfs_path(view, u, v, max_hops=t) is None


def check_certificates(
    g: Graph, result: SpannerResult, replay: bool = True
) -> List[str]:
    """Validate every certificate in a greedy result; return problems.

    An empty return list means all checks passed.  With ``replay=True``
    the greedy's edge additions are re-simulated in the order recorded so
    each certificate is checked against the spanner state at its own
    addition time (the sound check); with ``replay=False`` only the
    structural size/endpoint facts are checked (fast).
    """
    problems: List[str] = []
    t = result.stretch
    k = result.k
    f = result.f
    max_cut = (2 * k - 1) * f
    model = result.fault_model
    for e, cut in result.certificates.items():
        if len(cut) > max_cut:
            problems.append(
                f"certificate for {e} has size {len(cut)} > (2k-1)f = {max_cut}"
            )
        if model is FaultModel.VERTEX and (e[0] in cut or e[1] in cut):
            problems.append(f"certificate for {e} contains an endpoint")
    if not replay:
        return problems

    # Replay: rebuild H edge by edge in the construction order.  The
    # certificates dict is insertion-ordered (Python dict semantics) and
    # the greedy inserted one entry per added edge, so its key order *is*
    # the addition order.
    spanner_edges = {edge_key(u, v) for u, v in result.spanner.edges()}
    certified = set(result.certificates)
    for missing in sorted(spanner_edges - certified, key=repr):
        problems.append(f"spanner edge {missing} has no certificate")
    partial = g.spanning_skeleton()
    for key, cut in result.certificates.items():
        u, v = key
        if model is FaultModel.VERTEX and (u in cut or v in cut):
            # Already reported as a structural violation above; replaying
            # it would make check_cut_certificate raise rather than let
            # the remaining certificates be audited.
            partial.add_edge(u, v, weight=g.weight(u, v))
            continue
        if not check_cut_certificate(partial, u, v, t, cut, model):
            problems.append(
                f"certificate for {key} does not cut it at addition time"
            )
        partial.add_edge(u, v, weight=g.weight(u, v))
    return problems


def check_disjoint_paths(
    h: Graph,
    u: Node,
    v: Node,
    paths: List[List[Node]],
    count: Optional[int] = None,
    max_length: Optional[float] = None,
    fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
) -> List[str]:
    """Audit a disjoint-path certificate; return the list of problems.

    An empty return means ``paths`` really certify what they claim:
    every path runs u -> v over edges of ``h`` within ``max_length``
    (weighted), the paths are pairwise disjoint under ``fault_model``
    (internally vertex-disjoint / edge-disjoint), and there are at
    least ``count`` of them.  Pure dict-path checks -- no flow engine
    involved, so this audits :func:`disjoint_paths` independently.
    """
    model = FaultModel.coerce(fault_model)
    problems: List[str] = []
    if count is not None and len(paths) < count:
        problems.append(f"{len(paths)} paths certify less than count={count}")
    seen_interior: set = set()
    seen_edges: set = set()
    for idx, path in enumerate(paths):
        label = f"path {idx}"
        if len(path) < 2 or path[0] != u or path[-1] != v:
            problems.append(f"{label} does not run {u!r} -> {v!r}: {path}")
            continue
        length = 0.0
        broken = False
        for a, b in zip(path, path[1:]):
            if not h.has_edge(a, b):
                problems.append(f"{label} uses a non-edge ({a!r}, {b!r})")
                broken = True
                break
            length += h.weight(a, b)
        if broken:
            continue
        if max_length is not None and length > max_length:
            problems.append(
                f"{label} has length {length} > bound {max_length}"
            )
        interior = path[1:-1]
        if len(set(interior)) != len(interior) or u in interior \
                or v in interior:
            problems.append(f"{label} is not simple: {path}")
        if model is FaultModel.VERTEX:
            clashes = seen_interior.intersection(interior)
            if clashes:
                problems.append(
                    f"{label} shares interior vertices "
                    f"{sorted(clashes, key=repr)} with an earlier path"
                )
            seen_interior.update(interior)
        else:
            keys = {edge_key(a, b) for a, b in zip(path, path[1:])}
            clashes = seen_edges.intersection(keys)
            if clashes:
                problems.append(
                    f"{label} shares edges {sorted(clashes)} "
                    f"with an earlier path"
                )
            seen_edges.update(keys)
    return problems


def disjoint_paths(
    h: Graph,
    u: Node,
    v: Node,
    count: int,
    max_length: Optional[float] = None,
    fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
) -> Optional[List[List[Node]]]:
    """Produce a ``count``-disjoint-path certificate for (u, v) in ``h``.

    Returns ``count`` pairwise disjoint u-v paths -- internally
    vertex-disjoint under the vertex model, edge-disjoint under the
    edge model -- each of weighted length at most ``max_length`` (no
    bound when ``None``), or ``None`` when the flow engine cannot
    produce one.  By Menger's theorem such a certificate proves the
    pair survives every fault set of size < ``count`` within the
    length bound.

    Sound but not complete under a length bound: length-bounded
    disjoint paths are found by max-flow followed by a length filter,
    so ``None`` does not prove absence (length-bounded Menger has a
    gap); callers needing an exact answer fall back to enumeration,
    as ``verify_ft_spanner(mode="witness")`` does.

    Every returned certificate has been re-audited by
    :func:`check_disjoint_paths` on the dict path; a flow-engine bug
    raises ``AssertionError`` here instead of leaking a bad
    certificate.
    """
    if count < 1:
        raise ValueError(f"need count >= 1, got {count}")
    if u == v:
        raise ValueError("certificate endpoints must be distinct")
    if not (h.has_node(u) and h.has_node(v)):
        raise KeyError(f"{u!r} or {v!r} not in the graph")
    model = FaultModel.coerce(fault_model)
    csr = CSRGraph.from_graph(h)
    index = csr.indexer.index
    network = DisjointPathNetwork(csr, model.value)
    raw = network.disjoint_paths(index(u), index(v))
    node_of = csr.indexer.node
    candidates = []
    for path_idx in raw:
        path = [node_of(i) for i in path_idx]
        length = sum(h.weight(a, b) for a, b in zip(path, path[1:]))
        candidates.append((length, path))
    candidates.sort(key=lambda item: (item[0], [repr(x) for x in item[1]]))
    if max_length is not None:
        candidates = [c for c in candidates if c[0] <= max_length]
    if len(candidates) < count:
        return None
    chosen = [path for _, path in candidates[:count]]
    problems = check_disjoint_paths(
        h, u, v, chosen, count=count, max_length=max_length,
        fault_model=model,
    )
    assert not problems, f"flow engine produced a bad certificate: {problems}"
    return chosen
