"""Shared flat-array state for CSR verification-style sweeps.

Both the spanner check (:mod:`repro.verification.spanner_check`) and the
stretch measurement (:mod:`repro.verification.stretch`) follow the same
pattern on the CSR backend: snapshot G and H once over a *shared*
:class:`~repro.graph.index.NodeIndexer` (so a vertex mask stamped with
G-side indices is directly valid against H), then drive many fault sets
through reusable generation-stamped masks instead of materializing
``G \\ F`` / ``H \\ F`` views.  :class:`DualCSRSnapshot` is that shared
base; the sweeps layer their own probe loops on top of it.

Cost model: construction is two O(n + m) snapshots; moving to the next
fault set is an O(|F|) mask re-stamp.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.graph.csr import CSRGraph, FaultMask
from repro.graph.graph import Edge, Graph, Node
from repro.graph.index import NodeIndexer


class DualCSRSnapshot:
    """G and H in CSR form over one shared node-index space, plus masks.

    Owns one vertex mask (valid against both graphs -- the index spaces
    agree by construction) and one edge mask per graph (edge-id spaces
    are per-graph).  The ``set_*`` methods re-stamp in O(|F|).
    """

    __slots__ = (
        "g", "h", "indexer", "csr_g", "csr_h",
        "vmask", "emask_g", "emask_h",
    )

    def __init__(self, g: Graph, h: Graph) -> None:
        self.g = g
        self.h = h
        self.indexer = NodeIndexer.from_graph(g)
        self.csr_g = CSRGraph.from_graph(g, indexer=self.indexer)
        self.csr_h = CSRGraph.from_graph(h, indexer=self.indexer)
        self.vmask = FaultMask(len(self.indexer))
        self.emask_g = FaultMask(self.csr_g.num_edges)
        self.emask_h = FaultMask(self.csr_h.num_edges)

    def set_vertex_faults(self, faults: Iterable[Node]) -> FaultMask:
        """Re-stamp the shared vertex mask with a new fault set.

        Unknown nodes are silently ignored, matching the lazy views
        (filtering something that is not there is a no-op).
        """
        get = self.indexer.get
        mask = self.vmask
        mask.clear()
        mask.add_all(i for i in (get(x) for x in faults) if i is not None)
        return mask

    def set_edge_faults(
        self, faults: Iterable[Edge]
    ) -> Tuple[FaultMask, FaultMask]:
        """Re-stamp both per-graph edge-id masks with a new fault set.

        Edges absent from a graph are ignored for that graph's mask,
        matching the lazy views.  Returns ``(mask_g, mask_h)``.
        """
        get = self.indexer.get
        emask_g, emask_h = self.emask_g, self.emask_h
        emask_g.clear()
        emask_h.clear()
        for u, v in faults:
            iu, iv = get(u), get(v)
            if iu is None or iv is None:
                continue
            if self.csr_g.has_edge(iu, iv):
                emask_g.add(self.csr_g.edge_id(iu, iv))
            if self.csr_h.has_edge(iu, iv):
                emask_h.add(self.csr_h.edge_id(iu, iv))
        return emask_g, emask_h
