"""`SpannerSession`: one graph, one frozen substrate, many consumers.

The library's workloads compose: build a spanner, verify its guarantee,
stand up a distance oracle, check routing, sample availability.  Used as
free functions, each step re-freezes the same graphs into CSR form --
``verify_ft_spanner`` builds a :class:`~repro.graph.snapshot.DualCSRSnapshot`,
the oracle another :class:`~repro.graph.snapshot.CSRSnapshot`, the
availability sampler yet another dual -- five O(n + m) freezes for a
workflow that only ever looks at two graphs.

:class:`SpannerSession` is the facade that makes snapshot sharing the
default.  Construct it once from a graph with the session-wide
configuration (``k``, ``f``, fault model, execution backend, seed);
``build()`` dispatches through the :mod:`algorithm registry
<repro.registry>`; every subsequent consumer -- :meth:`verify`,
:meth:`oracle`, :meth:`router`, :meth:`availability`,
:meth:`degradation` -- shares **one frozen snapshot per graph** over one
shared node-index space:

* the input graph G is frozen at most once per session, and
* each built (or adopted) spanner H is frozen at most once,

no matter how many verifications, oracles, routers, or availability
sweeps the session serves (``tests/test_session.py`` asserts this with
the substrate's :func:`~repro.graph.snapshot.csr_freeze_count`).  On
the dict backend there is nothing to freeze and the facade simply
forwards; answers are bit-identical either way, exactly as for the free
functions.

This is the same "build one reusable structure, then answer many
queries against it" discipline the derandomization literature turned
into reusable primitives (network decompositions, ruling sets); here the
primitive is the frozen CSR substrate and the queries are fault
scenarios.

Examples
--------
>>> from repro.graph import generators
>>> from repro.session import SpannerSession
>>> g = generators.gnp_random_graph(60, 0.2, seed=0)
>>> session = SpannerSession(g, k=2, f=1)
>>> result = session.build("greedy")
>>> report = session.verify(samples=50)      # shares the session freeze
>>> oracle = session.oracle()                # ... so does the oracle
>>> bool(report) and oracle.size == result.num_edges
True
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.applications.availability import (
    AvailabilityReport,
    availability_analysis,
    degradation_profile,
)
from repro.applications.oracle import FaultTolerantDistanceOracle
from repro.applications.routing import SpannerRouter
from repro.core.spanner import FaultModel, SpannerResult, resolve_backend
from repro.dynamic.log import EdgeDelete, EdgeInsert, classify_op, coerce_op
from repro.dynamic.snapshot import CompactionPolicy, DynamicSnapshot
from repro.graph.graph import Graph
from repro.graph.index import NodeIndexer
from repro.graph.snapshot import CSRSnapshot, DualCSRSnapshot, resolve_search
from repro.registry import build_spanner, get_algorithm
from repro.verification.spanner_check import (
    VerificationReport,
    verify_ft_spanner,
)

__all__ = ["SpannerSession"]


class SpannerSession:
    """A build -> verify -> query workflow over one frozen substrate.

    Parameters
    ----------
    g:
        The input graph.  Never mutated by the session.
    k:
        Session stretch parameter (guarantee ``2k - 1``).
    f:
        Session fault budget, used by :meth:`build`, :meth:`verify`, and
        the applications.  Building a non-fault-tolerant algorithm in a
        session with ``f > 0`` raises
        :class:`~repro.registry.UnsupportedOption`.
    fault_model:
        ``'vertex'`` (default) or ``'edge'``.
    backend:
        Execution backend for every construction, sweep, and query the
        session runs.  Resolved **once**, eagerly, with the standard
        precedence: this keyword > ``REPRO_BACKEND`` > the default.
    seed:
        Session seed.  Forwarded to seedable constructions, and to the
        sampled verification / availability sweeps.  Deterministic
        constructions simply never see it (it is session-wide
        configuration, not a per-call option -- pass ``seed=`` to
        :func:`~repro.registry.build_spanner` directly if you want the
        strict per-call validation).
    search:
        The weighted search engine for every CSR sweep and query the
        session serves: one of
        :data:`~repro.graph.snapshot.SEARCH_MODES`.  The default
        ``'auto'`` resolves per snapshot from its freeze-time weight
        profile (hop-BFS on unit graphs, Dial bucket queue /
        bidirectional Dijkstra on integral weights, binary heap
        otherwise); answers are bit-identical on every legal engine.
        ``'batch'`` routes batched queries (oracle pair batches,
        full routing tables, availability scenario probes) through the
        multi-source kernels -- many roots per frontier pass -- and
        resolves like ``'auto'`` for lone queries; it is integral-only,
        like ``'bucket'``.  ``None`` consults the ``REPRO_SEARCH``
        environment variable before falling back to ``'auto'``.
        Validated eagerly by name; the integral-only engines raise
        :class:`~repro.graph.snapshot.UnsupportedSearch` when a
        float-weighted snapshot is first probed.  The dict backend
        ignores the engine (it is CSR execution policy).
    serving:
        Optional session-wide default
        :class:`~repro.serving.ServingConfig` for :meth:`serve`
        (a per-call ``config=`` overrides it).

    Notes
    -----
    The session config travels to the construction through the
    registry, so capability violations (``f > 0`` with a
    non-fault-tolerant algorithm, an edge-model session building a
    vertex-only construction) raise typed errors instead of being
    dropped.
    """

    def __init__(
        self,
        g: Graph,
        *,
        k: int = 2,
        f: int = 1,
        fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
        backend: Optional[str] = None,
        seed: Optional[int] = None,
        search: Optional[str] = None,
        serving=None,
    ) -> None:
        if k < 1:
            raise ValueError(f"need k >= 1, got {k}")
        if f < 0:
            raise ValueError(f"need f >= 0, got {f}")
        self.g = g
        self.k = k
        self.f = f
        self.fault_model = FaultModel.coerce(fault_model)
        self.backend = resolve_backend(backend)
        self.seed = seed
        self.search = resolve_search(search)
        self.serving = serving
        self._result: Optional[SpannerResult] = None
        self._indexer: Optional[NodeIndexer] = None
        self._snap_g: Optional[CSRSnapshot] = None
        self._snap_h: Optional[CSRSnapshot] = None
        self._dual: Optional[DualCSRSnapshot] = None
        self._serve_snap: Optional[CSRSnapshot] = None
        # Streaming-update state: the dynamic (overlay) views of G and H
        # once apply_updates() has run, and every server handed out by
        # serve() (their snapshots are immutable, so updates are refused
        # while one is still open -- see SnapshotStale).
        self._dyn_g: Optional[DynamicSnapshot] = None
        self._dyn_h: Optional[DynamicSnapshot] = None
        self._servers: List = []

    # ------------------------------------------------------------- #
    # Construction
    # ------------------------------------------------------------- #

    @property
    def stretch(self) -> int:
        """The session's stretch guarantee, ``2k - 1``."""
        return 2 * self.k - 1

    @property
    def result(self) -> SpannerResult:
        """The current :class:`SpannerResult` (build or adopt first)."""
        return self._require_result()

    @property
    def spanner(self) -> Graph:
        """The current spanner subgraph (build or adopt first)."""
        return self._require_result().spanner

    @property
    def built(self) -> bool:
        """Whether the session holds a spanner yet."""
        return self._result is not None

    def build(self, algorithm: str = "greedy", **options) -> SpannerResult:
        """Build this session's spanner with a registered algorithm.

        Dispatches through :func:`repro.registry.build_spanner` with the
        session configuration; ``**options`` are the algorithm-specific
        extras (``repack_every=``, ``iterations=``, ...).  Replaces any
        previously built/adopted spanner and invalidates its snapshot
        (the input graph's freeze survives -- it is still the same
        graph).
        """
        spec = get_algorithm(algorithm)
        result = build_spanner(
            self.g,
            algorithm,
            k=self.k,
            f=self.f,
            fault_model=self.fault_model if spec.fault_models else None,
            seed=self.seed if spec.seedable else None,
            backend=self.backend if spec.backend_aware else None,
            **options,
        )
        self._set_result(result)
        return result

    def adopt(
        self,
        spanner: Union[Graph, SpannerResult],
        algorithm: str = "adopted",
    ) -> SpannerResult:
        """Adopt an externally built spanner as this session's subject.

        Accepts a bare :class:`~repro.graph.graph.Graph` (wrapped in a
        :class:`SpannerResult` carrying the session's parameters -- the
        CLI's ``verify`` does this with a file-loaded candidate) or a
        full :class:`SpannerResult` from an earlier build, which must
        cover the session's configuration: same ``k``, fault budget at
        least the session's ``f``, and (when ``f > 0``) the same fault
        model -- checked eagerly so a mismatch fails here, not deep in
        a later verify/oracle call.
        """
        if isinstance(spanner, SpannerResult):
            result = spanner
            if result.k != self.k:
                raise ValueError(
                    f"adopted result was built for k={result.k}; this "
                    f"session expects k={self.k}"
                )
            if result.f < self.f:
                raise ValueError(
                    f"adopted result tolerates f={result.f} faults; this "
                    f"session's budget is f={self.f}"
                )
            if self.f and result.fault_model is not self.fault_model:
                raise ValueError(
                    f"adopted result uses the {result.fault_model.value} "
                    f"fault model; this session uses "
                    f"{self.fault_model.value}"
                )
        else:
            result = SpannerResult(
                spanner=spanner,
                k=self.k,
                f=self.f,
                fault_model=self.fault_model,
                algorithm=algorithm,
            )
        self._set_result(result)
        return result

    # ------------------------------------------------------------- #
    # Consumers sharing the substrate
    # ------------------------------------------------------------- #

    def verify(
        self,
        t: Optional[float] = None,
        *,
        exhaustive_budget: int = 50_000,
        samples: Optional[int] = None,
        mode: str = "sweep",
        witness_pairs: Optional[int] = None,
    ) -> VerificationReport:
        """Verify the session spanner's fault-tolerance guarantee.

        ``t`` defaults to the session guarantee ``2k - 1``; fault budget,
        model, backend, and sampling seed come from the session.  On the
        CSR backend the sweep re-stamps the session's shared snapshot.

        ``mode="witness"`` verifies via per-pair disjoint-path
        certificates from the Dinic engine instead of the fault-set
        sweep (same verdict, polynomial in f); in sweep mode a
        fault-set space beyond ``exhaustive_budget`` raises
        :class:`~repro.verification.SweepBudgetExceeded` unless
        ``samples=`` opts into adversarial sampling.
        """
        h = self._require_result().spanner
        return verify_ft_spanner(
            self.g,
            h,
            t=self.stretch if t is None else t,
            f=self.f,
            fault_model=self.fault_model.value,
            exhaustive_budget=exhaustive_budget,
            samples=samples,
            seed=self.seed,
            backend=self.backend,
            snapshot=self._dual_snapshot(),
            search=self.search,
            mode=mode,
            witness_pairs=witness_pairs,
        )

    def oracle(self, cache_size: int = 128) -> FaultTolerantDistanceOracle:
        """A distance oracle over the session spanner (shared snapshot).

        Each call returns a fresh oracle (they keep independent LRU
        caches), but on the CSR backend every oracle re-stamps the same
        frozen spanner snapshot (with the session's search engine).
        """
        return FaultTolerantDistanceOracle(
            self.g,
            k=self.k,
            f=self.f,
            fault_model=self.fault_model,
            cache_size=cache_size,
            prebuilt=self._require_result(),
            backend=self.backend,
            snapshot=self._spanner_snapshot(),
            search=self.search,
        )

    def router(self) -> SpannerRouter:
        """A next-hop router over the session spanner (shared snapshot)."""
        return SpannerRouter(
            self.g,
            k=self.k,
            f=self.f,
            fault_model=self.fault_model,
            prebuilt=self._require_result(),
            backend=self.backend,
            snapshot=self._spanner_snapshot(),
            search=self.search,
        )

    def availability(
        self,
        failures: Optional[int] = None,
        *,
        scenarios: int = 50,
        pairs_per_scenario: int = 30,
        guarantee: Optional[float] = None,
        fault_process: str = "independent",
    ) -> AvailabilityReport:
        """Monte-Carlo availability of the session spanner under faults.

        ``failures`` defaults to the session fault budget ``f``;
        ``guarantee`` to the session stretch.  The probes re-stamp the
        session's shared dual snapshot on the CSR backend.
        ``fault_process`` selects the scenario generator (see
        :func:`~repro.applications.availability.sample_fault_scenario`).
        """
        h = self._require_result().spanner
        return availability_analysis(
            self.g,
            h,
            failures=self.f if failures is None else failures,
            guarantee=self.stretch if guarantee is None else guarantee,
            scenarios=scenarios,
            pairs_per_scenario=pairs_per_scenario,
            seed=self.seed,
            backend=self.backend,
            snapshot=self._dual_snapshot(),
            search=self.search,
            fault_process=fault_process,
        )

    def degradation(
        self,
        max_failures: int,
        *,
        scenarios: int = 30,
        pairs_per_scenario: int = 20,
        guarantee: Optional[float] = None,
        fault_process: str = "independent",
    ) -> List[Tuple[int, AvailabilityReport]]:
        """Failure-count sweep 0..max_failures over the shared snapshot."""
        h = self._require_result().spanner
        return degradation_profile(
            self.g,
            h,
            guarantee=self.stretch if guarantee is None else guarantee,
            max_failures=max_failures,
            scenarios=scenarios,
            pairs_per_scenario=pairs_per_scenario,
            seed=self.seed,
            backend=self.backend,
            snapshot=self._dual_snapshot(),
            search=self.search,
            fault_process=fault_process,
        )

    def serve(self, *, config=None, chaos=None):
        """A resilient multi-process query server over the session spanner.

        Packs the session's frozen spanner snapshot into a
        ``multiprocessing.shared_memory`` segment and stands up a
        :class:`~repro.serving.SpannerServer` -- a supervised worker
        pool with per-request deadlines, retry-with-backoff on worker
        death, health-checked respawn, and graceful degradation to
        in-process execution (bit-identical answers either way; see
        :mod:`repro.serving`).

        ``config`` (a :class:`~repro.serving.ServingConfig`) overrides
        the session's ``serving=`` default; ``chaos`` injects a
        deterministic fault schedule (:mod:`repro.serving.chaos`).  The
        caller owns the server: close it (or use it as a context
        manager) to release the workers and the shared segment.

        On the dict backend the spanner is frozen here once (serving
        workers execute on the CSR substrate; answers are bit-identical
        to the dict path, as everywhere).
        """
        from repro.serving import SpannerServer

        if self._dyn_h is not None:
            # Post-churn serve: the overlay view has no contiguous CSR
            # arrays to pack into shared memory, so fold pending updates
            # into the base epoch and hand the server that flat freeze
            # (the refreeze-then-serve path documented on SnapshotStale).
            snap = self._dyn_h.refreeze()
        else:
            snap = self._spanner_snapshot()
        if snap is None:
            # Dict-backend session: freeze once, cache privately so the
            # session's "no CSR state on the dict backend" invariant
            # (and the one-freeze discipline) both hold.
            if self._serve_snap is None:
                self._serve_snap = CSRSnapshot(
                    self._require_result().spanner,
                    indexer=self._shared_indexer(),
                )
            snap = self._serve_snap
        server = SpannerServer(
            snap,
            config=config if config is not None else self.serving,
            search=self.search,
            chaos=chaos,
        )
        # Remember the lease: a live server pins the packed (pre-update)
        # snapshot, so apply_updates() refuses until it is closed.
        self._servers = [s for s in self._servers if not s.closed]
        self._servers.append(server)
        return server

    # ------------------------------------------------------------- #
    # Streaming updates (delta overlay + compaction)
    # ------------------------------------------------------------- #

    def apply_updates(
        self,
        ops,
        *,
        compact_every: Optional[int] = None,
        max_density: Optional[float] = CompactionPolicy.DEFAULT_MAX_DENSITY,
    ) -> int:
        """Apply streaming edge updates to the session's graphs.

        ``ops`` is an iterable of typed ops
        (:class:`~repro.dynamic.log.EdgeInsert` /
        :class:`~repro.dynamic.log.EdgeDelete`) or their tuple forms
        ``("insert", u, v[, w])`` / ``("delete", u, v)``.  Every op is
        applied to the input graph G **and mirrored into the spanner
        H**: inserts (and weight updates) are added to H as well -- a
        churned edge is served at stretch 1 by construction -- and
        deletes remove the edge from H when present, so H stays a
        subgraph of G.  Deletion churn can erode the ``2k - 1``
        guarantee for *other* pairs until the next :meth:`build`;
        :meth:`verify` (which follows the updates) re-certifies the
        current state.

        On the CSR backend the graphs keep serving through
        :class:`~repro.dynamic.snapshot.DynamicSnapshot` delta overlays
        -- no refreeze per batch; the overlays fold into a refreeze per
        the compaction policy (``compact_every`` / ``max_density``,
        honored from the first call; see
        :class:`~repro.dynamic.snapshot.CompactionPolicy`).  Oracles,
        routers, and sweeps already handed out by this session follow
        the updates automatically (their caches flush on the overlay's
        version stamp) and stay bit-identical to a from-scratch freeze
        of the mutated graphs.  On the dict backend the updates mutate
        the dicts directly -- same answers, as everywhere.

        Raises :class:`~repro.serving.errors.SnapshotStale` while a
        server from :meth:`serve` is still open (its workers hold the
        pre-update snapshot; close it, apply, then serve again), and
        :class:`~repro.dynamic.log.UpdateConflict` on invalid ops
        (self-loops, negative weights, deleting an absent edge).
        Returns the number of effective updates applied to G.
        """
        h = self._require_result().spanner
        self._servers = [s for s in self._servers if not s.closed]
        if self._servers:
            from repro.serving.errors import SnapshotStale

            raise SnapshotStale(
                f"{len(self._servers)} server(s) from this session are "
                f"still open and hold the pre-update snapshot; close "
                f"them (server.close() or leave the 'with' block), "
                f"apply the updates, then serve() again"
            )
        op_list = [coerce_op(op) for op in ops]
        if self._use_csr():
            dyn_g, dyn_h = self._dynamic_pair(compact_every, max_density)
            applied = 0
            for op in op_list:
                fate = classify_op(self.g, op)
                if fate != "noop":
                    applied += 1
                dyn_g.apply([op])
                mirror = self._mirror_op(op, h)
                if mirror is not None:
                    dyn_h.apply([mirror])
            self._sync_profiles()
        else:
            applied = 0
            for op in op_list:
                fate = classify_op(self.g, op)
                mirror = self._mirror_op(op, h)
                if isinstance(op, EdgeInsert):
                    self.g.add_edge(op.u, op.v, op.weight)
                else:
                    self.g.remove_edge(op.u, op.v)
                if mirror is not None:
                    if isinstance(mirror, EdgeInsert):
                        h.add_edge(mirror.u, mirror.v, mirror.weight)
                    else:
                        h.remove_edge(mirror.u, mirror.v)
                if fate != "noop":
                    applied += 1
        # The assembled dual and any dict-backend serving freeze hold
        # pre-update state; both rebuild lazily from the current state.
        self._dual = None
        self._serve_snap = None
        return applied

    @staticmethod
    def _mirror_op(op, h: Graph):
        """The H-side twin of a G-side op (None when H is untouched)."""
        if isinstance(op, EdgeInsert):
            return op
        if isinstance(op, EdgeDelete) and h.has_edge(op.u, op.v):
            return op
        return None

    def _dynamic_pair(
        self, compact_every: Optional[int], max_density: Optional[float]
    ):
        """The (G, H) dynamic snapshots, created from the session freezes.

        First call adopts the session's frozen snapshots as the initial
        overlay epochs (no extra freeze); later calls reuse the live
        overlays (the compaction knobs of the *first* call stick).
        """
        if self._dyn_g is None:
            policy = CompactionPolicy(compact_every, max_density)
            self._dyn_g = DynamicSnapshot(
                self.g, base=self._graph_snapshot(), policy=policy
            )
            self._dyn_h = DynamicSnapshot(
                self._require_result().spanner,
                base=self._spanner_snapshot(),
                policy=policy,
            )
            # Retarget the session's frozen snapshot *objects* onto the
            # overlays: oracles, routers, and sweeps handed out before
            # this first update hold those objects, and the swap makes
            # their version-stamped refresh logic see churn -- no
            # consumer is left silently serving the pre-update epoch.
            if self._snap_g is not None:
                self._snap_g.csr = self._dyn_g.overlay
            if self._snap_h is not None:
                self._snap_h.csr = self._dyn_h.overlay
        return self._dyn_g, self._dyn_h

    def _sync_profiles(self) -> None:
        """Re-stamp the retargeted frozen snapshots' engine-selection slots.

        A plain :class:`CSRSnapshot` stamps ``profile`` / ``max_weight``
        / ``unit`` once at freeze time; once its ``csr`` is an overlay
        those must track the live weight counters so engine validation
        (and Dial bucket sizing) stays correct after every batch.
        """
        for snap, dyn in (
            (self._snap_g, self._dyn_g),
            (self._snap_h, self._dyn_h),
        ):
            if snap is None or dyn is None:
                continue
            snap.profile = dyn.overlay.profile
            snap.max_weight = dyn.overlay.max_weight
            snap.unit = snap.profile == "unit"

    def churn_stats(self) -> Optional[dict]:
        """Overlay counters after :meth:`apply_updates` (CSR backend).

        ``{"g": ..., "h": ...}`` per-graph stats dicts (ops, effective
        updates, overlay depth, compactions, version, density), or
        ``None`` before any update / on the dict backend.
        """
        if self._dyn_g is None or self._dyn_h is None:
            return None
        return {"g": self._dyn_g.stats(), "h": self._dyn_h.stats()}

    # ------------------------------------------------------------- #
    # The snapshot substrate (one freeze per graph per session)
    # ------------------------------------------------------------- #

    def _require_result(self) -> SpannerResult:
        if self._result is None:
            raise RuntimeError(
                "this session has no spanner yet; call build() or adopt()"
            )
        return self._result

    def _set_result(self, result: SpannerResult) -> None:
        self._result = result
        # A new spanner invalidates its snapshot, the dual built on it,
        # and its dynamic overlay; the input graph's freeze (and the
        # shared indexer) stay.
        self._snap_h = None
        self._dual = None
        self._dyn_h = None

    def _use_csr(self) -> bool:
        return self.backend == "csr"

    def _shared_indexer(self) -> NodeIndexer:
        """The session's one node<->index bijection, built from G.

        Every snapshot the session freezes shares it, which is what
        lets the dual be assembled from the per-graph snapshots without
        re-freezing (a spanner always spans, so its node set is G's).
        """
        if self._indexer is None:
            self._indexer = NodeIndexer.from_graph(self.g)
        return self._indexer

    def _graph_snapshot(self) -> Optional[CSRSnapshot]:
        """G frozen at most once per session (None on the dict backend).

        After :meth:`apply_updates` this is the *dynamic* view of G --
        a live :class:`~repro.graph.snapshot.CSRSnapshot` window onto
        the delta overlay -- so every later consumer follows churn.
        """
        if not self._use_csr():
            return None
        if self._dyn_g is not None:
            return self._dyn_g.view
        if self._snap_g is None:
            self._snap_g = CSRSnapshot(self.g, indexer=self._shared_indexer())
        return self._snap_g

    def _spanner_snapshot(self) -> Optional[CSRSnapshot]:
        """H frozen at most once per build (None on the dict backend).

        The dynamic view of H once :meth:`apply_updates` has run,
        exactly like :meth:`_graph_snapshot`.
        """
        if not self._use_csr():
            return None
        if self._dyn_h is not None:
            return self._dyn_h.view
        if self._snap_h is None:
            self._snap_h = CSRSnapshot(
                self._require_result().spanner, indexer=self._shared_indexer()
            )
        return self._snap_h

    def _dual_snapshot(self) -> Optional[DualCSRSnapshot]:
        """(G, H) assembled from the per-graph freezes (None on dict)."""
        if not self._use_csr():
            return None
        if self._dual is None:
            self._dual = DualCSRSnapshot(
                self.g,
                self._require_result().spanner,
                snap_g=self._graph_snapshot(),
                snap_h=self._spanner_snapshot(),
            )
        return self._dual

    def __repr__(self) -> str:
        built = self._result.algorithm if self._result else "<not built>"
        return (
            f"SpannerSession(n={self.g.num_nodes}, m={self.g.num_edges}, "
            f"k={self.k}, f={self.f}, "
            f"model={self.fault_model.value}, backend={self.backend}, "
            f"spanner={built})"
        )
