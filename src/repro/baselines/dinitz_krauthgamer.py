"""The Dinitz-Krauthgamer sampling reduction [DK11] (Theorem 13).

A black-box reduction from fault-tolerant to ordinary spanners: run
``O(f^3 log n)`` iterations; in each, every vertex participates
independently with probability ``1/f`` (probability 1 when f = 1 would
degenerate, so f = 1 uses p = 1/2 over more iterations -- any constant
works); build a non-fault-tolerant (2k-1)-spanner of the induced subgraph
with any algorithm A; return the union.

With ``g(n) = n^(1+1/k)`` (e.g. A = classic greedy) the union is an
f-VFT (2k-1)-spanner with ``O(f^(2-1/k) n^(1+1/k) log n)`` edges whp.

The paper's CONGEST construction (Theorem 15) is exactly this reduction
with A = distributed Baswana-Sen; this centralized version (default
A = classic greedy) is the baseline of experiment E12 and the oracle the
distributed implementation is tested against.

Backend: the reduction itself is backend-agnostic glue (it only samples
vertex sets and unions edge sets); the inner algorithm A runs on its own
backend -- the default A, :func:`classic_greedy_spanner`, uses the CSR
Dijkstra substrate.  Cost: O(f^3 log n) invocations of A on subgraphs
of expected size n/f.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional, Union

from repro.baselines.greedy_classic import classic_greedy_spanner
from repro.core.spanner import FaultModel, SpannerResult
from repro.graph.graph import Graph
from repro.registry import register_algorithm

RngLike = Union[int, random.Random, None]

SpannerAlgorithm = Callable[[Graph, int], Graph]


@register_algorithm(
    "dk",
    summary="The [DK11] black-box sampling reduction (Theorem 13)",
    guarantee="stretch 2k-1 w.h.p., O(f^3 log n) sampled sub-instances",
    fault_models=("vertex",),
    min_f=1,
    seedable=True,
)
def dk_fault_tolerant_spanner(
    g: Graph,
    k: int,
    f: int,
    seed: RngLike = None,
    iterations: Optional[int] = None,
    iteration_constant: float = 1.0,
    base_algorithm: Optional[SpannerAlgorithm] = None,
) -> SpannerResult:
    """Build an f-VFT (2k-1)-spanner by the [DK11] sampling reduction.

    Parameters
    ----------
    iterations:
        Overrides the default ``ceil(iteration_constant * f^3 * ln n)``
        count.  The theorem needs Theta(f^3 log n) for the
        high-probability guarantee; experiments may lower the constant
        and report the observed failure rate instead.
    base_algorithm:
        A function ``(graph, k) -> spanner_graph`` used on each sampled
        induced subgraph; defaults to the classic greedy (optimal
        ``g(n) = O(n^(1+1/k))``).
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    if f < 1:
        raise ValueError(f"need f >= 1, got {f}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = g.num_nodes
    if base_algorithm is None:
        base_algorithm = lambda sub, kk: classic_greedy_spanner(sub, kk).spanner
    if iterations is None:
        iterations = max(
            1, math.ceil(iteration_constant * f ** 3 * math.log(max(n, 2)))
        )
    # Participation probability 1/f.  For f = 1 that would be 1, which
    # breaks the analysis (a fault set is then never excluded from any
    # iteration); any constant in (0, 1) works there, and 1/2 keeps the
    # success probability per iteration at p^2 (1 - p) = 1/8.
    p = 1.0 / f if f > 1 else 0.5

    h = g.spanning_skeleton()
    nodes = sorted(g.nodes(), key=repr)
    for _ in range(iterations):
        participants = [v for v in nodes if rng.random() < p]
        if len(participants) < 2:
            continue
        sub = g.subgraph(participants)
        spanner = base_algorithm(sub, k)
        for u, v in spanner.edges():
            if not h.has_edge(u, v):
                h.add_edge(u, v, weight=g.weight(u, v))
    return SpannerResult(
        spanner=h,
        k=k,
        f=f,
        fault_model=FaultModel.VERTEX,
        algorithm="dinitz-krauthgamer",
        edges_considered=g.num_edges,
        extra={"iterations": float(iterations)},
    )
