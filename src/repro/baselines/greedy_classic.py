"""The classic [ADD+93] greedy (2k-1)-spanner.

For each edge {u, v} in nondecreasing weight order: add it to H unless H
already contains a path of weight at most (2k - 1) * w(u, v) between u
and v.  Output has girth > 2k, hence < n^(1+1/k) + n edges by the Moore
bound, and is a (2k-1)-spanner.

This is simultaneously:

* the f = 0 special case of every fault-tolerant greedy in the paper
  (footnote 1: the fault-free LBC test degenerates to "is there already a
  short path?"), and
* the optimal-size non-fault-tolerant baseline for the experiments.
"""

from __future__ import annotations

from repro.core.spanner import FaultModel, SpannerResult
from repro.graph.graph import Graph
from repro.graph.traversal import dijkstra


def classic_greedy_spanner(g: Graph, k: int) -> SpannerResult:
    """Build the [ADD+93] greedy (2k-1)-spanner of ``g``.

    Works for weighted and unweighted graphs; runs in O(m * (m' + n log n))
    where m' is the spanner size (one truncated Dijkstra per edge).
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    t = 2 * k - 1
    h = g.spanning_skeleton()
    considered = 0
    for u, v, w in sorted(g.weighted_edges(), key=lambda item: item[2]):
        considered += 1
        budget = t * w
        dist = dijkstra(h, u, target=v, max_dist=budget)
        if dist.get(v, float("inf")) > budget:
            h.add_edge(u, v, weight=w)
    return SpannerResult(
        spanner=h,
        k=k,
        f=0,
        fault_model=FaultModel.VERTEX,
        algorithm="classic-greedy",
        edges_considered=considered,
    )
