"""The classic [ADD+93] greedy (2k-1)-spanner.

For each edge {u, v} in nondecreasing weight order: add it to H unless H
already contains a path of weight at most (2k - 1) * w(u, v) between u
and v.  Output has girth > 2k, hence < n^(1+1/k) + n edges by the Moore
bound, and is a (2k-1)-spanner.

This is simultaneously:

* the f = 0 special case of every fault-tolerant greedy in the paper
  (footnote 1: the fault-free LBC test degenerates to "is there already a
  short path?"), and
* the optimal-size non-fault-tolerant baseline for the experiments.

Execution backends: with ``backend="csr"`` (the default) the growing
spanner is mirrored into a :class:`~repro.graph.csr.CSRBuilder` and the
per-edge "already short enough?" probe is a truncated CSR Dijkstra
through one shared :class:`~repro.graph.traversal.DijkstraWorkspace` --
the same substrate the fault-tolerant greedy family runs on, which makes
cross-algorithm benchmark timings comparable.  ``backend="dict"`` keeps
the original dict-based Dijkstra.  Both produce identical spanners.
"""

from __future__ import annotations

from typing import Optional

from repro.core.spanner import FaultModel, SpannerResult, resolve_backend
from repro.graph.csr import CSRBuilder
from repro.graph.graph import Graph
from repro.graph.index import NodeIndexer
from repro.registry import register_algorithm
from repro.graph.traversal import (
    DijkstraWorkspace,
    csr_weighted_distance,
    dijkstra,
)


@register_algorithm(
    "classic",
    summary="The [ADD+93] greedy: the f=0 ancestor of the whole line",
    guarantee="stretch 2k-1, O(n^(1+1/k)) edges; no fault tolerance",
    backend_aware=True,
)
def classic_greedy_spanner(
    g: Graph, k: int, backend: Optional[str] = None
) -> SpannerResult:
    """Build the [ADD+93] greedy (2k-1)-spanner of ``g``.

    Works for weighted and unweighted graphs; runs in O(m * (m' + n log n))
    where m' is the spanner size (one truncated Dijkstra per edge).
    ``backend`` selects the execution engine (see the module docstring);
    the output is identical either way.
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    t = 2 * k - 1
    h = g.spanning_skeleton()
    considered = 0
    use_csr = resolve_backend(backend) == "csr"
    if use_csr:
        indexer = NodeIndexer.from_graph(g)
        index = indexer.index
        builder = CSRBuilder(len(indexer))
        workspace = DijkstraWorkspace(len(indexer))
    for u, v, w in sorted(g.weighted_edges(), key=lambda item: item[2]):
        considered += 1
        budget = t * w
        if use_csr:
            d = csr_weighted_distance(
                builder, index(u), index(v), max_dist=budget,
                workspace=workspace,
            )
            if d > budget:
                h.add_edge(u, v, weight=w)
                builder.add_edge(index(u), index(v), w)
        else:
            dist = dijkstra(h, u, target=v, max_dist=budget)
            if dist.get(v, float("inf")) > budget:
                h.add_edge(u, v, weight=w)
    return SpannerResult(
        spanner=h,
        k=k,
        f=0,
        fault_model=FaultModel.VERTEX,
        algorithm="classic-greedy",
        edges_considered=considered,
    )
