"""The Baswana-Sen randomized (2k-1)-spanner [BS07] (centralized form).

The classic cluster-growing construction, here in its sequential form;
:mod:`repro.distributed.congest_bs` implements the same logic as a
node-local CONGEST protocol (Theorem 14).

Phase 1 (k - 1 rounds): maintain a clustering, initially every vertex a
singleton cluster.  Each round, cluster centers survive independently
with probability ``n^(-1/k)``.  A vertex v adjacent to a surviving
cluster joins the one offering its lightest connecting edge (adding that
edge to the spanner); a vertex adjacent to no surviving cluster adds its
lightest edge to *every* adjacent (old) cluster and leaves the clustering.

Phase 2: every vertex still clustered adds its lightest edge to each
adjacent cluster of the final clustering.

Expected size O(k n^(1+1/k)); stretch 2k - 1 for weighted graphs.

Backend: dict only.  The k - 1 clustering rounds touch every edge a
constant number of times each -- O(k m) total, no shortest-path probes
at all -- so the CSR traversal machinery is not applicable.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Set, Tuple, Union

from repro.core.spanner import FaultModel, SpannerResult
from repro.graph.graph import Graph, Node
from repro.registry import register_algorithm

RngLike = Union[int, random.Random, None]


@register_algorithm(
    "baswana-sen",
    summary="The [BS07] randomized clustering spanner (centralized form)",
    guarantee="stretch 2k-1, expected O(k n^(1+1/k)) edges; no fault "
              "tolerance",
    seedable=True,
)
def baswana_sen_spanner(
    g: Graph, k: int, seed: RngLike = None
) -> SpannerResult:
    """Build a (2k-1)-spanner of (possibly weighted) ``g`` per [BS07]."""
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = g.num_nodes
    h = g.spanning_skeleton()
    if n == 0:
        return _result(h, g, k)

    # center[v]: the center of v's cluster, or None once v has left.
    center: Dict[Node, Optional[Node]] = {v: v for v in g.nodes()}
    # live[v]: edges of v not yet "resolved" (intra-cluster or discarded).
    live: Dict[Node, Dict[Node, float]] = {
        v: dict(g.neighbor_items(v)) for v in g.nodes()
    }
    p = n ** (-1.0 / k)

    for _ in range(k - 1):
        survivors = _sample_centers(center, p, rng)
        new_center: Dict[Node, Optional[Node]] = {}
        for v in g.nodes():
            c = center[v]
            if c is None:
                new_center[v] = None
                continue
            if c in survivors:
                # v's own cluster survived; stay put.
                new_center[v] = c
                continue
            best = _lightest_edge_per_cluster(v, live[v], center)
            surviving_best: Optional[Tuple[float, Node, Node]] = None
            for cluster, (w, u) in best.items():
                if cluster in survivors:
                    cand = (w, repr(u), u, cluster)
                    if surviving_best is None or cand[:2] < surviving_best[:2]:
                        surviving_best = cand
            if surviving_best is not None:
                # Join the surviving cluster with the lightest edge.
                join_weight, _, u, cluster = surviving_best
                h.add_edge(v, u, weight=live[v][u])
                new_center[v] = cluster
                # [BS07] join rule: also connect to every adjacent cluster
                # whose lightest edge is strictly lighter than the joining
                # edge (these clusters would otherwise offer shortcuts the
                # stretch argument needs), then drop edges into the joined
                # and the connected clusters.
                resolved = {cluster}
                for other, (w, x) in best.items():
                    if other != cluster and w < join_weight:
                        h.add_edge(v, x, weight=live[v][x])
                        resolved.add(other)
                live[v] = {
                    x: w
                    for x, w in live[v].items()
                    if center.get(x) not in resolved
                }
            else:
                # No adjacent surviving cluster: connect to every adjacent
                # old cluster with its lightest edge, then leave.
                for cluster, (w, u) in best.items():
                    h.add_edge(v, u, weight=live[v][u])
                new_center[v] = None
                live[v] = {}
        center = new_center

    # Phase 2: lightest edge to each adjacent final cluster.
    for v in g.nodes():
        if center[v] is None:
            continue
        best = _lightest_edge_per_cluster(v, dict(g.neighbor_items(v)), center)
        for cluster, (w, u) in best.items():
            if cluster == center[v]:
                continue
            h.add_edge(v, u, weight=g.weight(v, u))
    return _result(h, g, k)


def _sample_centers(
    center: Dict[Node, Optional[Node]], p: float, rng: random.Random
) -> Set[Node]:
    """Each current cluster center survives independently w.p. ``p``."""
    centers = sorted(
        {c for c in center.values() if c is not None}, key=repr
    )
    return {c for c in centers if rng.random() < p}


def _lightest_edge_per_cluster(
    v: Node,
    incident: Dict[Node, float],
    center: Dict[Node, Optional[Node]],
) -> Dict[Node, Tuple[float, Node]]:
    """For each adjacent cluster: (weight, endpoint) of v's lightest edge.

    Ties broken by endpoint repr for determinism.
    """
    best: Dict[Node, Tuple[float, Node]] = {}
    for u, w in incident.items():
        c = center.get(u)
        if c is None:
            continue
        cur = best.get(c)
        if cur is None or (w, repr(u)) < (cur[0], repr(cur[1])):
            best[c] = (w, u)
    return best


def _result(h: Graph, g: Graph, k: int) -> SpannerResult:
    return SpannerResult(
        spanner=h,
        k=k,
        f=0,
        fault_model=FaultModel.VERTEX,
        algorithm="baswana-sen",
        edges_considered=g.num_edges,
    )
