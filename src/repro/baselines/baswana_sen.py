"""The Baswana-Sen randomized (2k-1)-spanner [BS07] (centralized form).

The classic cluster-growing construction, here in its sequential form;
:mod:`repro.distributed.congest_bs` implements the same logic as a
node-local CONGEST protocol (Theorem 14).

Phase 1 (k - 1 rounds): maintain a clustering, initially every vertex a
singleton cluster.  Each round, cluster centers survive independently
with probability ``n^(-1/k)``.  A vertex v adjacent to a surviving
cluster joins the one offering its lightest connecting edge (adding that
edge to the spanner); a vertex adjacent to no surviving cluster adds its
lightest edge to *every* adjacent (old) cluster and leaves the clustering.

Phase 2: every vertex still clustered adds its lightest edge to each
adjacent cluster of the final clustering.

Expected size O(k n^(1+1/k)); stretch 2k - 1 for weighted graphs.

Execution backends (``backend=`` keyword, default resolved from
``REPRO_BACKEND``): the k - 1 clustering rounds touch every edge a
constant number of times each -- O(k m) total, no shortest-path probes
-- so the fold onto the CSR substrate is about the *clustering state*,
not traversal kernels.  The ``"csr"`` path runs the identical logic
over integer node indices: center assignments live in a flat list,
per-vertex live-edge sets are built from the frozen CSR rows (which
preserve dict neighbor order), and the dict path's ``repr``-based
tie-breaks and center-sampling order are reproduced through one
precomputed repr-rank permutation -- so both backends consume the
identical RNG stream and emit the identical spanner, edge for edge, in
the identical insertion order (asserted by the parity suite).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Set, Tuple, Union

from repro.core.spanner import FaultModel, SpannerResult, resolve_backend
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph, Node
from repro.graph.index import NodeIndexer
from repro.registry import register_algorithm

RngLike = Union[int, random.Random, None]


@register_algorithm(
    "baswana-sen",
    summary="The [BS07] randomized clustering spanner (centralized form)",
    guarantee="stretch 2k-1, expected O(k n^(1+1/k)) edges; no fault "
              "tolerance",
    seedable=True,
    backend_aware=True,
)
def baswana_sen_spanner(
    g: Graph, k: int, seed: RngLike = None, backend: Optional[str] = None
) -> SpannerResult:
    """Build a (2k-1)-spanner of (possibly weighted) ``g`` per [BS07].

    ``backend`` selects the clustering-state engine (see the module
    docstring); the output is identical either way.
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    if resolve_backend(backend) == "csr":
        return _baswana_sen_csr(g, k, rng)
    n = g.num_nodes
    h = g.spanning_skeleton()
    if n == 0:
        return _result(h, g, k)

    # center[v]: the center of v's cluster, or None once v has left.
    center: Dict[Node, Optional[Node]] = {v: v for v in g.nodes()}
    # live[v]: edges of v not yet "resolved" (intra-cluster or discarded).
    live: Dict[Node, Dict[Node, float]] = {
        v: dict(g.neighbor_items(v)) for v in g.nodes()
    }
    p = n ** (-1.0 / k)

    for _ in range(k - 1):
        survivors = _sample_centers(center, p, rng)
        new_center: Dict[Node, Optional[Node]] = {}
        for v in g.nodes():
            c = center[v]
            if c is None:
                new_center[v] = None
                continue
            if c in survivors:
                # v's own cluster survived; stay put.
                new_center[v] = c
                continue
            best = _lightest_edge_per_cluster(v, live[v], center)
            surviving_best: Optional[Tuple[float, Node, Node]] = None
            for cluster, (w, u) in best.items():
                if cluster in survivors:
                    cand = (w, repr(u), u, cluster)
                    if surviving_best is None or cand[:2] < surviving_best[:2]:
                        surviving_best = cand
            if surviving_best is not None:
                # Join the surviving cluster with the lightest edge.
                join_weight, _, u, cluster = surviving_best
                h.add_edge(v, u, weight=live[v][u])
                new_center[v] = cluster
                # [BS07] join rule: also connect to every adjacent cluster
                # whose lightest edge is strictly lighter than the joining
                # edge (these clusters would otherwise offer shortcuts the
                # stretch argument needs), then drop edges into the joined
                # and the connected clusters.
                resolved = {cluster}
                for other, (w, x) in best.items():
                    if other != cluster and w < join_weight:
                        h.add_edge(v, x, weight=live[v][x])
                        resolved.add(other)
                live[v] = {
                    x: w
                    for x, w in live[v].items()
                    if center.get(x) not in resolved
                }
            else:
                # No adjacent surviving cluster: connect to every adjacent
                # old cluster with its lightest edge, then leave.
                for cluster, (w, u) in best.items():
                    h.add_edge(v, u, weight=live[v][u])
                new_center[v] = None
                live[v] = {}
        center = new_center

    # Phase 2: lightest edge to each adjacent final cluster.
    for v in g.nodes():
        if center[v] is None:
            continue
        best = _lightest_edge_per_cluster(v, dict(g.neighbor_items(v)), center)
        for cluster, (w, u) in best.items():
            if cluster == center[v]:
                continue
            h.add_edge(v, u, weight=g.weight(v, u))
    return _result(h, g, k)


def _baswana_sen_csr(g: Graph, k: int, rng: random.Random) -> SpannerResult:
    """The index-space mirror of the dict clustering (identical output).

    Every structure the dict path keeps keyed by node label lives here
    in a flat list keyed by CSR node index; the one non-trivial bridge
    is ``rank``, the permutation sorting indices by their labels'
    ``repr`` -- comparing ``(w, rank[u])`` reproduces the dict path's
    ``(w, repr(u))`` tie-break, and sorting centers by rank reproduces
    its center-sampling order, so the RNG stream matches draw for draw.
    """
    n = g.num_nodes
    h = g.spanning_skeleton()
    if n == 0:
        return _result(h, g, k)
    indexer = NodeIndexer.from_graph(g)
    csr = CSRGraph.from_graph(g, indexer=indexer)
    node_of = indexer.node
    rank = [0] * n
    order = sorted(range(n), key=lambda i: repr(node_of(i)))
    for r, i in enumerate(order):
        rank[i] = r

    NONE = -1  # a vertex that has left the clustering
    center = list(range(n))
    # live[v]: unresolved incident edges, in CSR row order -- which is
    # the dict path's neighbor insertion order, so the per-cluster
    # "first encountered" bookkeeping below matches it exactly.
    live = [
        dict(zip(csr.neighbors[v], csr.weight_rows[v])) for v in range(n)
    ]
    p = n ** (-1.0 / k)

    for _ in range(k - 1):
        centers = sorted({c for c in center if c != NONE}, key=rank.__getitem__)
        survivors = {c for c in centers if rng.random() < p}
        new_center = [NONE] * n
        for v in range(n):
            c = center[v]
            if c == NONE:
                continue
            if c in survivors:
                new_center[v] = c
                continue
            best = _lightest_by_index(live[v], center, rank)
            surviving_best: Optional[Tuple[float, int, int, int]] = None
            for cluster, (w, ru, u) in best.items():
                if cluster in survivors:
                    if surviving_best is None or (w, ru) < surviving_best[:2]:
                        surviving_best = (w, ru, u, cluster)
            if surviving_best is not None:
                join_weight, _, u, cluster = surviving_best
                h.add_edge(node_of(v), node_of(u), weight=live[v][u])
                new_center[v] = cluster
                resolved = {cluster}
                for other, (w, rx, x) in best.items():
                    if other != cluster and w < join_weight:
                        h.add_edge(node_of(v), node_of(x), weight=live[v][x])
                        resolved.add(other)
                live[v] = {
                    x: w
                    for x, w in live[v].items()
                    if center[x] not in resolved
                }
            else:
                for cluster, (w, ru, u) in best.items():
                    h.add_edge(node_of(v), node_of(u), weight=live[v][u])
                live[v] = {}
        center = new_center

    for v in range(n):
        if center[v] == NONE:
            continue
        incident = dict(zip(csr.neighbors[v], csr.weight_rows[v]))
        best = _lightest_by_index(incident, center, rank)
        for cluster, (w, ru, u) in best.items():
            if cluster == center[v]:
                continue
            h.add_edge(node_of(v), node_of(u), weight=w)
    return _result(h, g, k)


def _lightest_by_index(
    incident: Dict[int, float], center, rank
) -> Dict[int, Tuple[float, int, int]]:
    """Index-space `_lightest_edge_per_cluster`: cluster -> (w, rank, u)."""
    best: Dict[int, Tuple[float, int, int]] = {}
    for u, w in incident.items():
        c = center[u]
        if c == -1:
            continue
        cur = best.get(c)
        if cur is None or (w, rank[u]) < cur[:2]:
            best[c] = (w, rank[u], u)
    return best


def _sample_centers(
    center: Dict[Node, Optional[Node]], p: float, rng: random.Random
) -> Set[Node]:
    """Each current cluster center survives independently w.p. ``p``."""
    centers = sorted(
        {c for c in center.values() if c is not None}, key=repr
    )
    return {c for c in centers if rng.random() < p}


def _lightest_edge_per_cluster(
    v: Node,
    incident: Dict[Node, float],
    center: Dict[Node, Optional[Node]],
) -> Dict[Node, Tuple[float, Node]]:
    """For each adjacent cluster: (weight, endpoint) of v's lightest edge.

    Ties broken by endpoint repr for determinism.
    """
    best: Dict[Node, Tuple[float, Node]] = {}
    for u, w in incident.items():
        c = center.get(u)
        if c is None:
            continue
        cur = best.get(c)
        if cur is None or (w, repr(u)) < (cur[0], repr(cur[1])):
            best[c] = (w, u)
    return best


def _result(h: Graph, g: Graph, k: int) -> SpannerResult:
    return SpannerResult(
        spanner=h,
        k=k,
        f=0,
        fault_model=FaultModel.VERTEX,
        algorithm="baswana-sen",
        edges_considered=g.num_edges,
    )
