"""The Chechik-Langberg-Peleg-Roditty fault-tolerant spanner [CLPR10].

The first fault-tolerant spanner construction for general graphs: modify
Thorup-Zwick by (a) fattening each sampled level so that pivots survive
faults, and (b) connecting each vertex not to single pivots but to the
``f + 1`` nearest members of each level, so that after ``f`` vertex
faults at least one connection survives.

The original construction achieves size ``O~(k f n^(1+1/k))`` -- the
``~ k f`` multiplicative overhead the later work ([DK11], [BDPW18],
[BP19], and this paper) successively improved.  We implement the natural
simplified form:

* sample levels with probability ``(n / (f+1))^(-1/k) ... `` -- in line
  with [CLPR10] the sampling probability is adjusted so each level's
  *surviving* density matches TZ after f faults;
* every vertex stores shortest paths to the ``f + 1`` nearest vertices
  of each level tier (instead of 1), all of which enter the spanner.

This baseline exists to make the experiment E12 comparison three-way
(CLPR10 vs DK11 vs modified greedy); its exact polylog factors are not
load-bearing for any theorem.

Backend: dict only.  One pass of O(k f) Dijkstra sweeps over the full
graph -- O(k f (m + n log n)) -- with no per-fault-set inner loop, so
there is no mask-reuse pattern for the CSR backend to exploit.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Set, Union

from repro.core.spanner import FaultModel, SpannerResult
from repro.graph.graph import Graph, Node
from repro.graph.traversal import dijkstra, shortest_path
from repro.registry import register_algorithm

RngLike = Union[int, random.Random, None]

INFINITY = math.inf


@register_algorithm(
    "clpr",
    summary="The first FT construction for general graphs [CLPR10]",
    guarantee="stretch 2k-1, ~O(k f n^(1+1/k) polylog) edges",
    fault_models=("vertex",),
    seedable=True,
)
def clpr_fault_tolerant_spanner(
    g: Graph, k: int, f: int, seed: RngLike = None
) -> SpannerResult:
    """Build an f-VFT (2k-1)-spanner in the style of [CLPR10].

    Size ~ O(k f n^(1+1/k) polylog) -- intentionally the *weakest*
    fault-tolerant baseline, predating [DK11] and the greedy line.
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    if f < 0:
        raise ValueError(f"need f >= 0, got {f}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = g.num_nodes
    h = g.spanning_skeleton()
    if n == 0:
        return _result(h, g, k, f)
    nodes = sorted(g.nodes(), key=repr)
    levels = _sample_levels(nodes, k, n, f, rng)
    fan_out = f + 1
    for v in nodes:
        dist = dijkstra(g, v)
        targets: Set[Node] = set()
        for i in range(k):
            tier = levels[i]
            nxt = levels[i + 1] if i + 1 < k else set()
            # Fault-tolerant pivot distance: how far the (f+1)-th nearest
            # member of the *next* level is; f faults cannot remove all of
            # the f+1 nearest, so some next-level anchor within this radius
            # always survives.
            next_dists = sorted(
                dist[w] for w in nxt if w in dist and w != v
            )
            radius = (
                next_dists[fan_out - 1]
                if len(next_dists) >= fan_out
                else INFINITY
            )
            # Fault-tolerant bunch: every tier member strictly inside the
            # radius, plus the f+1 nearest tier members (the anchors).
            for w in tier - nxt:
                if w in dist and w != v and dist[w] < radius:
                    targets.add(w)
            anchors = sorted(
                (w for w in tier if w in dist and w != v),
                key=lambda w: (dist[w], repr(w)),
            )[:fan_out]
            targets.update(anchors)
        for w in targets:
            path = shortest_path(g, v, w)
            if path is None:
                continue
            for a, b in zip(path, path[1:]):
                if not h.has_edge(a, b):
                    h.add_edge(a, b, weight=g.weight(a, b))
    return _result(h, g, k, f)


def _sample_levels(
    nodes: List[Node], k: int, n: int, f: int, rng: random.Random
) -> List[Set[Node]]:
    """Nested levels A_0 ⊇ ... ⊇ A_{k-1}, fattened for f faults.

    Per-level survival probability ``((f + 1) / n)^(1/k) * (f + 1)^(...)``
    is approximated by ``(n / (f + 1))^(-1/k)``: each successive level
    thins by that factor, leaving ~ (f+1) expected vertices at the top
    so the f+1-redundant anchoring works at every level.
    """
    thin = (max(n, 2) / (f + 1)) ** (-1.0 / k) if n > f + 1 else 1.0
    for _ in range(64):
        levels = [set(nodes)]
        for _ in range(1, k):
            levels.append({v for v in levels[-1] if rng.random() < thin})
        if k == 1 or levels[k - 1]:
            return levels
    levels[k - 1] = set(nodes[: f + 1])
    for i in range(k - 1, 0, -1):
        levels[i - 1] |= levels[i]
    return levels


def _result(h: Graph, g: Graph, k: int, f: int) -> SpannerResult:
    return SpannerResult(
        spanner=h,
        k=k,
        f=f,
        fault_model=FaultModel.VERTEX,
        algorithm="clpr",
        edges_considered=g.num_edges,
    )
