"""Baseline spanner constructions the paper compares against or builds on.

* :func:`~repro.baselines.greedy_classic.classic_greedy_spanner` --
  the [ADD+93] greedy (the f = 0 ancestor of everything here).
* :func:`~repro.baselines.thorup_zwick.thorup_zwick_spanner` -- the
  [TZ05] clustering construction, substrate of [CLPR10].
* :func:`~repro.baselines.chechik.clpr_fault_tolerant_spanner` -- the
  first fault-tolerant construction for general graphs [CLPR10]
  (~ O(k f) multiplicative overhead).
* :func:`~repro.baselines.baswana_sen.baswana_sen_spanner` -- the [BS07]
  randomized (2k-1)-spanner (centralized form; the distributed form lives
  in :mod:`repro.distributed.congest_bs`).
* :func:`~repro.baselines.dinitz_krauthgamer.dk_fault_tolerant_spanner`
  -- the [DK11] black-box sampling reduction (Theorem 13), substrate of
  the paper's CONGEST construction.

Backends: ``classic_greedy_spanner`` runs on the CSR substrate by
default (``backend=`` keyword, same parity guarantee as the greedy
family) so cross-algorithm benchmark timings are apples-to-apples; the
randomized/clustering constructions are dict-only -- they make no
repeated fault-set distance probes, which is the pattern the CSR
workspace/mask machinery accelerates.  Each module's docstring states
its own complexity.
"""

from repro.baselines.greedy_classic import classic_greedy_spanner
from repro.baselines.thorup_zwick import thorup_zwick_spanner
from repro.baselines.baswana_sen import baswana_sen_spanner
from repro.baselines.dinitz_krauthgamer import dk_fault_tolerant_spanner
from repro.baselines.chechik import clpr_fault_tolerant_spanner

__all__ = [
    "classic_greedy_spanner",
    "thorup_zwick_spanner",
    "baswana_sen_spanner",
    "dk_fault_tolerant_spanner",
    "clpr_fault_tolerant_spanner",
]
