"""The Thorup-Zwick (2k-1)-spanner [TZ05].

The sampling-hierarchy construction behind approximate distance oracles:

1. Sample a hierarchy ``V = A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1} ⊇ A_k = ∅`` where
   each ``A_i`` keeps every element of ``A_{i-1}`` independently with
   probability ``n^(-1/k)``.
2. For each vertex v and level i, let ``p_i(v)`` be the nearest vertex of
   ``A_i`` and define the *bunch*
   ``B_i(v) = { w in A_i \\ A_{i+1} : d(v, w) < d(v, A_{i+1}) }``.
3. The spanner keeps, for every v, a shortest-path tree edge-set
   realizing ``d(v, w)`` for each ``w`` in its bunch (plus the pivots).

Expected size O(k n^(1+1/k)); stretch 2k - 1.  [CLPR10]'s fault-tolerant
construction is this object with fattened samples and bunches
(:mod:`repro.baselines.chechik`).

Backend: dict only.  The construction is k single-source Dijkstra
sweeps plus bunch assembly -- O(k m + k n log n) with no repeated
fault-set probes to amortize, so the CSR workspace/mask machinery has
nothing to win here (contrast :mod:`repro.baselines.greedy_classic`,
which is on the CSR substrate).

For library purposes the implementation keeps, for each bunch member, the
*first edge* of a shortest v-w path and recurses greedily -- equivalently
we retain the shortest path itself; paths are computed with truncated
Dijkstra runs from each vertex, which is O(n (m + n log n)) worst case
but fast on the sparse workloads used in the experiments.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.spanner import FaultModel, SpannerResult
from repro.graph.graph import Graph, Node
from repro.graph.traversal import dijkstra, shortest_path
from repro.registry import register_algorithm

RngLike = Union[int, random.Random, None]

INFINITY = math.inf


@register_algorithm(
    "thorup-zwick",
    summary="The [TZ05] clustering construction (substrate of [CLPR10])",
    guarantee="stretch 2k-1, expected O(k n^(1+1/k)) edges; no fault "
              "tolerance",
    seedable=True,
)
def thorup_zwick_spanner(
    g: Graph, k: int, seed: RngLike = None
) -> SpannerResult:
    """Build a (2k-1)-spanner via the Thorup-Zwick hierarchy.

    Randomized: expected size O(k n^(1+1/k)).  Deterministic given
    ``seed``.
    """
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = g.num_nodes
    if n == 0:
        return _result(g.spanning_skeleton(), g, k)
    levels = _sample_hierarchy(sorted(g.nodes(), key=repr), k, n, rng)
    h = g.spanning_skeleton()
    for v in g.nodes():
        _add_bunch_paths(g, h, v, levels, k)
    return _result(h, g, k)


def _sample_hierarchy(
    nodes: List[Node], k: int, n: int, rng: random.Random
) -> List[Set[Node]]:
    """Levels A_0 ⊇ ... ⊇ A_{k-1}; A_k = ∅ is implicit.

    Retries until A_{k-1} is nonempty (standard: otherwise pivots at the
    top level are undefined; the retry probability is constant).
    """
    p = n ** (-1.0 / k)
    for _ in range(64):
        levels = [set(nodes)]
        for _ in range(1, k):
            levels.append({v for v in levels[-1] if rng.random() < p})
        if k == 1 or levels[k - 1]:
            return levels
    # Extremely unlucky stream: force one survivor at the top.
    levels[k - 1] = {nodes[0]}
    for i in range(k - 1, 0, -1):
        levels[i - 1] |= levels[i]
    return levels


def _add_bunch_paths(
    g: Graph, h: Graph, v: Node, levels: List[Set[Node]], k: int
) -> None:
    """Add shortest paths from v to every member of its bunch to ``h``."""
    dist = dijkstra(g, v)
    # d(v, A_{i+1}) for each level; d(v, A_k) = inf.
    next_level_dist: List[float] = []
    for i in range(k):
        if i + 1 < k:
            d = min(
                (dist[w] for w in levels[i + 1] if w in dist),
                default=INFINITY,
            )
        else:
            d = INFINITY
        next_level_dist.append(d)
    targets: Set[Node] = set()
    for i in range(k):
        tier = levels[i] - (levels[i + 1] if i + 1 < k else set())
        for w in tier:
            if w in dist and dist[w] < next_level_dist[i]:
                targets.add(w)
        # The pivot p_i(v) is also connected (it satisfies the strict
        # inequality at its own tier or is v itself); including the
        # nearest A_i vertex explicitly matches [TZ05].
        pivot = _nearest(levels[i], dist)
        if pivot is not None:
            targets.add(pivot)
    for w in targets:
        if w == v:
            continue
        path = shortest_path(g, v, w)
        if path is None:
            continue
        for a, b in zip(path, path[1:]):
            if not h.has_edge(a, b):
                h.add_edge(a, b, weight=g.weight(a, b))


def _nearest(level: Set[Node], dist: Dict[Node, float]) -> Optional[Node]:
    """The closest member of ``level`` under ``dist`` (ties by repr)."""
    best: Optional[Node] = None
    best_d = INFINITY
    for w in level:
        d = dist.get(w, INFINITY)
        if d < best_d or (d == best_d and best is not None and repr(w) < repr(best)):
            best = w
            best_d = d
    return best if best_d < INFINITY else None


def _result(h: Graph, g: Graph, k: int) -> SpannerResult:
    return SpannerResult(
        spanner=h,
        k=k,
        f=0,
        fault_model=FaultModel.VERTEX,
        algorithm="thorup-zwick",
        edges_considered=g.num_edges,
    )
