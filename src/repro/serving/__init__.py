"""Resilient multi-process serving of fault-tolerant distance queries.

The serving layer turns a frozen spanner snapshot into a supervised
query service: worker processes adopt the snapshot zero-copy from a
``multiprocessing.shared_memory`` segment, and a dispatcher batches
oracle/router queries per fault scenario under per-request deadlines,
retry-with-backoff on worker death, health-checked respawn, and
graceful degradation to in-process execution -- always returning
either the bit-identical answer or a typed error, never a wrong answer
and never a hang.

Entry points
------------
* :class:`SpannerServer` / :class:`ServingConfig` -- the server itself
  (also via :meth:`repro.session.SpannerSession.serve`).
* :class:`ChaosPolicy` / :class:`ScriptedChaos` -- deterministic fault
  injection for tests and benchmarks.
* :func:`run_load` -- open-loop load generation with parity auditing.
* :class:`DeadlineExceeded` / :class:`ServingUnavailable` -- the typed
  failure surface.
"""

from repro.serving.chaos import KILL, ChaosPolicy, ScriptedChaos
from repro.serving.dispatcher import (
    ServingConfig,
    ServingStats,
    SpannerServer,
)
from repro.serving.errors import (
    ChaosSpawnFailure,
    DeadlineExceeded,
    ServingError,
    ServingUnavailable,
    SnapshotStale,
    WorkerCrashed,
)
from repro.serving.loadgen import LoadReport, run_load
from repro.serving.pool import REQUEST_KINDS, WorkerPool, execute_request

__all__ = [
    "ChaosPolicy",
    "ChaosSpawnFailure",
    "DeadlineExceeded",
    "KILL",
    "LoadReport",
    "REQUEST_KINDS",
    "ScriptedChaos",
    "ServingConfig",
    "ServingError",
    "ServingStats",
    "ServingUnavailable",
    "SnapshotStale",
    "SpannerServer",
    "WorkerCrashed",
    "WorkerPool",
    "execute_request",
    "run_load",
]
