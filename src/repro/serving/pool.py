"""Serving workers over one shared-memory snapshot (substrate client).

Since PR 10 the pool machinery itself -- spawn/handshake/backoff,
reap/respawn, the worker request loop, chaos gating -- lives in the
shared parallel-execution substrate (:mod:`repro.parallel.pool`).
What remains here is the *serving workload*: the request executor and
the executor factory each worker runs at startup.

Each worker attaches the server's ``multiprocessing.shared_memory``
segment, adopts the packed :class:`~repro.graph.snapshot.CSRSnapshot`
zero-copy (:func:`~repro.graph.snapshot.adopt_snapshot`), builds one
:class:`~repro.graph.snapshot.ScenarioSweep`, and then answers request
messages over its duplex pipe until told to stop.  The request
executor -- :func:`execute_request` -- is a plain function shared with
the dispatcher's in-process degradation path, so a degraded answer is
bit-identical to a pooled one *by construction*: same code, same
immutable snapshot, different process.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.snapshot import ScenarioSweep, adopt_snapshot
from repro.parallel.pool import (
    Worker,
    WorkerPool as _SubstratePool,
    attach_shared as _attach_shared,
    default_start_method as _default_start_method,
    worker_main,
)

__all__ = ["REQUEST_KINDS", "Worker", "WorkerPool", "execute_request"]

#: Request kinds the executor understands (the serving layer's verb set).
REQUEST_KINDS = ("pairs", "sssp", "parents", "ping")


def execute_request(sweep: ScenarioSweep, kind: str, payload) -> object:
    """Answer one request against a sweep (worker and degraded path).

    ``payload`` is ``(items..., faults, fault_model)`` per kind:

    * ``"pairs"``: ``(pairs, faults, fault_model)`` -> one distance per
      ``(u, v)`` pair (``inf`` when unreachable; a faulted/unknown
      endpoint raises ``KeyError`` exactly like the in-process sweep);
    * ``"sssp"``: ``(source, faults, fault_model)`` -> the
      ``distances_from`` dict;
    * ``"parents"``: ``(roots, faults, fault_model)`` -> one
      ``parents_toward`` dict per root (the router-table workload,
      batched through ``parents_multi``);
    * ``"ping"``: health probe, returns ``"pong"``.

    Faults are stamped once per request -- the dispatcher batches
    queries per fault scenario, so a shard is one O(|F|) re-stamp plus
    its queries.
    """
    if kind == "pairs":
        pairs, faults, fault_model = payload
        sweep.stamp(faults, fault_model)
        distance = sweep.distance
        return [distance(u, v) for u, v in pairs]
    if kind == "sssp":
        source, faults, fault_model = payload
        sweep.stamp(faults, fault_model)
        return sweep.distances_from(source)
    if kind == "parents":
        roots, faults, fault_model = payload
        sweep.stamp(faults, fault_model)
        return sweep.parents_multi(list(roots))
    if kind == "ping":
        return "pong"
    raise ValueError(
        f"unknown request kind {kind!r}; expected one of {REQUEST_KINDS}"
    )


def sweep_executor(shm_name: str, search: Optional[str]):
    """Executor factory run inside each serving worker (spawn-safe).

    Attaches the shared segment, adopts the snapshot zero-copy, and
    binds :func:`execute_request` to the resulting sweep.  The returned
    closure must keep the ``SharedMemory`` handle referenced alongside
    the sweep: the sweep's typed memoryviews are exports over the
    segment's mmap, and dropping the handle would run its ``__del__``
    -> ``close()`` under them, raising ``BufferError`` noise in every
    worker.  Held for the worker's whole life, it is then skipped by
    the substrate's ``os._exit`` teardown (no interpreter GC), so the
    exports are never closed out from under the sweep at all.
    """
    shm = _attach_shared(shm_name)
    sweep = ScenarioSweep(adopt_snapshot(shm.buf), search=search)

    def executor(kind: str, payload, _segment=shm) -> object:
        return execute_request(sweep, kind, payload)

    return executor


class WorkerPool(_SubstratePool):
    """The serving pool: substrate workers running :func:`sweep_executor`.

    Keeps the serving layer's historical constructor signature
    (``WorkerPool(shm_name, size, search=...)``); everything else --
    spawn/health-check/reap/respawn, the backoff and chaos semantics,
    the ``respawns`` / ``spawn_rejections`` counters -- is inherited
    unchanged from :class:`repro.parallel.pool.WorkerPool`.
    """

    def __init__(
        self,
        shm_name: str,
        size: int,
        *,
        search: Optional[str] = None,
        start_method: Optional[str] = None,
        chaos=None,
        spawn_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        spawn_timeout: float = 10.0,
    ) -> None:
        super().__init__(
            sweep_executor,
            (shm_name, search),
            size,
            start_method=start_method,
            chaos=chaos,
            spawn_attempts=spawn_attempts,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            spawn_timeout=spawn_timeout,
        )
        self.shm_name = shm_name
        self.search = search
