"""Open-loop load generator with post-hoc parity auditing.

Drives a :class:`~repro.serving.dispatcher.SpannerServer` the way a
latency benchmark should: requests arrive on a fixed schedule (open
loop), so a slow or crashing server *accumulates* queueing delay
instead of silently slowing the generator down with it (the
coordinated-omission trap of closed-loop load generation).  Each
request's latency is measured from its **scheduled** arrival to its
completion.

Every request is one fault scenario (drawn by
:func:`repro.applications.availability.sample_fault_scenario`, so the
``fault_process=`` models -- independent, clustered, or cascade --
apply here too) plus a batch of distance pairs among the survivors.  The whole
workload is pre-generated from one seeded RNG before the clock starts,
which keeps it independent of the server's chaos draws.

After the run, every completed answer is audited against a fresh
in-process :class:`~repro.graph.snapshot.ScenarioSweep` over the same
snapshot: ``parity_ok`` asserts the serving layer returned
bit-identical distances even while workers were being killed under it.
Deadline and unavailability errors are *counted*, never hidden -- the
resilience contract is "right answer or typed error", and the report
shows both sides.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.applications.availability import sample_fault_scenario
from repro.graph.snapshot import ScenarioSweep
from repro.serving.errors import DeadlineExceeded, ServingUnavailable

__all__ = ["LoadReport", "run_load"]


@dataclass
class LoadReport:
    """Outcome of one load-generation run.

    Attributes
    ----------
    requests / completed / deadline_errors / unavailable:
        Request counts by outcome (they sum to ``requests``).
    elapsed_seconds:
        Wall-clock span from first scheduled arrival to last completion.
    throughput_rps:
        Completed requests per second of elapsed time.
    p50_ms / p99_ms:
        Latency quantiles over *completed* requests, measured from each
        request's scheduled arrival (open loop: queueing delay counts).
    parity_ok:
        ``True`` iff every completed answer was bit-identical to the
        in-process :class:`~repro.graph.snapshot.ScenarioSweep` truth.
    stats:
        The server's resilience counters after the run
        (:meth:`~repro.serving.dispatcher.SpannerServer.stats_dict`).
    """

    requests: int
    completed: int
    deadline_errors: int
    unavailable: int
    elapsed_seconds: float
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    parity_ok: bool
    stats: Dict[str, int] = field(default_factory=dict)


def _quantile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (0.0 when empty)."""
    if not sorted_vals:
        return 0.0
    return sorted_vals[min(len(sorted_vals) - 1, int(q * len(sorted_vals)))]


def run_load(
    server,
    *,
    requests: int,
    rate: Optional[float] = None,
    pairs_per_request: int = 8,
    failures: int = 1,
    fault_model: str = "vertex",
    fault_process: str = "independent",
    seed: int = 0,
    deadline: Optional[float] = None,
) -> LoadReport:
    """Drive ``server`` with a seeded stream of fault-scenario batches.

    ``rate`` is the open-loop arrival rate in requests/second; ``None``
    (or a non-positive value) issues requests back-to-back instead
    (closed loop -- useful for a pure throughput ceiling).  ``deadline``
    overrides the server's default per-request budget.  The workload is
    a pure function of ``seed`` and the snapshot.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if pairs_per_request < 1:
        raise ValueError(
            f"pairs_per_request must be >= 1, got {pairs_per_request}"
        )
    snap = server.snapshot
    nodes = sorted(snap.indexer, key=repr)
    if len(nodes) < failures + 2:
        raise ValueError("snapshot too small for that many failures")
    csr = snap.csr
    index = snap.indexer.index
    label = snap.indexer.node

    def neighbors(u):
        return [label(j) for j in csr.neighbors[index(u)]]

    rng = random.Random(seed)
    workload: List[Tuple[List, List[Tuple]]] = []
    for _ in range(requests):
        faults = sample_fault_scenario(
            nodes, failures, rng, fault_process, neighbors=neighbors
        )
        survivors = [x for x in nodes if x not in faults]
        pairs = [
            tuple(rng.sample(survivors, 2))
            for _ in range(pairs_per_request)
        ]
        workload.append((sorted(faults, key=repr), pairs))

    interval = 1.0 / rate if rate and rate > 0 else 0.0
    latencies: List[float] = []
    answers: List[Optional[List[float]]] = []
    deadline_errors = 0
    unavailable = 0
    start = time.monotonic()
    for i, (faults, pairs) in enumerate(workload):
        scheduled = start + i * interval
        now = time.monotonic()
        if now < scheduled:
            time.sleep(scheduled - now)
        elif interval == 0.0:
            scheduled = now  # closed loop: latency is pure service time
        try:
            result = server.distances(
                pairs, faults, fault_model, deadline=deadline
            )
        except DeadlineExceeded:
            deadline_errors += 1
            answers.append(None)
            continue
        except ServingUnavailable:
            unavailable += 1
            answers.append(None)
            continue
        latencies.append(time.monotonic() - scheduled)
        answers.append(result)
    elapsed = max(time.monotonic() - start, 1e-9)

    # Post-hoc audit: every completed answer must be bit-identical to
    # the in-process sweep over the same frozen snapshot.
    truth = ScenarioSweep(snap, search=server.search)
    parity_ok = True
    for (faults, pairs), got in zip(workload, answers):
        if got is None:
            continue
        truth.stamp(faults, fault_model)
        expect = [truth.distance(u, v) for u, v in pairs]
        if got != expect:
            parity_ok = False
            break

    latencies.sort()
    completed = len(latencies)
    return LoadReport(
        requests=requests,
        completed=completed,
        deadline_errors=deadline_errors,
        unavailable=unavailable,
        elapsed_seconds=elapsed,
        throughput_rps=completed / elapsed,
        p50_ms=_quantile(latencies, 0.50) * 1e3,
        p99_ms=_quantile(latencies, 0.99) * 1e3,
        parity_ok=parity_ok,
        stats=server.stats_dict(),
    )
