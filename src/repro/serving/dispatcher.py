"""`SpannerServer`: a thin serving client over the parallel substrate.

The front end of the serving layer.  One server owns:

* the packed snapshot in a ``multiprocessing.shared_memory`` segment
  (written once at construction; workers adopt it zero-copy),
* a supervised :class:`~repro.serving.pool.WorkerPool` (the substrate
  pool running the snapshot-adopting executor factory),
* and a :class:`~repro.parallel.dispatch.Dispatcher` that turns a
  batch request into per-worker shards, enforces the request deadline,
  retries shards whose worker died, respawns crashed workers, and --
  when the pool is unusable -- degrades to in-process execution with
  bit-identical answers.

Since PR 10 the deadline/retry/respawn loop itself lives in
:mod:`repro.parallel.dispatch`; this module contributes the serving
semantics only: sharding policy, payload construction, the
``DeadlineExceeded.partial`` alignment, and the degradation executor.

Request model
-------------
Every public call (:meth:`SpannerServer.distances`,
:meth:`~SpannerServer.distances_from`, :meth:`~SpannerServer.tables`)
is one *fault scenario* plus a batch of queries.  The dispatcher splits
the batch into contiguous shards (at most one per configured worker,
never smaller than ``shard_min`` items), sends each shard to a worker
as one message, and multiplexes completions with
``multiprocessing.connection.wait`` under the remaining deadline.
Shards are idempotent -- the snapshot is immutable, queries are pure --
so a shard whose worker crashed is simply resent (bounded by
``max_retries``, with exponential backoff in front of the respawn).

Failure semantics (the contract the chaos suite pins):

* worker death mid-shard -> reap + backoff + respawn + resend; after
  ``max_retries`` resends the shard goes to the degradation path;
* deadline expiry -> outstanding workers are SIGKILLed (a stalled
  worker holds no cancellable state; the snapshot is shared so killing
  is cheap) and :class:`~repro.serving.errors.DeadlineExceeded` is
  raised carrying every already-completed item;
* pool unusable (nothing alive, spawns exhausted) -> in-process
  execution through the *same* ``execute_request`` the workers run --
  bit-identical by construction -- or, with ``degrade=False``,
  :class:`~repro.serving.errors.ServingUnavailable`;
* an application error (e.g. ``KeyError`` for a faulted query source)
  is deterministic, so it is *not* retried: it re-raises in the caller
  exactly as the in-process sweep would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.graph.graph import Graph, Node
from repro.graph.snapshot import (
    CSRSnapshot,
    ScenarioSweep,
    pack_snapshot_into,
    snapshot_nbytes,
    validate_search,
)
from repro.parallel.dispatch import DispatchStats, Dispatcher, Job as _Job
from repro.serving.errors import DeadlineExceeded, ServingUnavailable
from repro.serving.pool import WorkerPool, execute_request


@dataclass
class ServingConfig:
    """Tunables of one :class:`SpannerServer`.

    Attributes
    ----------
    workers:
        Pool size (also the maximum shards per request).
    deadline:
        Default per-request latency budget in seconds (overridable per
        call with ``deadline=``).
    max_retries:
        How many times one shard may be *resent* after its worker died
        (the first send is not a retry).
    spawn_attempts / backoff_base / backoff_cap:
        Spawn retry budget and the exponential backoff in front of
        respawns (both spawn-level and shard-resend-level waits).
    spawn_timeout:
        Seconds a fresh worker gets to complete its startup handshake.
    degrade:
        Whether an unusable pool falls back to in-process execution
        (bit-identical answers) instead of raising
        :class:`~repro.serving.errors.ServingUnavailable`.
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else the platform default).
    shard_min:
        Minimum items per shard; small batches use fewer shards so the
        per-message overhead stays amortized.
    """

    workers: int = 2
    deadline: float = 5.0
    max_retries: int = 2
    spawn_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    spawn_timeout: float = 10.0
    degrade: bool = True
    start_method: Optional[str] = None
    shard_min: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not self.deadline > 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.shard_min < 1:
            raise ValueError(f"shard_min must be >= 1, got {self.shard_min}")


@dataclass
class ServingStats(DispatchStats):
    """Server-lifetime counters (updated in place; read at any time).

    Inherits the substrate's :class:`~repro.parallel.dispatch.
    DispatchStats` fields; the pool-owned counters (``respawns``,
    ``spawn_rejections``) are merged in by
    :meth:`SpannerServer.stats_dict`.
    """


class SpannerServer:
    """A resilient multi-process query server over one frozen snapshot.

    Parameters
    ----------
    snapshot:
        A :class:`~repro.graph.snapshot.CSRSnapshot` (e.g. a
        :class:`~repro.session.SpannerSession`'s spanner snapshot) or a
        plain :class:`~repro.graph.graph.Graph` to freeze here.
    config:
        A :class:`ServingConfig`; defaults apply when omitted.
    search:
        Weighted search engine for every worker's sweep *and* the
        degradation path (one of
        :data:`~repro.graph.snapshot.SEARCH_MODES`; same semantics as
        everywhere else -- answers are bit-identical on every legal
        engine).
    chaos:
        Optional chaos policy (:mod:`repro.parallel.chaos`) injecting
        worker kills, stalls, and spawn failures -- test/benchmark
        instrumentation; ``None`` in production.

    Use as a context manager (or call :meth:`close`) to release the
    worker processes and the shared segment.
    """

    def __init__(
        self,
        snapshot: Union[CSRSnapshot, Graph],
        *,
        config: Optional[ServingConfig] = None,
        search: Optional[str] = None,
        chaos=None,
    ) -> None:
        if not isinstance(snapshot, CSRSnapshot):
            snapshot = CSRSnapshot(snapshot)
        self.snapshot = snapshot
        self.config = config or ServingConfig()
        self.search = validate_search(search, snapshot.profile)
        self.chaos = chaos
        self.stats = ServingStats()
        self._local: Optional[ScenarioSweep] = None
        self._closed = False
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._pool: Optional[WorkerPool] = None
        self._dispatcher: Optional[Dispatcher] = None
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=snapshot_nbytes(snapshot)
            )
            self._shm = shm
            pack_snapshot_into(snapshot, shm.buf)
            self._pool = WorkerPool(
                shm.name,
                self.config.workers,
                search=self.search,
                start_method=self.config.start_method,
                chaos=chaos,
                spawn_attempts=self.config.spawn_attempts,
                backoff_base=self.config.backoff_base,
                backoff_cap=self.config.backoff_cap,
                spawn_timeout=self.config.spawn_timeout,
            )
            self._dispatcher = Dispatcher(
                self._pool,
                deadline=self.config.deadline,
                max_retries=self.config.max_retries,
                backoff_base=self.config.backoff_base,
                backoff_cap=self.config.backoff_cap,
                degrade=self._degrade_job,
                chaos=chaos,
                stats=self.stats,
            )
            self._pool.start()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------- #
    # Public request surface
    # ------------------------------------------------------------- #

    def distances(
        self,
        pairs: Sequence[Tuple[Node, Node]],
        faults: Sequence = (),
        fault_model: str = "vertex",
        deadline: Optional[float] = None,
    ) -> List[float]:
        """Batched s-t distances under one fault scenario.

        Returns one distance per pair (``inf`` for unreachable),
        bit-identical to
        :meth:`~repro.graph.snapshot.ScenarioSweep.distance` per pair.
        On deadline expiry raises
        :class:`~repro.serving.errors.DeadlineExceeded` whose
        ``partial`` aligns with ``pairs`` (``None`` holes).
        """
        pairs = list(pairs)
        if not pairs:
            return []
        faults = list(faults)
        shards = self._shard(pairs)
        jobs = [
            _Job("pairs", (shard, faults, fault_model), i)
            for i, shard in enumerate(shards)
        ]
        try:
            self._dispatch(jobs, deadline)
        except DeadlineExceeded as exc:
            partial: List = []
            for shard, job in zip(shards, jobs):
                partial.extend(
                    job.result if job.done else [None] * len(shard)
                )
            raise DeadlineExceeded(
                exc.deadline, exc.elapsed, partial,
                sum(1 for x in partial if x is not None),
            ) from None
        out: List[float] = []
        for job in jobs:
            out.extend(job.result)
        return out

    def distances_from(
        self,
        source: Node,
        faults: Sequence = (),
        fault_model: str = "vertex",
        deadline: Optional[float] = None,
    ) -> Dict[Node, float]:
        """Single-source distances under one fault scenario (one shard)."""
        jobs = [_Job("sssp", (source, list(faults), fault_model), 0)]
        try:
            self._dispatch(jobs, deadline)
        except DeadlineExceeded as exc:
            raise DeadlineExceeded(
                exc.deadline, exc.elapsed, [None], 0
            ) from None
        return jobs[0].result

    def tables(
        self,
        roots: Sequence[Node],
        faults: Sequence = (),
        fault_model: str = "vertex",
        deadline: Optional[float] = None,
    ) -> List[Dict[Node, Node]]:
        """Destination-rooted routing tables under one fault scenario.

        One :meth:`~repro.graph.snapshot.ScenarioSweep.parents_toward`
        dict per root; ``DeadlineExceeded.partial`` aligns with
        ``roots``.
        """
        roots = list(roots)
        if not roots:
            return []
        faults = list(faults)
        shards = self._shard(roots)
        jobs = [
            _Job("parents", (shard, faults, fault_model), i)
            for i, shard in enumerate(shards)
        ]
        try:
            self._dispatch(jobs, deadline)
        except DeadlineExceeded as exc:
            partial = []
            for shard, job in zip(shards, jobs):
                partial.extend(
                    job.result if job.done else [None] * len(shard)
                )
            raise DeadlineExceeded(
                exc.deadline, exc.elapsed, partial,
                sum(1 for x in partial if x is not None),
            ) from None
        out: List[Dict[Node, Node]] = []
        for job in jobs:
            out.extend(job.result)
        return out

    def ping(self, deadline: Optional[float] = None) -> bool:
        """Round-trip a health probe through the pool (or degraded path)."""
        jobs = [_Job("ping", None, 0)]
        self._dispatch(jobs, deadline)
        return jobs[0].result == "pong"

    @property
    def live_workers(self) -> int:
        """Workers currently alive (0 when fully degraded)."""
        pool = self._pool
        if pool is None:
            return 0
        return sum(1 for w in pool.workers if w.alive())

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the snapshot lease is over).

        The session's streaming-update guard reads this: a server still
        open holds the pre-update snapshot in shared memory, so
        ``apply_updates()`` raises
        :class:`~repro.serving.errors.SnapshotStale` until every server
        built from the session is closed.
        """
        return self._closed

    def stats_dict(self) -> Dict[str, int]:
        """Every resilience counter, including the pool-owned ones."""
        d = self.stats.as_dict()
        pool = self._pool
        d["respawns"] = pool.respawns if pool is not None else 0
        d["spawn_rejections"] = (
            pool.spawn_rejections if pool is not None else 0
        )
        return d

    # ------------------------------------------------------------- #
    # Dispatch glue (the loop itself lives in repro.parallel.dispatch)
    # ------------------------------------------------------------- #

    def _shard(self, items: Sequence) -> List[List]:
        """Split a batch into contiguous near-equal shards."""
        n = len(items)
        nshards = max(
            1,
            min(self.config.workers,
                math.ceil(n / max(1, self.config.shard_min))),
        )
        base, extra = divmod(n, nshards)
        shards: List[List] = []
        pos = 0
        for i in range(nshards):
            size = base + (1 if i < extra else 0)
            shards.append(list(items[pos:pos + size]))
            pos += size
        return shards

    def _dispatch(self, jobs: List[_Job], deadline: Optional[float]) -> None:
        if self._closed:
            raise ServingUnavailable("this server is closed")
        self._dispatcher.dispatch(jobs, deadline)

    def _degrade_job(self, job: _Job) -> None:
        """The substrate's degradation callback: in-process execution."""
        if not self.config.degrade:
            raise ServingUnavailable(
                "worker pool unusable (crashes/spawn failures "
                "exhausted the retry budget) and degrade=False"
            )
        self.stats.degraded_shards += 1
        job.result = execute_request(
            self._local_sweep(), job.kind, job.payload
        )
        job.done = True

    def _local_sweep(self) -> ScenarioSweep:
        """The in-process degradation engine (same snapshot, same code)."""
        if self._local is None:
            self._local = ScenarioSweep(self.snapshot, search=self.search)
        return self._local

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def close(self) -> None:
        """Stop the pool and release the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            try:
                self._pool.close()
            finally:
                pass
        if self._shm is not None:
            try:
                self._shm.close()
            finally:
                try:
                    self._shm.unlink()
                except FileNotFoundError:
                    pass

    def __enter__(self) -> "SpannerServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"SpannerServer({self.snapshot!r}, workers="
            f"{self.config.workers}, live={self.live_workers}, "
            f"search={self.search!r})"
        )
