"""`SpannerServer`: deadlines, retries, respawn, graceful degradation.

The front end of the serving layer.  One server owns:

* the packed snapshot in a ``multiprocessing.shared_memory`` segment
  (written once at construction; workers adopt it zero-copy),
* a supervised :class:`~repro.serving.pool.WorkerPool`,
* and the dispatch loop that turns a batch request into per-worker
  shards, enforces the request deadline, retries shards whose worker
  died, respawns crashed workers, and -- when the pool is unusable --
  degrades to in-process execution with bit-identical answers.

Request model
-------------
Every public call (:meth:`SpannerServer.distances`,
:meth:`~SpannerServer.distances_from`, :meth:`~SpannerServer.tables`)
is one *fault scenario* plus a batch of queries.  The dispatcher splits
the batch into contiguous shards (at most one per configured worker,
never smaller than ``shard_min`` items), sends each shard to a worker
as one message, and multiplexes completions with
``multiprocessing.connection.wait`` under the remaining deadline.
Shards are idempotent -- the snapshot is immutable, queries are pure --
so a shard whose worker crashed is simply resent (bounded by
``max_retries``, with exponential backoff in front of the respawn).

Failure semantics (the contract the chaos suite pins):

* worker death mid-shard -> reap + backoff + respawn + resend; after
  ``max_retries`` resends the shard goes to the degradation path;
* deadline expiry -> outstanding workers are SIGKILLed (a stalled
  worker holds no cancellable state; the snapshot is shared so killing
  is cheap) and :class:`~repro.serving.errors.DeadlineExceeded` is
  raised carrying every already-completed item;
* pool unusable (nothing alive, spawns exhausted) -> in-process
  execution through the *same* ``execute_request`` the workers run --
  bit-identical by construction -- or, with ``degrade=False``,
  :class:`~repro.serving.errors.ServingUnavailable`;
* an application error (e.g. ``KeyError`` for a faulted query source)
  is deterministic, so it is *not* retried: it re-raises in the caller
  exactly as the in-process sweep would.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from multiprocessing import connection, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.graph.graph import Graph, Node
from repro.graph.snapshot import (
    CSRSnapshot,
    ScenarioSweep,
    pack_snapshot_into,
    snapshot_nbytes,
    validate_search,
)
from repro.serving.errors import DeadlineExceeded, ServingUnavailable
from repro.serving.pool import WorkerPool, execute_request


@dataclass
class ServingConfig:
    """Tunables of one :class:`SpannerServer`.

    Attributes
    ----------
    workers:
        Pool size (also the maximum shards per request).
    deadline:
        Default per-request latency budget in seconds (overridable per
        call with ``deadline=``).
    max_retries:
        How many times one shard may be *resent* after its worker died
        (the first send is not a retry).
    spawn_attempts / backoff_base / backoff_cap:
        Spawn retry budget and the exponential backoff in front of
        respawns (both spawn-level and shard-resend-level waits).
    spawn_timeout:
        Seconds a fresh worker gets to complete its startup handshake.
    degrade:
        Whether an unusable pool falls back to in-process execution
        (bit-identical answers) instead of raising
        :class:`~repro.serving.errors.ServingUnavailable`.
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else the platform default).
    shard_min:
        Minimum items per shard; small batches use fewer shards so the
        per-message overhead stays amortized.
    """

    workers: int = 2
    deadline: float = 5.0
    max_retries: int = 2
    spawn_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    spawn_timeout: float = 10.0
    degrade: bool = True
    start_method: Optional[str] = None
    shard_min: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not self.deadline > 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.shard_min < 1:
            raise ValueError(f"shard_min must be >= 1, got {self.shard_min}")


@dataclass
class ServingStats:
    """Server-lifetime counters (updated in place; read at any time).

    The pool-owned counters (``respawns``, ``spawn_rejections``) are
    merged in by :meth:`SpannerServer.stats_dict`.
    """

    requests: int = 0
    shards: int = 0
    retries: int = 0
    worker_deaths: int = 0
    deadline_errors: int = 0
    degraded_shards: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class _Job:
    """One dispatched shard: kind, payload, result slot, retry count."""

    __slots__ = ("kind", "payload", "index", "attempts", "result", "done")

    def __init__(self, kind: str, payload, index: int) -> None:
        self.kind = kind
        self.payload = payload
        self.index = index
        self.attempts = 0
        self.result = None
        self.done = False


class SpannerServer:
    """A resilient multi-process query server over one frozen snapshot.

    Parameters
    ----------
    snapshot:
        A :class:`~repro.graph.snapshot.CSRSnapshot` (e.g. a
        :class:`~repro.session.SpannerSession`'s spanner snapshot) or a
        plain :class:`~repro.graph.graph.Graph` to freeze here.
    config:
        A :class:`ServingConfig`; defaults apply when omitted.
    search:
        Weighted search engine for every worker's sweep *and* the
        degradation path (one of
        :data:`~repro.graph.snapshot.SEARCH_MODES`; same semantics as
        everywhere else -- answers are bit-identical on every legal
        engine).
    chaos:
        Optional chaos policy (:mod:`repro.serving.chaos`) injecting
        worker kills, stalls, and spawn failures -- test/benchmark
        instrumentation; ``None`` in production.

    Use as a context manager (or call :meth:`close`) to release the
    worker processes and the shared segment.
    """

    def __init__(
        self,
        snapshot: Union[CSRSnapshot, Graph],
        *,
        config: Optional[ServingConfig] = None,
        search: Optional[str] = None,
        chaos=None,
    ) -> None:
        if not isinstance(snapshot, CSRSnapshot):
            snapshot = CSRSnapshot(snapshot)
        self.snapshot = snapshot
        self.config = config or ServingConfig()
        self.search = validate_search(search, snapshot.profile)
        self.chaos = chaos
        self.stats = ServingStats()
        self._local: Optional[ScenarioSweep] = None
        self._msg_counter = 0
        self._closed = False
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._pool: Optional[WorkerPool] = None
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=snapshot_nbytes(snapshot)
            )
            self._shm = shm
            pack_snapshot_into(snapshot, shm.buf)
            self._pool = WorkerPool(
                shm.name,
                self.config.workers,
                search=self.search,
                start_method=self.config.start_method,
                chaos=chaos,
                spawn_attempts=self.config.spawn_attempts,
                backoff_base=self.config.backoff_base,
                backoff_cap=self.config.backoff_cap,
                spawn_timeout=self.config.spawn_timeout,
            )
            self._pool.start()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------- #
    # Public request surface
    # ------------------------------------------------------------- #

    def distances(
        self,
        pairs: Sequence[Tuple[Node, Node]],
        faults: Sequence = (),
        fault_model: str = "vertex",
        deadline: Optional[float] = None,
    ) -> List[float]:
        """Batched s-t distances under one fault scenario.

        Returns one distance per pair (``inf`` for unreachable),
        bit-identical to
        :meth:`~repro.graph.snapshot.ScenarioSweep.distance` per pair.
        On deadline expiry raises
        :class:`~repro.serving.errors.DeadlineExceeded` whose
        ``partial`` aligns with ``pairs`` (``None`` holes).
        """
        pairs = list(pairs)
        if not pairs:
            return []
        faults = list(faults)
        shards = self._shard(pairs)
        jobs = [
            _Job("pairs", (shard, faults, fault_model), i)
            for i, shard in enumerate(shards)
        ]
        try:
            self._dispatch(jobs, deadline)
        except DeadlineExceeded as exc:
            partial: List = []
            for shard, job in zip(shards, jobs):
                partial.extend(
                    job.result if job.done else [None] * len(shard)
                )
            raise DeadlineExceeded(
                exc.deadline, exc.elapsed, partial,
                sum(1 for x in partial if x is not None),
            ) from None
        out: List[float] = []
        for job in jobs:
            out.extend(job.result)
        return out

    def distances_from(
        self,
        source: Node,
        faults: Sequence = (),
        fault_model: str = "vertex",
        deadline: Optional[float] = None,
    ) -> Dict[Node, float]:
        """Single-source distances under one fault scenario (one shard)."""
        jobs = [_Job("sssp", (source, list(faults), fault_model), 0)]
        try:
            self._dispatch(jobs, deadline)
        except DeadlineExceeded as exc:
            raise DeadlineExceeded(
                exc.deadline, exc.elapsed, [None], 0
            ) from None
        return jobs[0].result

    def tables(
        self,
        roots: Sequence[Node],
        faults: Sequence = (),
        fault_model: str = "vertex",
        deadline: Optional[float] = None,
    ) -> List[Dict[Node, Node]]:
        """Destination-rooted routing tables under one fault scenario.

        One :meth:`~repro.graph.snapshot.ScenarioSweep.parents_toward`
        dict per root; ``DeadlineExceeded.partial`` aligns with
        ``roots``.
        """
        roots = list(roots)
        if not roots:
            return []
        faults = list(faults)
        shards = self._shard(roots)
        jobs = [
            _Job("parents", (shard, faults, fault_model), i)
            for i, shard in enumerate(shards)
        ]
        try:
            self._dispatch(jobs, deadline)
        except DeadlineExceeded as exc:
            partial = []
            for shard, job in zip(shards, jobs):
                partial.extend(
                    job.result if job.done else [None] * len(shard)
                )
            raise DeadlineExceeded(
                exc.deadline, exc.elapsed, partial,
                sum(1 for x in partial if x is not None),
            ) from None
        out: List[Dict[Node, Node]] = []
        for job in jobs:
            out.extend(job.result)
        return out

    def ping(self, deadline: Optional[float] = None) -> bool:
        """Round-trip a health probe through the pool (or degraded path)."""
        jobs = [_Job("ping", None, 0)]
        self._dispatch(jobs, deadline)
        return jobs[0].result == "pong"

    @property
    def live_workers(self) -> int:
        """Workers currently alive (0 when fully degraded)."""
        pool = self._pool
        if pool is None:
            return 0
        return sum(1 for w in pool.workers if w.alive())

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the snapshot lease is over).

        The session's streaming-update guard reads this: a server still
        open holds the pre-update snapshot in shared memory, so
        ``apply_updates()`` raises
        :class:`~repro.serving.errors.SnapshotStale` until every server
        built from the session is closed.
        """
        return self._closed

    def stats_dict(self) -> Dict[str, int]:
        """Every resilience counter, including the pool-owned ones."""
        d = self.stats.as_dict()
        pool = self._pool
        d["respawns"] = pool.respawns if pool is not None else 0
        d["spawn_rejections"] = (
            pool.spawn_rejections if pool is not None else 0
        )
        return d

    # ------------------------------------------------------------- #
    # Dispatch core
    # ------------------------------------------------------------- #

    def _shard(self, items: Sequence) -> List[List]:
        """Split a batch into contiguous near-equal shards."""
        n = len(items)
        nshards = max(
            1,
            min(self.config.workers,
                math.ceil(n / max(1, self.config.shard_min))),
        )
        base, extra = divmod(n, nshards)
        shards: List[List] = []
        pos = 0
        for i in range(nshards):
            size = base + (1 if i < extra else 0)
            shards.append(list(items[pos:pos + size]))
            pos += size
        return shards

    def _dispatch(self, jobs: List[_Job], deadline: Optional[float]) -> None:
        """Run every job to completion, a typed error, or the deadline."""
        if self._closed:
            raise ServingUnavailable("this server is closed")
        cfg = self.config
        budget = cfg.deadline if deadline is None else deadline
        if not budget > 0:
            raise ValueError(f"deadline must be > 0, got {budget!r}")
        start = time.monotonic()
        deadline_at = start + budget
        self.stats.requests += 1
        self.stats.shards += len(jobs)
        pending: List[_Job] = list(jobs)
        busy: Dict[object, Tuple[object, _Job, int]] = {}
        expected: Dict[object, int] = {}  # conn -> current msg_id
        pool = self._pool

        def remaining() -> float:
            return deadline_at - time.monotonic()

        def fail_deadline() -> None:
            # A stalled worker holds no cancellable state; SIGKILL and
            # let the next request's ensure() respawn it.
            self.stats.deadline_errors += 1
            for conn in list(busy):
                worker, _, _ = busy.pop(conn)
                self.stats.worker_deaths += 1
                pool.discard(worker)
            raise DeadlineExceeded(
                budget, time.monotonic() - start,
                [j.result if j.done else None for j in jobs],
                sum(1 for j in jobs if j.done),
            )

        def degrade(job: _Job) -> None:
            if not cfg.degrade:
                raise ServingUnavailable(
                    "worker pool unusable (crashes/spawn failures "
                    "exhausted the retry budget) and degrade=False"
                )
            self.stats.degraded_shards += 1
            job.result = execute_request(
                self._local_sweep(), job.kind, job.payload
            )
            job.done = True

        def worker_died(conn, worker, job: _Job) -> None:
            # Reap it, back off, and resend within the retry budget.
            busy.pop(conn, None)
            self.stats.worker_deaths += 1
            pool.discard(worker)
            if job.attempts > cfg.max_retries:
                degrade(job)
                return
            self.stats.retries += 1
            pause = min(
                cfg.backoff_base * (2 ** (job.attempts - 1)),
                cfg.backoff_cap,
                max(0.0, remaining()),
            )
            if pause > 0:
                time.sleep(pause)
            pending.append(job)

        while pending or busy:
            if remaining() <= 0:
                fail_deadline()
            # Fill idle workers with pending shards.
            if pending:
                live = pool.ensure(budget=max(0.0, remaining()))
                idle = [w for w in live if w.conn not in busy]
                while pending and idle:
                    job = pending.pop(0)
                    worker = idle.pop(0)
                    directive = (
                        self.chaos.directive()
                        if self.chaos is not None else None
                    )
                    self._msg_counter += 1
                    msg_id = self._msg_counter
                    try:
                        worker.conn.send(
                            (msg_id, job.kind, job.payload, directive)
                        )
                    except (BrokenPipeError, OSError):
                        self.stats.worker_deaths += 1
                        pool.discard(worker)
                        pending.insert(0, job)
                        continue
                    job.attempts += 1
                    busy[worker.conn] = (worker, job, msg_id)
                if pending and not busy:
                    # Nothing alive and nothing spawnable: the pool is
                    # unusable for this request.
                    for job in list(pending):
                        degrade(job)
                    pending.clear()
                    continue
            # ensure() above may have reaped a dead *busy* worker and
            # closed its pipe; route its shard through the death path
            # before handing the fd set to connection.wait().
            for conn in list(busy):
                if conn.closed:
                    worker, job, _ = busy[conn]
                    worker_died(conn, worker, job)
            if not busy:
                continue
            timeout = remaining()
            if timeout <= 0:
                fail_deadline()
            ready = connection.wait(list(busy), timeout=timeout)
            if not ready:
                fail_deadline()
            for conn in ready:
                worker, job, msg_id = busy[conn]
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    # Worker died mid-shard (SIGKILL, crash).
                    worker_died(conn, worker, job)
                    continue
                rid, status, value = reply
                if rid != msg_id:
                    # Stale reply from a shard abandoned by an earlier
                    # request (application error mid-flight); the
                    # worker is still busy with the current shard.
                    continue
                del busy[conn]
                if status == "ok":
                    job.result = value
                    job.done = True
                else:
                    # Deterministic application error: identical to
                    # what the in-process sweep would raise.  Not
                    # retried; outstanding shards are abandoned (their
                    # late replies are discarded as stale above).
                    raise value

    def _local_sweep(self) -> ScenarioSweep:
        """The in-process degradation engine (same snapshot, same code)."""
        if self._local is None:
            self._local = ScenarioSweep(self.snapshot, search=self.search)
        return self._local

    # ------------------------------------------------------------- #
    # Lifecycle
    # ------------------------------------------------------------- #

    def close(self) -> None:
        """Stop the pool and release the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            try:
                self._pool.close()
            finally:
                pass
        if self._shm is not None:
            try:
                self._shm.close()
            finally:
                try:
                    self._shm.unlink()
                except FileNotFoundError:
                    pass

    def __enter__(self) -> "SpannerServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"SpannerServer({self.snapshot!r}, workers="
            f"{self.config.workers}, live={self.live_workers}, "
            f"search={self.search!r})"
        )
