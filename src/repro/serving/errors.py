"""Typed errors of the serving layer.

Since PR 10 these classes live in the shared parallel-execution
substrate (:mod:`repro.parallel.errors`) because the distributed round
engine raises the same families; this module re-exports them so
``repro.serving.errors`` stays the serving layer's documented failure
surface and existing ``except`` clauses keep matching the identical
class objects.
"""

from __future__ import annotations

from repro.parallel.errors import (
    ChaosSpawnFailure,
    DeadlineExceeded,
    ServingError,
    ServingUnavailable,
    SnapshotStale,
    WorkerCrashed,
)

__all__ = [
    "ChaosSpawnFailure",
    "DeadlineExceeded",
    "ServingError",
    "ServingUnavailable",
    "SnapshotStale",
    "WorkerCrashed",
]
