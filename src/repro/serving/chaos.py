"""Deterministic chaos harness (re-export).

The chaos policies moved into the shared parallel-execution substrate
(:mod:`repro.parallel.chaos`) in PR 10 -- the distributed runtime's
pools take the same directives.  This module re-exports them under the
serving layer's historical import path.
"""

from __future__ import annotations

from repro.parallel.chaos import (
    KILL,
    ChaosPolicy,
    ScriptedChaos,
    validate_directive,
)

__all__ = ["ChaosPolicy", "ScriptedChaos", "KILL", "validate_directive"]
