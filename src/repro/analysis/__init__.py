"""Experiment harness and reporting.

:mod:`~repro.analysis.tables` renders aligned ASCII tables (the benches
print these -- the library's equivalent of the paper's "Table N").
:mod:`~repro.analysis.experiments` contains the parameter-sweep runners
behind every row of EXPERIMENTS.md; each returns plain data structures so
tests can assert on trends while benches print them.
"""

from repro.analysis.tables import Table, format_table
from repro.analysis import hard_instances
from repro.analysis.experiments import (
    SweepPoint,
    fit_power_law,
    optimality_gap_sweep,
    ratio_trend,
    size_sweep,
)

__all__ = [
    "Table",
    "format_table",
    "SweepPoint",
    "fit_power_law",
    "optimality_gap_sweep",
    "ratio_trend",
    "size_sweep",
    "hard_instances",
]
