"""Parameter-sweep runners shared by the benchmark harness and tests.

Each runner performs one kind of sweep and returns plain dataclasses;
benches format them with :mod:`repro.analysis.tables`, tests assert on
the trends.  Runners take explicit seeds so EXPERIMENTS.md numbers are
reproducible.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bounds import modified_greedy_size_bound
from repro.graph.generators import gnp_random_graph
from repro.graph.graph import Graph
from repro.registry import build_spanner


@dataclass
class SweepPoint:
    """One measured point of a parameter sweep."""

    n: int
    m: int
    k: int
    f: int
    spanner_edges: int
    bound: float
    seconds: float
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def bound_ratio(self) -> float:
        """measured / theoretical-shape; should stay O(1) along a sweep."""
        return self.spanner_edges / self.bound if self.bound else math.inf


def size_sweep(
    configs: Sequence[Tuple[int, float, int, int]],
    seed: int = 0,
    fault_model: str = "vertex",
    builder: Optional[Callable[[Graph, int, int], object]] = None,
) -> List[SweepPoint]:
    """Measure spanner size across (n, p, k, f) configurations.

    ``builder(graph, k, f)`` defaults to the modified greedy and must
    return an object with ``.spanner`` (the benches pass baselines in).
    """
    points: List[SweepPoint] = []
    for idx, (n, p, k, f) in enumerate(configs):
        g = gnp_random_graph(n, p, seed=seed + idx)
        start = time.perf_counter()
        if builder is None:
            result = build_spanner(
                g, "greedy", k=k, f=f, fault_model=fault_model
            )
        else:
            result = builder(g, k, f)
        elapsed = time.perf_counter() - start
        points.append(
            SweepPoint(
                n=n,
                m=g.num_edges,
                k=k,
                f=f,
                spanner_edges=result.spanner.num_edges,
                bound=modified_greedy_size_bound(n, k, f),
                seconds=elapsed,
            )
        )
    return points


def optimality_gap_sweep(
    configs: Sequence[Tuple[int, float, int, int]], seed: int = 0
) -> List[Tuple[SweepPoint, SweepPoint]]:
    """Modified vs exponential greedy on instances small enough for both.

    Returns pairs (modified_point, exact_point) sharing the same graph.
    Experiment E8: the size ratio should stay <= O(k).
    """
    out: List[Tuple[SweepPoint, SweepPoint]] = []
    for idx, (n, p, k, f) in enumerate(configs):
        g = gnp_random_graph(n, p, seed=seed + idx)
        start = time.perf_counter()
        modified = build_spanner(g, "greedy", k=k, f=f)
        mod_s = time.perf_counter() - start
        start = time.perf_counter()
        exact = build_spanner(g, "exact-greedy", k=k, f=f)
        exact_s = time.perf_counter() - start
        bound = modified_greedy_size_bound(n, k, f)
        out.append(
            (
                SweepPoint(n, g.num_edges, k, f, modified.spanner.num_edges,
                           bound, mod_s),
                SweepPoint(n, g.num_edges, k, f, exact.spanner.num_edges,
                           bound, exact_s),
            )
        )
    return out


def ratio_trend(points: Sequence[SweepPoint]) -> List[float]:
    """The bound ratios along a sweep (should not diverge)."""
    return [p.bound_ratio for p in points]


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares exponent b of ``y ~ a * x^b`` (log-log regression).

    Used to check measured scaling exponents against the theorems, e.g.
    spanner size vs n should fit an exponent close to 1 + 1/k.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two sequences of equal length >= 2")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit needs positive data")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    var = sum((a - mean_x) ** 2 for a in lx)
    if var == 0:
        raise ValueError("x values are all equal; exponent undefined")
    return cov / var
