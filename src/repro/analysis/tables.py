"""ASCII table rendering for experiment output.

The benchmark harness prints one table per reproduced claim; EXPERIMENTS.md
archives these verbatim.  No external dependency -- just aligned columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A titled table accumulated row by row.

    >>> t = Table("demo", ["n", "edges"])
    >>> t.add_row([10, 45])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo
    ...
    """

    title: str
    columns: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[Any]) -> None:
        row = [_render_cell(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())


def format_table(
    title: str, columns: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Render an aligned table with a title and a header rule."""
    widths = [len(c) for c in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
