"""Hard (lower-bound-style) instances for fault-tolerant spanners.

[BDPW18]'s size lower bound uses a *blow-up* construction: start from an
extremal high-girth graph and replace every vertex with a group of
``f + 1`` copies, every edge with the complete bipartite bundle between
its endpoint groups.  Any f-VFT spanner with finite stretch must keep
many edges of every bundle: faulting f copies of a group can kill every
kept edge of a bundle except those through the remaining copy, so each
bundle needs edges touching all (or nearly all) copies -- ~f edges per
base edge, which is how the f^(1-1/k) n^(1+1/k) lower bound arises.

These generators exist to *stress* the constructions where random
workloads are easy: experiment E20 measures how close the modified
greedy comes to the forced density on blow-ups.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.baselines.greedy_classic import classic_greedy_spanner
from repro.graph.generators import gnp_random_graph
from repro.graph.graph import Graph, Node


def blowup(base: Graph, copies: int) -> Graph:
    """Replace every vertex with ``copies`` clones; edges become bundles.

    Node ``v`` becomes ``(v, 0) .. (v, copies-1)``; edge ``{u, v}``
    becomes the complete bipartite bundle between the two groups (no
    intra-group edges -- clones are interchangeable, not connected).
    """
    if copies < 1:
        raise ValueError(f"need copies >= 1, got {copies}")
    g = Graph()
    for v in base.nodes():
        for i in range(copies):
            g.add_node((v, i))
    for u, v, w in base.weighted_edges():
        for i in range(copies):
            for j in range(copies):
                g.add_edge((u, i), (v, j), weight=w)
    return g


def high_girth_base(n: int, k: int, seed: Optional[int] = None) -> Graph:
    """A (near-)extremal girth > 2k graph on ``n`` nodes.

    True extremal graphs (generalized polygons) exist only for special
    k; the classic greedy run on a dense random graph gets within
    constants of the Moore bound and has girth > 2k by construction --
    good enough for a stress workload.
    """
    if n < 3:
        raise ValueError(f"need n >= 3, got {n}")
    dense = gnp_random_graph(n, min(1.0, 0.8), seed=seed)
    return classic_greedy_spanner(dense, k).spanner


def vft_lower_bound_instance(
    base_n: int, k: int, f: int, seed: Optional[int] = None
) -> Tuple[Graph, Graph, int]:
    """The [BDPW18]-style hard instance for f-VFT (2k-1)-spanners.

    Returns ``(instance, base, copies)`` where ``instance`` is the
    (f+1)-fold blow-up of a girth > 2k base.  The lower-bound argument
    forces any f-VFT spanner with stretch < girth-1 to keep, for each
    base edge, edges covering every copy of each endpoint group --
    at least ``f + 1`` per bundle.
    """
    base = high_girth_base(base_n, k, seed=seed)
    copies = f + 1
    return blowup(base, copies), base, copies


def forced_bundle_edges(base: Graph, f: int) -> int:
    """The per-instance forced-size floor: (f + 1) edges per base edge.

    For each bundle, faulting all f clones that carry kept edges of one
    endpoint group (if fewer than f+1 carry them) would disconnect a
    surviving clone pair whose only short route is the bundle itself
    (the base has girth > 2k, so every alternative route is longer than
    the stretch budget).  Hence >= f + 1 kept edges per bundle.
    """
    return (f + 1) * base.num_edges
