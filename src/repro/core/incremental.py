"""Incremental fault-tolerant spanner maintenance (extension).

The paper proves Theorem 8 for an *arbitrary* edge order (Algorithm 3)
-- which has a practical consequence the paper doesn't dwell on: the
greedy works **online** for unweighted graphs.  Feed edges as they
arrive; each new edge goes through the same LBC(2k-1, f) test against
the current spanner; the maintained subgraph at every point in time is
exactly what a batch run of Algorithm 3 with that arrival order would
have produced, so the size bound AND the fault-tolerance guarantee hold
continuously.

Limits (inherited from the theory, enforced here):

* Unweighted (unit weights) only.  The weighted Theorem 10 needs the
  nondecreasing-weight order, which an online arrival cannot promise;
  attempting to insert a non-unit weight raises.
* Insertions only.  Deletions would invalidate earlier NO decisions
  (an edge declined because of paths through a later-deleted edge); a
  decremental variant is an open problem.

This is the natural building block for streaming topologies -- overlay
networks adding links, incremental network design -- and experiment E19
measures its per-insertion latency against periodic batch rebuilds.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple, Union

from repro.core.spanner import FaultModel, SpannerResult, resolve_backend
from repro.graph.csr import CSRBuilder
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.index import NodeIndexer
from repro.graph.traversal import BFSWorkspace
from repro.lbc.approx import (
    LBCAnswer,
    LBCResult,
    lbc_edge,
    lbc_edge_csr,
    lbc_vertex,
    lbc_vertex_csr,
)
from repro.registry import register_algorithm


@register_algorithm(
    "incremental",
    summary="Online Algorithm 3: the LBC-gated insertion stream, run "
            "once over a static edge list",
    guarantee="stretch 2k-1, O(k f^(1-1/k) n^(1+1/k)) edges, online "
              "insertions; unit weights only",
    weighted=False,
    fault_models=("vertex", "edge"),
    backend_aware=True,
)
def incremental_spanner(
    g: Graph,
    k: int,
    f: int = 0,
    fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
    backend: Optional[str] = None,
) -> SpannerResult:
    """One-shot registry form of :class:`IncrementalSpanner`.

    Declares every node, then feeds the edges of ``g`` in iteration
    order through the online LBC test -- exactly what a batch run of
    Algorithm 3 with that arrival order produces, so the size bound and
    fault-tolerance guarantee hold.  This is the registry's one
    genuinely unit-only construction (Theorem 10's nondecreasing-weight
    order cannot be honored online): the spec is tagged
    ``weighted=False`` and :func:`repro.registry.build_spanner` rejects
    weighted inputs with a typed error; calling this function directly
    with a weighted graph raises ``ValueError`` from
    :meth:`IncrementalSpanner.insert`.
    """
    inc = IncrementalSpanner(k=k, f=f, fault_model=fault_model,
                             backend=backend)
    for u in g.nodes():
        inc.add_node(u)
    for u, v, w in g.weighted_edges():
        inc.insert(u, v, weight=w)
    return inc.as_result()


class IncrementalSpanner:
    """Maintain an f-FT (2k-1)-spanner of a growing unweighted graph.

    Examples
    --------
    >>> inc = IncrementalSpanner(k=2, f=1)
    >>> inc.insert(1, 2)
    True
    >>> inc.insert(2, 3)
    True
    >>> inc.spanner.num_edges
    2
    """

    def __init__(
        self,
        k: int,
        f: int,
        fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
        backend: Optional[str] = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"need k >= 1, got {k}")
        if f < 0:
            raise ValueError(f"need f >= 0, got {f}")
        self.k = k
        self.f = f
        self.fault_model = FaultModel.coerce(fault_model)
        self.backend = resolve_backend(backend)
        self._decide = (
            lbc_vertex if self.fault_model is FaultModel.VERTEX else lbc_edge
        )
        self._decide_csr = (
            lbc_vertex_csr
            if self.fault_model is FaultModel.VERTEX
            else lbc_edge_csr
        )
        self.graph = Graph()  # everything ever inserted
        self.spanner = Graph()  # the maintained subgraph
        # CSR mirror of the maintained spanner (backend == "csr"): the
        # indexer/builder/workspace persist across all insertions, so the
        # steady-state per-insert cost is the LBC BFS work alone.
        self._indexer = NodeIndexer()
        self._builder = CSRBuilder()
        self._workspace = BFSWorkspace()
        self.certificates: Dict[Edge, FrozenSet] = {}
        self.inserted = 0
        self.kept = 0
        self.bfs_calls = 0

    @property
    def stretch(self) -> int:
        """The guarantee ``2k - 1``."""
        return 2 * self.k - 1

    def add_node(self, u: Node) -> None:
        """Declare a node before any of its edges arrive (optional)."""
        self.graph.add_node(u)
        self.spanner.add_node(u)
        if self.backend == "csr":
            self._indexer.add(u)
            self._builder.ensure_nodes(len(self._indexer))

    def insert(self, u: Node, v: Node, weight: float = 1.0) -> bool:
        """Process an arriving edge; returns True iff it was kept.

        Re-inserting a known edge is a no-op returning whether it had
        been kept.  Non-unit weights raise ``ValueError`` (see module
        docs).
        """
        if weight != 1.0:
            raise ValueError(
                "incremental maintenance is unweighted-only (Theorem 10's "
                "weight ordering cannot be honored online)"
            )
        if self.graph.has_edge(u, v):
            return self.spanner.has_edge(u, v)
        self.graph.add_edge(u, v)
        self.spanner.add_node(u)
        self.spanner.add_node(v)
        self.inserted += 1
        result = self._run_lbc(u, v)
        self.bfs_calls += result.iterations
        if result.answer is LBCAnswer.YES:
            self.spanner.add_edge(u, v)
            if self.backend == "csr":
                self._builder.add_edge(
                    self._indexer.index(u), self._indexer.index(v)
                )
            self.certificates[edge_key(u, v)] = result.cut
            self.kept += 1
            return True
        return False

    def _run_lbc(self, u: Node, v: Node) -> LBCResult:
        """LBC(2k-1, f) for the arriving edge, on the selected backend."""
        if self.backend != "csr":
            return self._decide(self.spanner, u, v, self.stretch, self.f)
        ui = self._indexer.add(u)
        vi = self._indexer.add(v)
        self._builder.ensure_nodes(len(self._indexer))
        return self._decide_csr(
            self._builder, ui, vi, self.stretch, self.f,
            self._workspace, self._indexer,
        )

    def insert_many(self, edges) -> int:
        """Insert a batch of ``(u, v)`` pairs; returns how many were kept."""
        kept = 0
        for u, v in edges:
            if self.insert(u, v):
                kept += 1
        return kept

    def as_result(self) -> SpannerResult:
        """Snapshot the current state as a standard :class:`SpannerResult`.

        The snapshot is live (shares the spanner graph); copy it if you
        need isolation.
        """
        return SpannerResult(
            spanner=self.spanner,
            k=self.k,
            f=self.f,
            fault_model=self.fault_model,
            algorithm="incremental-greedy",
            certificates=dict(self.certificates),
            edges_considered=self.inserted,
            bfs_calls=self.bfs_calls,
        )

    def __repr__(self) -> str:
        return (
            f"IncrementalSpanner(k={self.k}, f={self.f}, "
            f"inserted={self.inserted}, kept={self.kept})"
        )
