"""Closed-form bounds from the paper's theorems.

Every experiment in EXPERIMENTS.md compares a measured quantity against
one of these expressions.  The big-O constants are of course not specified
by the paper; each function returns the *bound shape* with constant 1, and
the experiment harness reports measured / shape ratios (which should stay
bounded as the swept parameter grows -- that is what "matches the theorem"
means empirically).
"""

from __future__ import annotations

import math


def greedy_size_bound(n: int, k: int, f: int) -> float:
    """Theorem 8 / BP19: size of the *exponential* greedy spanner.

    ``O(f^(1-1/k) * n^(1+1/k))`` -- the optimal bound for vertex faults.
    """
    _check(n, k, f)
    return f ** (1.0 - 1.0 / k) * n ** (1.0 + 1.0 / k)


def modified_greedy_size_bound(n: int, k: int, f: int) -> float:
    """Theorem 2/8: size of the polynomial-time modified greedy.

    ``O(k * f^(1-1/k) * n^(1+1/k))`` -- a factor k above optimal.
    """
    return k * greedy_size_bound(n, k, f)


def modified_greedy_time_bound(n: int, m: int, k: int, f: int) -> float:
    """Theorem 9: worst-case running time of the modified greedy.

    ``O(m * k * f^(2-1/k) * n^(1+1/k))``.
    """
    _check(n, k, f)
    return m * k * f ** (2.0 - 1.0 / k) * n ** (1.0 + 1.0 / k)


def lbc_time_bound(n: int, m: int, alpha: int) -> float:
    """Theorem 4: running time of Algorithm 2, ``O((m + n) * alpha)``."""
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    return (m + n) * max(alpha, 1)


def blocking_set_bound(spanner_edges: int, k: int, f: int) -> float:
    """Lemma 6: the modified greedy's blocking set has size

    ``<= (2k - 1) * f * |E(H)|``.
    """
    _check(max(spanner_edges, 1), k, f)
    return (2 * k - 1) * f * spanner_edges


def high_girth_subgraph_nodes(n: int, k: int, f: int) -> float:
    """Lemma 7: the extracted subgraph has exactly

    ``floor(n / (2 * (2k - 1) * f))`` nodes (``O(n / (k f))``).
    """
    _check(n, k, f)
    return math.floor(n / (2 * (2 * k - 1) * f))


def high_girth_subgraph_edges(m: int, k: int, f: int) -> float:
    """Lemma 7: expected edges of the extracted subgraph,

    ``~ m / (8 * ((2k - 1) f)^2)`` (``Omega(m / (kf)^2)``).
    """
    _check(max(m, 1), k, f)
    return m / (8.0 * ((2 * k - 1) * f) ** 2)


def moore_bound(n: int, k: int) -> float:
    """Girth > 2k implies at most ``O(n^(1+1/k))`` edges.

    We use the standard explicit form ``n^(1+1/k) + n`` (the additive n
    covers small-n rounding), which upper-bounds every graph of girth
    > 2k.  This is the [ADD+93] fact at the root of all spanner size
    analyses.
    """
    if n < 0 or k < 1:
        raise ValueError(f"need n >= 0 and k >= 1, got n={n}, k={k}")
    return n ** (1.0 + 1.0 / k) + n


def classic_greedy_size_bound(n: int, k: int) -> float:
    """[ADD+93]: the non-fault-tolerant greedy has < n^(1+1/k) + n edges."""
    return moore_bound(n, k)


def local_size_bound(n: int, k: int, f: int) -> float:
    """Theorem 12: LOCAL construction size,

    ``O(f^(1-1/k) * n^(1+1/k) * log n)``.
    """
    _check(n, k, f)
    return greedy_size_bound(n, k, f) * max(math.log(n), 1.0)


def local_round_bound(n: int) -> float:
    """Theorem 12: LOCAL construction runs in ``O(log n)`` rounds."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return max(math.log2(n), 1.0)


def dk_size_bound(n: int, k: int, f: int) -> float:
    """Theorem 13 with g(n) = n^(1+1/k): DK11 spanner size,

    ``O(f^(2-1/k) * n^(1+1/k) * log n)``.
    """
    _check(n, k, f)
    return (
        f ** (2.0 - 1.0 / k) * n ** (1.0 + 1.0 / k) * max(math.log(n), 1.0)
    )


def dk_iterations(n: int, f: int, constant: float = 1.0) -> int:
    """Theorem 13: number of sampling iterations, ``O(f^3 log n)``.

    ``constant`` scales the count; experiments use small constants to keep
    runtimes reasonable while noting the theorem's requirement.
    """
    if n < 2 or f < 1:
        raise ValueError(f"need n >= 2 and f >= 1, got n={n}, f={f}")
    return max(1, math.ceil(constant * f ** 3 * math.log(n)))


def congest_size_bound(n: int, k: int, f: int) -> float:
    """Theorem 15: CONGEST construction size,

    ``O(k * f^(2-1/k) * n^(1+1/k) * log n)``.
    """
    return k * dk_size_bound(n, k, f)


def congest_round_bound(n: int, k: int, f: int) -> float:
    """Theorem 15: CONGEST round complexity,

    ``O(f^2 (log f + log log n) + k^2 f log n)``.
    """
    _check(n, k, f)
    log_n = max(math.log2(n), 2.0)
    log_f = max(math.log2(max(f, 2)), 1.0)
    return f ** 2 * (log_f + math.log2(log_n)) + k ** 2 * f * log_n


def bs_round_bound(k: int) -> float:
    """Theorem 14: Baswana-Sen runs in ``O(k^2)`` CONGEST rounds."""
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    return float(k * k)


def bs_size_bound(n: int, k: int) -> float:
    """Theorem 14: Baswana-Sen spanner has ``O(k * n^(1+1/k))`` edges."""
    if n < 1 or k < 1:
        raise ValueError(f"need n >= 1 and k >= 1, got n={n}, k={k}")
    return k * n ** (1.0 + 1.0 / k)


def _check(n: int, k: int, f: int) -> None:
    """Shared parameter validation."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    if f < 1:
        raise ValueError(f"need f >= 1, got {f}")
