"""Algorithm 1: the exponential-time greedy of [BDPW18, BP19].

For each edge ``{u, v}`` in nondecreasing weight order, add it to ``H``
iff there exists a fault set ``F`` (``|F| <= f``) such that
``d_{H \\ F}(u, v) > (2k - 1) * w(u, v)``.  The existence test is NP-hard,
so this construction is exponential in ``f`` -- but its output meets the
*optimal* size bound ``O(f^(1-1/k) n^(1+1/k))`` [BP19], which makes it the
reference baseline for experiment E8 (the optimality gap of the
polynomial-time modified greedy).

Implementation notes
--------------------
* For unweighted graphs the condition simplifies (Lemma 3) to "some F with
  |F| <= f makes the hop distance exceed 2k - 1", which is exactly an
  existence query for a vertex/edge length-bounded cut -- answered by the
  branch-and-bound solver in :mod:`repro.lbc.exact`.
* For weighted graphs the condition is the weighted distance exceeding
  ``(2k - 1) w(u, v)``.  We enumerate fault sets with the same
  branch-on-a-violating-path strategy, but paths are weighted shortest
  paths truncated at the stretch budget.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Union

from repro.core.spanner import FaultModel, SpannerResult, resolve_backend
from repro.graph.csr import CSRBuilder
from repro.graph.graph import Edge, Graph, Node, edge_key
from repro.graph.index import NodeIndexer
from repro.graph.traversal import (
    BFSWorkspace,
    DijkstraWorkspace,
    csr_bounded_dijkstra_path,
    csr_bounded_dijkstra_path_edges,
    dijkstra,
    shortest_path,
)
from repro.graph.views import EdgeFaultView, GraphView, VertexFaultView
from repro.registry import register_algorithm
from repro.lbc.exact import (
    exact_edge_lbc,
    exact_edge_lbc_csr,
    exact_vertex_lbc,
    exact_vertex_lbc_csr,
)


@register_algorithm(
    "exact-greedy",
    summary="Algorithm 1: the size-optimal exponential-time greedy",
    guarantee="stretch 2k-1, optimal size [BDPW18, BP19]; exp time in f",
    fault_models=("vertex", "edge"),
    backend_aware=True,
)
def exponential_greedy_spanner(
    g: Graph,
    k: int,
    f: int,
    fault_model: Union[FaultModel, str] = FaultModel.VERTEX,
    backend: Optional[str] = None,
) -> SpannerResult:
    """Run Algorithm 1 and return the (size-optimal) greedy FT spanner.

    Warning: worst-case exponential in ``f``; intended for n up to a few
    dozen and f up to ~3.  Use
    :func:`repro.core.greedy_modified.fault_tolerant_spanner` for anything
    larger.

    With ``backend="csr"`` (the default) the branch-and-bound cut search
    runs over a growing flat-array spanner: unit-weighted inputs use
    hop-bounded BFS with a shared :class:`BFSWorkspace` (exactly like the
    modified greedy's fast path), weighted inputs use truncated Dijkstra
    with a shared :class:`DijkstraWorkspace` and generation-stamped fault
    masks in place of per-candidate fault views.  Either way the output
    is identical to ``backend="dict"``.
    """
    model = FaultModel.coerce(fault_model)
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    if f < 0:
        raise ValueError(f"need f >= 0, got {f}")
    t = 2 * k - 1
    h = g.spanning_skeleton()
    certificates = {}
    considered = 0
    unit = g.is_unit_weighted()
    use_csr = resolve_backend(backend) == "csr"
    if use_csr:
        indexer = NodeIndexer.from_graph(g)
        index = indexer.index
        builder = CSRBuilder(len(indexer))
        if unit:
            workspace = BFSWorkspace(len(indexer))
        else:
            dworkspace = DijkstraWorkspace(len(indexer))

    edges = sorted(g.weighted_edges(), key=lambda e: e[2])
    for u, v, w in edges:
        considered += 1
        if use_csr and unit:
            cut = _csr_violating_fault_set(
                builder, index(u), index(v), t, f, model, workspace, indexer
            )
        elif use_csr:
            cut = _csr_weighted_violating_fault_set(
                builder, index(u), index(v), t * w, f, model, dworkspace,
                indexer,
            )
        else:
            cut = _find_violating_fault_set(h, u, v, t, f, w, model, unit)
        if cut is not None:
            h.add_edge(u, v, weight=w)
            if use_csr:
                builder.add_edge(index(u), index(v), w)
            certificates[edge_key(u, v)] = cut
    return SpannerResult(
        spanner=h,
        k=k,
        f=f,
        fault_model=model,
        algorithm="exponential-greedy",
        certificates=certificates,
        edges_considered=considered,
    )


def _csr_violating_fault_set(
    builder: CSRBuilder,
    ui: int,
    vi: int,
    t: int,
    f: int,
    model: FaultModel,
    workspace: BFSWorkspace,
    indexer: NodeIndexer,
) -> Optional[FrozenSet]:
    """CSR twin of :func:`_find_violating_fault_set` (unit weights only).

    Runs the exact LBC search on indices, then translates the cut back to
    node objects / canonical edge tuples so certificates match the dict
    backend's exactly.
    """
    if model is FaultModel.VERTEX:
        cut = exact_vertex_lbc_csr(
            builder, ui, vi, t, max_size=f, workspace=workspace
        )
        if cut is None:
            return None
        return frozenset(indexer.node(i) for i in cut)
    cut = exact_edge_lbc_csr(
        builder, ui, vi, t, max_size=f, workspace=workspace
    )
    if cut is None:
        return None
    node = indexer.node
    edge_u, edge_v = builder.edge_u, builder.edge_v
    return frozenset(
        edge_key(node(edge_u[e]), node(edge_v[e])) for e in cut
    )


def _csr_weighted_violating_fault_set(
    builder: CSRBuilder,
    ui: int,
    vi: int,
    budget: float,
    f: int,
    model: FaultModel,
    workspace: DijkstraWorkspace,
    indexer: NodeIndexer,
) -> Optional[FrozenSet]:
    """CSR twin of the weighted branch of :func:`_find_violating_fault_set`.

    Same branch-and-bound as :func:`_weighted_vertex_search` /
    :func:`_weighted_edge_search`, but the "remove F and re-probe" step
    is a mask re-stamp (O(|F|), |F| <= f) plus a truncated CSR Dijkstra
    instead of a fresh fault view and a dict-based shortest-path run.
    The fault stack and both masks live in ``workspace``, so the whole
    exponential search allocates nothing but the heaps and found paths.
    Cuts are translated back to node objects / canonical edge tuples so
    certificates match the dict backend's exactly.
    """
    faults: List[int] = []
    found: List[Optional[FrozenSet]] = [None]
    if model is FaultModel.VERTEX:
        mask = workspace.vertex_mask
        mask.ensure(builder.num_nodes)

        def probe() -> Optional[List[int]]:
            mask.clear()
            mask.add_all(faults)
            return csr_bounded_dijkstra_path(
                builder, ui, vi, max_dist=budget, workspace=workspace,
                vertex_mask=mask,
            )

        def search(remaining: int) -> None:
            path = probe()
            if path is None:
                found[0] = frozenset(
                    indexer.node(i) for i in faults
                )
                return
            interior = path[1:-1]
            if not interior or remaining == 0:
                return
            for x in interior:
                faults.append(x)
                search(remaining - 1)
                faults.pop()
                if found[0] is not None:
                    return

        search(f)
        return found[0]

    mask = workspace.edge_mask
    mask.ensure(builder.num_edges)
    node = indexer.node
    edge_u, edge_v = builder.edge_u, builder.edge_v

    def probe_edges() -> Optional[List[int]]:
        mask.clear()
        mask.add_all(faults)
        result = csr_bounded_dijkstra_path_edges(
            builder, ui, vi, max_dist=budget, workspace=workspace,
            edge_mask=mask,
        )
        return None if result is None else result[1]

    def search_edges(remaining: int) -> None:
        eids = probe_edges()
        if eids is None:
            found[0] = frozenset(
                edge_key(node(edge_u[e]), node(edge_v[e])) for e in faults
            )
            return
        if remaining == 0:
            return
        for e in eids:
            faults.append(e)
            search_edges(remaining - 1)
            faults.pop()
            if found[0] is not None:
                return

    search_edges(f)
    return found[0]


def _find_violating_fault_set(
    h: Graph,
    u: Node,
    v: Node,
    t: int,
    f: int,
    weight: float,
    model: FaultModel,
    unit: bool,
) -> Optional[FrozenSet]:
    """A fault set F, |F| <= f, with d_{H\\F}(u, v) > (2k-1) w(u,v), or None.

    The empty set counts: if u and v are already too far apart in H (e.g.
    disconnected), the edge must be added.
    """
    if unit:
        # Lemma 3 reduces the condition to hop distance > t = 2k - 1.
        if model is FaultModel.VERTEX:
            return exact_vertex_lbc(h, u, v, t, max_size=f)
        return exact_edge_lbc(h, u, v, t, max_size=f)
    budget = t * weight
    if model is FaultModel.VERTEX:
        return _weighted_vertex_search(h, u, v, budget, f)
    return _weighted_edge_search(h, u, v, budget, f)


def _weighted_vertex_search(
    h: Graph, u: Node, v: Node, budget: float, f: int
) -> Optional[FrozenSet[Node]]:
    """Branch-and-bound: find F (|F| <= f) with weighted d > budget.

    Branches on the interior vertices of a currently-too-short path; any
    violating F must hit every path of weight <= budget, in particular the
    one found.  Complete for the same reason as the LBC exact solver.
    """
    found: List[Optional[FrozenSet[Node]]] = [None]

    def search(faults: Set[Node], remaining: int) -> None:
        if found[0] is not None:
            return
        view = VertexFaultView(h, faults) if faults else h
        path = _short_weighted_path(view, u, v, budget)
        if path is None:
            found[0] = frozenset(faults)
            return
        interior = path[1:-1]
        if not interior or remaining == 0:
            return
        for x in interior:
            faults.add(x)
            search(faults, remaining - 1)
            faults.remove(x)
            if found[0] is not None:
                return

    search(set(), f)
    return found[0]


def _weighted_edge_search(
    h: Graph, u: Node, v: Node, budget: float, f: int
) -> Optional[FrozenSet[Edge]]:
    """Edge-fault analogue of :func:`_weighted_vertex_search`."""
    found: List[Optional[FrozenSet[Edge]]] = [None]

    def search(faults: Set[Edge], remaining: int) -> None:
        if found[0] is not None:
            return
        view = EdgeFaultView(h, faults) if faults else h
        path = _short_weighted_path(view, u, v, budget)
        if path is None:
            found[0] = frozenset(faults)
            return
        if remaining == 0:
            return
        for i in range(len(path) - 1):
            e = edge_key(path[i], path[i + 1])
            faults.add(e)
            search(faults, remaining - 1)
            faults.remove(e)
            if found[0] is not None:
                return

    search(set(), f)
    return found[0]


def _short_weighted_path(
    view, u: Node, v: Node, budget: float
) -> Optional[List[Node]]:
    """A u-v path of weight <= budget in ``view``, or None.

    A shortest path suffices: if even it exceeds the budget, no path is
    within budget.
    """
    path = shortest_path(view, u, v)
    if path is None:
        return None
    total = sum(
        view.weight(path[i], path[i + 1]) for i in range(len(path) - 1)
    )
    return path if total <= budget else None
