"""The paper's primary contribution: fault-tolerant spanner constructions.

Public entry points
-------------------

:func:`~repro.core.greedy_modified.fault_tolerant_spanner`
    The headline polynomial-time algorithm (Algorithms 3 and 4 of the
    paper, selected automatically by whether the input is weighted).
:func:`~repro.core.greedy_exact.exponential_greedy_spanner`
    Algorithm 1, the size-optimal but exponential-time greedy of
    [BDPW18, BP19]; usable on small instances as the optimality baseline.
:mod:`~repro.core.blocking`
    Blocking sets (Definition 2): construction of the Lemma 6 certificate
    from a greedy run, verification, and the Lemma 7 high-girth subgraph
    extraction.
:mod:`~repro.core.bounds`
    Closed-form size/time bounds from Theorems 2, 8, 9, 10, 12, 13, 15.
"""

from repro.core.spanner import (
    BACKENDS,
    DEFAULT_BACKEND,
    FaultModel,
    SpannerResult,
    resolve_backend,
)
from repro.core.greedy_modified import (
    fault_tolerant_spanner,
    modified_greedy_unweighted,
    modified_greedy_weighted,
)
from repro.core.greedy_exact import exponential_greedy_spanner
from repro.core.incremental import IncrementalSpanner, incremental_spanner
from repro.core.blocking import (
    BlockingSet,
    blocking_set_from_certificates,
    extract_high_girth_subgraph,
    is_blocking_set,
)
from repro.core import bounds

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "FaultModel",
    "SpannerResult",
    "resolve_backend",
    "fault_tolerant_spanner",
    "modified_greedy_unweighted",
    "modified_greedy_weighted",
    "exponential_greedy_spanner",
    "IncrementalSpanner",
    "incremental_spanner",
    "BlockingSet",
    "blocking_set_from_certificates",
    "extract_high_girth_subgraph",
    "is_blocking_set",
    "bounds",
]
