"""Blocking sets (Definition 2) and the Lemma 6 / Lemma 7 machinery.

The paper's size analysis proceeds in two executable steps:

1. **Lemma 6.** The cut certificates collected by the modified greedy form
   a (2k)-blocking set of size at most ``(2k - 1) f |E(H)|``: pairs
   ``(x, e)`` such that every cycle of length <= 2k in H contains both the
   vertex x and the edge e of some pair.
2. **Lemma 7.** Any graph with a small (2k)-blocking set contains a dense
   subgraph of girth > 2k on ``O(n / (kf))`` nodes, whose edge count the
   Moore bound then caps -- yielding Theorem 8.

This module makes both steps runnable: building the blocking set from a
:class:`~repro.core.spanner.SpannerResult`, verifying Definition 2
directly (for tests), and performing the randomized subsample-and-delete
extraction of Lemma 7 (for experiment E16).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.core.spanner import FaultModel, SpannerResult
from repro.graph.girth import girth_exceeds
from repro.graph.graph import Edge, Graph, Node, edge_key


@dataclass(frozen=True)
class BlockingSet:
    """A set of (vertex, edge) pairs per Definition 2.

    ``pairs`` contains tuples ``(x, e)`` with ``x`` a vertex not incident
    to the edge ``e``.  The set t-blocks a graph if every cycle of length
    <= t contains both members of some pair.
    """

    pairs: FrozenSet[Tuple[Node, Edge]]

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[Tuple[Node, Edge]]:
        return iter(self.pairs)

    def edges(self) -> Set[Edge]:
        """The set of edges appearing in some pair."""
        return {e for _, e in self.pairs}

    def pairs_for_edge(self, e: Edge) -> Set[Node]:
        """All vertices paired with edge ``e``."""
        key = edge_key(*e)
        return {x for x, e2 in self.pairs if e2 == key}


def blocking_set_from_certificates(result: SpannerResult) -> BlockingSet:
    """Assemble the Lemma 6 blocking set ``B = {(x, e) : x in F_e}``.

    Only meaningful for vertex-fault greedy results (Definition 2 pairs a
    *vertex* with an edge); raises ``ValueError`` for edge-fault results.
    """
    if result.fault_model is not FaultModel.VERTEX:
        raise ValueError(
            "blocking sets pair vertices with edges; the Lemma 6 "
            "construction applies to the vertex-fault greedy"
        )
    pairs: Set[Tuple[Node, Edge]] = set()
    for e, cut in result.certificates.items():
        key = edge_key(*e)
        for x in cut:
            if x in key:
                raise ValueError(
                    f"certificate for edge {key} contains an endpoint {x!r}"
                )
            pairs.add((x, key))
    return BlockingSet(pairs=frozenset(pairs))


def is_blocking_set(
    g: Graph, blocking: BlockingSet, t: int, max_cycles: Optional[int] = None
) -> bool:
    """Verify Definition 2: every cycle of length <= t hits some pair.

    Enumerates simple cycles of length <= t (DFS bounded by t, feasible
    for the small t = 2k used in tests); ``max_cycles`` aborts early on
    pathologically cyclic inputs.
    """
    checked = 0
    for cycle in enumerate_short_cycles(g, t):
        checked += 1
        if max_cycles is not None and checked > max_cycles:
            raise RuntimeError(
                f"more than {max_cycles} short cycles; refusing to verify"
            )
        if not _cycle_is_blocked(cycle, blocking):
            return False
    return True


def find_unblocked_cycle(
    g: Graph, blocking: BlockingSet, t: int
) -> Optional[Tuple[Node, ...]]:
    """A cycle of length <= t not hit by any pair, or None (diagnostics)."""
    for cycle in enumerate_short_cycles(g, t):
        if not _cycle_is_blocked(cycle, blocking):
            return cycle
    return None


def _cycle_is_blocked(
    cycle: Tuple[Node, ...], blocking: BlockingSet
) -> bool:
    """Whether some (x, e) pair has both x and e on the cycle."""
    nodes = set(cycle)
    edges = {
        edge_key(cycle[i], cycle[(i + 1) % len(cycle)])
        for i in range(len(cycle))
    }
    return any(x in nodes and e in edges for x, e in blocking.pairs)


def enumerate_short_cycles(
    g: Graph, max_len: int
) -> Iterator[Tuple[Node, ...]]:
    """All simple cycles of length <= max_len, each reported once.

    Uses the standard rooted-DFS enumeration: a cycle is reported from its
    minimal vertex (by a global ordering), walking only through larger
    vertices, with its second vertex smaller than its last to fix
    orientation.  Exponential in general but fine for the short cycle
    lengths (<= 2k) used by Definition 2.
    """
    ordering = {u: i for i, u in enumerate(sorted(g.nodes(), key=repr))}

    def dfs(root: Node, path: List[Node]) -> Iterator[Tuple[Node, ...]]:
        u = path[-1]
        for v in g.neighbors(u):
            if v == root:
                if len(path) >= 3 and ordering[path[1]] < ordering[path[-1]]:
                    yield tuple(path)
                continue
            if ordering[v] <= ordering[root] or v in path_set:
                continue
            if len(path) == max_len:
                continue
            path.append(v)
            path_set.add(v)
            yield from dfs(root, path)
            path_set.remove(v)
            path.pop()

    for root in sorted(g.nodes(), key=lambda u: ordering[u]):
        path_set = {root}
        yield from dfs(root, [root])


def extract_high_girth_subgraph(
    h: Graph,
    blocking: BlockingSet,
    k: int,
    f: int,
    seed: Optional[int] = None,
    attempts: int = 32,
) -> Graph:
    """The Lemma 7 extraction: a girth > 2k subgraph on ~ n/(2(2k-1)f) nodes.

    Samples a uniformly random vertex subset of size
    ``floor(n / (2 (2k-1) f))``, takes the induced subgraph, and deletes
    every edge participating in a surviving blocking pair.  By Lemma 7 the
    result deterministically has girth > 2k, and its *expected* edge count
    is ``Omega(m / (kf)^2)``; we repeat ``attempts`` times and return the
    densest draw (the lemma's "some subgraph achieves the expectation"
    step, made constructive).
    """
    if k < 1 or f < 1:
        raise ValueError(f"need k >= 1 and f >= 1, got k={k}, f={f}")
    rng = random.Random(seed)
    n = h.num_nodes
    sample_size = n // (2 * (2 * k - 1) * f)
    if sample_size < 1:
        # Degenerate regime (f close to n); the theorem is trivial here.
        return Graph()
    nodes = sorted(h.nodes(), key=repr)
    best: Optional[Graph] = None
    for _ in range(attempts):
        sample = set(rng.sample(nodes, sample_size))
        sub = h.subgraph(sample)
        for x, e in blocking.pairs:
            u, v = e
            if x in sample and sub.has_edge(u, v):
                sub.remove_edge(u, v)
        if best is None or sub.num_edges > best.num_edges:
            best = sub
    assert best is not None
    return best
