"""Result types shared by every spanner construction in the library.

A construction returns a :class:`SpannerResult`: the spanner subgraph plus
the parameters it was built for, instrumentation counters, and (for the
greedy family) the per-edge cut certificates that the paper's Lemma 6
turns into a blocking set.  Keeping the certificates makes the size
analysis *checkable*, not just provable: tests assemble the blocking set
and verify Definition 2 directly.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.graph.graph import Edge, Graph, Node

#: The execution backends the greedy family supports.  "csr" runs the
#: BFS/LBC hot path on flat arrays (:mod:`repro.graph.csr`); "dict" is
#: the original dict-of-dict path, kept for differential testing and for
#: arbitrary GraphView inputs.  Both produce identical spanners.
BACKENDS = ("dict", "csr")

DEFAULT_BACKEND = "csr"

#: Environment variable overriding the default backend (the explicit
#: ``backend=`` keyword always wins over the environment).
BACKEND_ENV_VAR = "REPRO_BACKEND"


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a ``backend`` argument to ``"dict"`` or ``"csr"``.

    ``None`` means "use the default", which is :data:`DEFAULT_BACKEND`
    unless the :data:`BACKEND_ENV_VAR` environment variable names another
    backend.  Anything outside :data:`BACKENDS` raises ``ValueError``.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, DEFAULT_BACKEND)
    if isinstance(backend, str):
        backend = backend.lower()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


class FaultModel(enum.Enum):
    """Which objects fail: vertices (f-VFT) or edges (f-EFT)."""

    VERTEX = "vertex"
    EDGE = "edge"

    @classmethod
    def coerce(cls, value: "FaultModel | str") -> "FaultModel":
        """Accept either the enum or its string name ('vertex' / 'edge')."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"fault model must be 'vertex' or 'edge', got {value!r}"
            ) from None


@dataclass
class SpannerResult:
    """Output of a fault-tolerant spanner construction.

    Attributes
    ----------
    spanner:
        The subgraph ``H`` (always spanning: same node set as the input).
    k:
        Stretch parameter; the stretch guarantee is ``2k - 1``.
    f:
        Number of faults tolerated.
    fault_model:
        Vertex or edge fault tolerance.
    algorithm:
        Human-readable name of the construction that produced this result.
    certificates:
        For greedy constructions: maps each spanner edge to the fault-set
        certificate found when it was added (the set ``F_e`` of Lemma 6).
        Empty for constructions that do not produce certificates.
    edges_considered:
        How many candidate edges the construction examined.
    bfs_calls:
        Total hop-bounded BFS invocations (the dominant cost; Theorem 9
        bounds this by ``m * (f + 1)``).
    rounds:
        For distributed constructions, the number of communication rounds
        used; ``None`` for centralized ones.
    extra:
        Free-form instrumentation (message counts, iteration counts, ...).
    """

    spanner: Graph
    k: int
    f: int
    fault_model: FaultModel
    algorithm: str
    certificates: Dict[Edge, FrozenSet] = field(default_factory=dict)
    edges_considered: int = 0
    bfs_calls: int = 0
    rounds: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def stretch(self) -> int:
        """The stretch guarantee ``2k - 1``."""
        return 2 * self.k - 1

    @property
    def num_edges(self) -> int:
        """Number of edges in the spanner."""
        return self.spanner.num_edges

    @property
    def num_nodes(self) -> int:
        """Number of nodes (equals the input graph's node count)."""
        return self.spanner.num_nodes

    def compression_ratio(self, original: Graph) -> float:
        """|E(H)| / |E(G)| -- how much of the input survived."""
        if original.num_edges == 0:
            return 1.0
        return self.spanner.num_edges / original.num_edges

    def describe(self) -> str:
        """One-line human-readable summary for experiment logs."""
        model = "VFT" if self.fault_model is FaultModel.VERTEX else "EFT"
        parts = [
            f"{self.algorithm}: {self.f}-{model} {self.stretch}-spanner",
            f"n={self.num_nodes}",
            f"|E(H)|={self.num_edges}",
        ]
        if self.rounds is not None:
            parts.append(f"rounds={self.rounds}")
        return "  ".join(parts)
